//! The server's shared morsel worker pool.
//!
//! In-process callers parallelise with [`crate::ExecOptions::threads`]:
//! every `execute_opts` spawns scoped workers for its own query. A
//! server cannot do that — N concurrent clients each spawning
//! `available_parallelism` workers is N-fold oversubscription, and the
//! thread count stops being a configuration. Here the relationship is
//! inverted: **one** pool of `threads` long-lived workers executes
//! *every* query, and a query is just a queue of morsels
//! (`(shard, segment)` units, exactly the morsel executor's) those
//! workers lease from.
//!
//! * **Fair interleaving.** Jobs live in a round-robin queue. A worker
//!   takes one *lease* — up to [`LEASE_MORSELS`] segments — from the
//!   front job, re-enqueues the job at the back if it still has
//!   unclaimed segments, then executes the lease. Segments of different
//!   queries interleave at lease granularity, so a short aggregate is
//!   never stuck behind a giant group-by's whole segment list.
//! * **Per-client width caps.** A job's [`crate::ExecOptions::threads`]
//!   bounds how many leases of it may execute at once: a client that
//!   asks for `--threads 1` gets sequential execution (and sequential
//!   per-worker accounting) even on a wide pool, while capped jobs
//!   rotate past so the pool never idles on one client's modesty.
//! * **Unchanged answers.** A lease executes segments through the same
//!   [`PhysicalPlan::execute_segment`] pipeline as every other
//!   executor, accumulates a partial [`SinkState`], and merges it
//!   associatively under the job's lock — the merge discipline the
//!   morsel executor already proves schedule-independent. Shard
//!   pruning, the shared top-k bound (one atomic per job, flushed at
//!   lease end), and the stats ledger all carry over.
//!
//! Plans borrow tables, so long-lived workers cannot hold them across
//! jobs: a lease re-compiles the spec against the shards it actually
//! touches (a metadata-only walk, microseconds against segment
//! execution) and drops the plans with the lease. The job owns `Arc`
//! handles to its snapshot's shards, so a concurrent
//! [`crate::Catalog::ingest`] publishing new versions never invalidates
//! an executing lease.

use super::cancel::CancelToken;
use crate::catalog::{shard_excluded, CatalogTable, ResolvedJoin};
use crate::query::{
    ExecOptions, JoinRight, PhysicalPlan, QueryResult, QuerySpec, QueryStats, Sink, SinkState,
    TOPK_BOUND_UNSET,
};
use crate::table::Table;
use crate::{Result, StoreError};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// Segments one lease claims at a time. Small enough that queries
/// interleave finely (a worker revisits the queue every few segments),
/// large enough that queue locking stays off the per-segment path.
const LEASE_MORSELS: usize = 8;

/// How often [`PendingQuery::wait_while`] wakes its caller between
/// deliveries — the cadence at which a session notices an expired
/// deadline or a vanished client while its query executes.
const WAIT_TICK: Duration = Duration::from_millis(25);

/// One queued query: the spec, its snapshot's live shards, and the
/// claim/merge bookkeeping every lease goes through.
struct Job {
    spec: QuerySpec,
    /// The snapshot's shards that survived shard pruning, in order.
    tables: Vec<Arc<Table>>,
    /// The sink shape (owned — outlives any compiled plan), for
    /// constructing per-lease partial states.
    sink: Sink,
    /// The job-wide shared top-k bound, when the sink is top-k and the
    /// client left [`ExecOptions::topk_shared_bound`] on.
    bound: Option<Arc<AtomicI64>>,
    /// Every `(shard index, segment index)` to execute, in visit order.
    morsels: Vec<(usize, usize)>,
    /// Most leases of this job allowed to execute at once (the
    /// client's `threads`, clamped to the pool width).
    max_leases: usize,
    /// Most leases ever executing at once, for tests and metrics.
    peak_leases: AtomicUsize,
    /// The request's cancellation token: checked at every lease claim
    /// and between morsels, so a fired token abandons all unclaimed
    /// work within one lease.
    cancel: Arc<CancelToken>,
    /// The join's resolved right side when the spec carries one —
    /// shared by every lease's re-compiled plan, so all leases probe
    /// the same right-table snapshot.
    right: Option<Arc<JoinRight>>,
    inner: Mutex<JobInner>,
}

struct JobInner {
    /// Next unclaimed morsel index.
    next: usize,
    /// Morsels executed *and merged*.
    completed: usize,
    /// Leases currently executing.
    active_leases: usize,
    /// Merged partial sink states.
    merged: Option<SinkState>,
    stats: QueryStats,
    /// First error any lease hit; the job aborts (no new leases) and
    /// delivers it once in-flight leases finish.
    error: Option<StoreError>,
    /// Taken exactly once, by whichever lease finishes the job.
    done: Option<SyncSender<Result<(SinkState, QueryStats)>>>,
}

struct PoolState {
    queue: VecDeque<Arc<Job>>,
    stopping: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signalled on submit, lease completion, and stop.
    work_ready: Condvar,
    /// Leases executing across all jobs, and the high-water mark — the
    /// observable proof that execution concurrency never exceeds the
    /// worker count.
    active_leases: AtomicUsize,
    peak_leases: AtomicUsize,
}

/// The fixed-width worker pool. Construct once per server
/// ([`WorkerPool::new`] spawns the workers immediately), submit
/// queries from any thread with [`WorkerPool::submit`], and
/// [`WorkerPool::stop`] drains and joins on shutdown.
pub(crate) struct WorkerPool {
    threads: usize,
    shared: Arc<PoolShared>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl WorkerPool {
    /// Spawn `threads` workers (clamped to at least 1). Spawning can
    /// fail under OS thread exhaustion; a partial pool is torn down and
    /// the error surfaced so the server never runs under-width.
    pub(crate) fn new(threads: usize) -> Result<WorkerPool> {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                stopping: false,
            }),
            work_ready: Condvar::new(),
            active_leases: AtomicUsize::new(0),
            peak_leases: AtomicUsize::new(0),
        });
        let mut workers = Vec::with_capacity(threads);
        for i in 0..threads {
            let worker_shared = Arc::clone(&shared);
            let spawned = std::thread::Builder::new()
                .name(format!("lcdc-pool-{i}"))
                .spawn(move || worker_loop(&worker_shared));
            match spawned {
                Ok(handle) => workers.push(handle),
                Err(e) => {
                    let pool = WorkerPool {
                        threads,
                        shared,
                        workers: Mutex::new(workers),
                    };
                    pool.stop();
                    return Err(StoreError::Io(e));
                }
            }
        }
        Ok(WorkerPool {
            threads,
            shared,
            workers: Mutex::new(workers),
        })
    }

    /// The configured worker count.
    pub(crate) fn threads(&self) -> usize {
        self.threads
    }

    /// Most leases ever executing at once across all jobs — bounded by
    /// [`Self::threads`] by construction (only workers execute leases).
    pub(crate) fn peak_leases(&self) -> usize {
        // ordering: advisory high-water mark read after the fact; no
        // other memory is published through it.
        self.shared.peak_leases.load(Ordering::Relaxed)
    }

    /// Execute `spec` against a catalog snapshot on the shared pool,
    /// blocking until the merged result is ready — [`Self::submit`]
    /// plus an uninterruptible wait, for tests with no connection to
    /// watch. (Sessions use `submit` + [`PendingQuery::wait_while`].)
    #[cfg(test)]
    pub(crate) fn execute(
        &self,
        table: &CatalogTable,
        spec: &QuerySpec,
        opts: &ExecOptions,
        cancel: Arc<CancelToken>,
    ) -> Result<QueryResult> {
        self.submit(table, spec, opts, cancel, None)?
            .wait_while(|| Ok(()))
    }

    /// Queue `spec` against a catalog snapshot on the shared pool and
    /// return a [`PendingQuery`] the caller waits on. Semantically
    /// identical to [`crate::Catalog::execute_opts`]'s execution
    /// strategy: shard pruning first, then every live shard's segments
    /// through the standard per-segment pipeline — just scheduled onto
    /// the server's fixed workers instead of per-query spawns.
    /// `opts.threads` caps this job's concurrent leases;
    /// `opts.prefetch` is ignored (the pool spawns no per-query fetcher
    /// threads — its width is the server's whole execution budget).
    ///
    /// `cancel` is checked here (an already-expired deadline queues
    /// nothing), at every lease claim, and between morsels; a fired
    /// token surfaces through the delivered outcome as the typed
    /// deadline/cancelled error.
    ///
    /// `join` is the spec's right side, resolved by the catalog against
    /// the same snapshot as `table` — required when the spec joins,
    /// ignored otherwise.
    pub(crate) fn submit(
        &self,
        table: &CatalogTable,
        spec: &QuerySpec,
        opts: &ExecOptions,
        cancel: Arc<CancelToken>,
        join: Option<&ResolvedJoin>,
    ) -> Result<PendingQuery> {
        cancel.check()?;
        let right = join.map(|j| Arc::clone(&j.right));
        // Shard pruning, exactly as the in-process sharded fan-in does:
        // an excluded shard is counted, never compiled or read.
        let mut pruned = QueryStats::default();
        let all: Vec<Arc<Table>> = match table {
            CatalogTable::Single(t) => vec![Arc::clone(t)],
            CatalogTable::Sharded(s) => s.shards().to_vec(),
        };
        let mut tables = Vec::with_capacity(all.len());
        for shard in &all {
            if shard_excluded(shard, spec) {
                pruned.shards_pruned += 1;
                pruned.segments += shard.num_segments();
                pruned.segments_pruned += shard.num_segments();
            } else {
                tables.push(Arc::clone(shard));
            }
        }

        // Compile on the submitting thread: this validates the spec
        // (unknown columns error here, before anything queues) and
        // publishes the morsel list. The plans borrow `tables`, so they
        // drop before the job takes ownership; leases re-compile.
        let Some(shape_table) = tables.first().or_else(|| all.first()) else {
            return Err(StoreError::Shape("table has no shards".into()));
        };
        let mut morsels = Vec::new();
        let sink = {
            let plans = tables
                .iter()
                .map(|t| spec.compile_join(t, false, right.as_ref()))
                .collect::<Result<Vec<_>>>()?;
            let shape = match plans.first() {
                Some(plan) => plan,
                // Every shard pruned: compile purely for the sink
                // shape, like the in-process fan-in.
                None => &spec.compile_join(shape_table, false, right.as_ref())?,
            };
            for (p, plan) in plans.iter().enumerate() {
                morsels.extend(plan.segment_order().into_iter().map(|s| (p, s)));
            }
            if morsels.is_empty() {
                // Nothing to queue: deliver the empty sink state
                // immediately; the normal wait path shapes it.
                let (done, recv) = sync_channel(1);
                let _ = done.send(Ok((
                    SinkState::for_sink(&shape.sink),
                    QueryStats::default(),
                )));
                return Ok(PendingQuery {
                    recv,
                    shape_table: Arc::clone(shape_table),
                    spec: spec.clone(),
                    pruned,
                    right,
                });
            }
            shape.sink.clone()
        };

        let bound = (opts.topk_shared_bound && matches!(sink, Sink::TopK { .. }))
            .then(|| Arc::new(AtomicI64::new(TOPK_BOUND_UNSET)));
        let (done, recv) = sync_channel(1);
        let shape_table = Arc::clone(shape_table);
        let total = morsels.len();
        let job = Arc::new(Job {
            spec: spec.clone(),
            tables,
            sink,
            bound,
            morsels,
            max_leases: opts.threads.clamp(1, self.threads),
            peak_leases: AtomicUsize::new(0),
            cancel,
            right: right.clone(),
            inner: Mutex::new(JobInner {
                next: 0,
                completed: 0,
                active_leases: 0,
                merged: None,
                stats: QueryStats::default(),
                error: None,
                done: Some(done),
            }),
        });
        debug_assert_eq!(job.morsels.len(), total);

        {
            // A poisoned pool lock means a worker panicked mid-scan;
            // the queue itself is valid at every step, so recover the
            // guard and keep serving.
            let mut state = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            if state.stopping {
                return Err(StoreError::Shape("worker pool is shutting down".into()));
            }
            state.queue.push_back(Arc::clone(&job));
        }
        self.shared.work_ready.notify_all();
        Ok(PendingQuery {
            recv,
            shape_table,
            spec: spec.clone(),
            pruned,
            right,
        })
    }

    /// Drain queued jobs, then stop and join every worker. Queued and
    /// in-flight jobs complete normally; jobs submitted after this call
    /// are refused.
    pub(crate) fn stop(&self) {
        {
            let mut state = self
                .shared
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            state.stopping = true;
        }
        self.shared.work_ready.notify_all();
        let workers =
            std::mem::take(&mut *self.workers.lock().unwrap_or_else(PoisonError::into_inner));
        for handle in workers {
            // A worker that panicked already delivered its job an error
            // (or abandoned it to the drain); shutdown proceeds either
            // way.
            if handle.join().is_err() {
                eprintln!("lcdc server: a pool worker panicked; continuing shutdown");
            }
        }
    }
}

/// A submitted query the caller has not collected yet: the delivery
/// channel plus everything needed to shape the merged sink state into
/// a [`QueryResult`] on the caller's thread.
pub(crate) struct PendingQuery {
    recv: Receiver<Result<(SinkState, QueryStats)>>,
    shape_table: Arc<Table>,
    spec: QuerySpec,
    pruned: QueryStats,
    /// The join's right side, carried so the shaping re-compile on the
    /// caller's thread can rebuild the same plan.
    right: Option<Arc<JoinRight>>,
}

impl PendingQuery {
    /// Block until the pool delivers, calling `tick` roughly every
    /// [`WAIT_TICK`] — the session's chance to poll its connection and
    /// fire the job's [`CancelToken`]. A `tick` error abandons the
    /// wait immediately with that error: the job's token is expected to
    /// be fired too, so the pool drops its unclaimed morsels at the
    /// next claim and delivers to a dead receiver (harmless — the
    /// sync channel holds one outcome without a reader).
    pub(crate) fn wait_while(self, mut tick: impl FnMut() -> Result<()>) -> Result<QueryResult> {
        let outcome = loop {
            match self.recv.recv_timeout(WAIT_TICK) {
                Ok(outcome) => break outcome?,
                Err(RecvTimeoutError::Timeout) => tick()?,
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(StoreError::Shape("worker pool stopped mid-query".into()))
                }
            }
        };
        let (state, mut stats) = outcome;
        // Shape the merged state on the caller's thread; any live
        // shard's plan shapes identically (shared schema).
        let shape = self
            .spec
            .compile_join(&self.shape_table, false, self.right.as_ref())?;
        stats.absorb(&self.pruned);
        QueryResult::from_state(&shape, state, stats)
    }
}

/// What a worker decided to do with the job at the queue front.
enum Claim {
    /// Execute `morsels[start..end]`.
    Lease { start: usize, end: usize },
    /// Job finished, aborted, or fully claimed — drop it from the
    /// queue.
    Drop,
    /// Job is at its lease cap — rotate it to the back and look at the
    /// next one.
    Capped,
}

fn claim(job: &Job) -> Claim {
    let mut inner = job.inner.lock().unwrap_or_else(PoisonError::into_inner);
    if inner.error.is_some() || inner.next >= job.morsels.len() {
        return Claim::Drop;
    }
    // A fired token abandons every unclaimed morsel right here — the
    // next worker to even look at the job drops it. With no lease in
    // flight this claim is the job's last observer, so it also
    // delivers; otherwise the last finishing lease does.
    if let Err(e) = job.cancel.check() {
        inner.error = Some(e);
        inner.next = job.morsels.len();
        if inner.active_leases == 0 {
            deliver(&mut inner, job.morsels.len());
        }
        return Claim::Drop;
    }
    if inner.active_leases >= job.max_leases {
        return Claim::Capped;
    }
    let start = inner.next;
    let end = (start + LEASE_MORSELS).min(job.morsels.len());
    inner.next = end;
    inner.active_leases += 1;
    // ordering: advisory per-job high-water mark; the load/store pair
    // is serialized by `job.inner`, which every claim holds here.
    let peak = job.peak_leases.load(Ordering::Relaxed);
    job.peak_leases
        .store(peak.max(inner.active_leases), Ordering::Relaxed); // ordering: as above
    Claim::Lease { start, end }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        // Find a job to lease from, holding the queue lock only for the
        // scan itself.
        let mut leased = None;
        {
            let mut state = shared.state.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                let mut rotations = 0;
                while rotations < state.queue.len() {
                    let Some(job) = state.queue.pop_front() else {
                        // Unreachable given the loop bound, but an empty
                        // queue simply ends the scan.
                        break;
                    };
                    match claim(&job) {
                        Claim::Lease { start, end } => {
                            // Unclaimed segments remain: keep the job
                            // rotating so other workers (and later
                            // visits) interleave it with its peers.
                            let unclaimed = job
                                .inner
                                .lock()
                                .unwrap_or_else(PoisonError::into_inner)
                                .next
                                < job.morsels.len();
                            if unclaimed {
                                state.queue.push_back(Arc::clone(&job));
                            }
                            leased = Some((job, start, end));
                            break;
                        }
                        Claim::Drop => {
                            // Not re-enqueued; rotation count unchanged
                            // (the queue shrank instead).
                        }
                        Claim::Capped => {
                            state.queue.push_back(job);
                            rotations += 1;
                        }
                    }
                }
                if leased.is_some() {
                    break;
                }
                if state.queue.is_empty() && state.stopping {
                    return;
                }
                state = shared
                    .work_ready
                    .wait(state)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }
        let Some((job, start, end)) = leased else {
            // Only reachable if the scan loop is broken out of without
            // a lease; re-scan rather than crash the worker.
            continue;
        };
        run_lease(shared, &job, start, end);
        // A finished lease may unblock a capped sibling or finish the
        // drain another worker is waiting on.
        shared.work_ready.notify_all();
    }
}

fn run_lease(shared: &PoolShared, job: &Job, start: usize, end: usize) {
    // ordering: advisory concurrency gauge; correctness of lease
    // accounting lives in `job.inner`, not in these counters.
    let active = shared.active_leases.fetch_add(1, Ordering::Relaxed) + 1;
    // ordering: monotonic high-water mark folded from the gauge above;
    // readers only ever see it after joining or stopping the pool.
    shared.peak_leases.fetch_max(active, Ordering::Relaxed);

    let mut state = SinkState::for_sink_shared(&job.sink, job.bound.clone());
    let mut stats = QueryStats::default();
    let mut plans: Vec<Option<PhysicalPlan<'_>>> = job.tables.iter().map(|_| None).collect();
    let mut error = None;
    for &(p, s) in job.morsels.get(start..end).unwrap_or_default() {
        // Morsel-granular cancellation: a deadline that expires (or a
        // client that vanishes) mid-lease stops this lease at the next
        // segment boundary instead of finishing its whole claim.
        if let Err(e) = job.cancel.check() {
            error = Some(e);
            break;
        }
        let (Some(slot), Some(table)) = (plans.get_mut(p), job.tables.get(p)) else {
            // Morsels are built as indexes into `job.tables`, so this
            // is internal corruption — fail the job, not the process.
            error = Some(StoreError::Shape(format!(
                "lease morsel names unknown shard {p}"
            )));
            break;
        };
        let plan = match slot {
            Some(plan) => plan,
            None => match job.spec.compile_join(table, false, job.right.as_ref()) {
                Ok(plan) => slot.insert(plan),
                Err(e) => {
                    error = Some(e);
                    break;
                }
            },
        };
        if let Err(e) = plan.execute_segment(s, &mut state, &mut stats) {
            error = Some(e);
            break;
        }
    }
    // Lease over: publish any batched top-k improvement to the leases
    // still running.
    state.flush_topk_bound();
    // ordering: advisory gauge decrement, paired with the fetch_add
    // above; never synchronizes data.
    shared.active_leases.fetch_sub(1, Ordering::Relaxed);

    let mut inner = job.inner.lock().unwrap_or_else(PoisonError::into_inner);
    inner.active_leases -= 1;
    match error {
        Some(e) => {
            // First error wins; unclaimed morsels are abandoned (the
            // queue scan drops the job on sight of the error).
            if inner.error.is_none() {
                inner.error = Some(e);
            }
        }
        None => {
            match &mut inner.merged {
                Some(merged) => merged.merge(state),
                slot @ None => *slot = Some(state),
            }
            inner.stats.absorb(&stats);
            inner.completed += end - start;
        }
    }
    let finished =
        inner.active_leases == 0 && (inner.error.is_some() || inner.completed == job.morsels.len());
    if finished {
        deliver(&mut inner, job.morsels.len());
    }
}

/// Deliver a finished job's outcome to its submitter. Callers hold the
/// job's `inner` lock and have established that no lease is active and
/// the job is done (error recorded or every morsel merged).
fn deliver(inner: &mut JobInner, total: usize) {
    if let Some(done) = inner.done.take() {
        let outcome = match (inner.error.take(), inner.merged.take()) {
            (Some(e), _) => Err(e),
            (None, Some(merged)) => Ok((merged, inner.stats)),
            // `completed == total` with a non-empty morsel list
            // guarantees at least one merge; guard anyway.
            (None, None) => Err(StoreError::Shape(format!(
                "job completed {} of {total} morsels without a merged state",
                inner.completed
            ))),
        };
        // The submitter may have given up (deadline answered early,
        // stopping server); a dead receiver is not the worker's
        // problem.
        let _ = done.send(outcome);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::shard_table;
    use crate::predicate::Predicate;
    use crate::query::Agg;
    use crate::schema::TableSchema;
    use crate::segment::CompressionPolicy;
    use crate::ShardedTable;
    use lcdc_core::{ColumnData, DType};

    fn orders(n: u64) -> Table {
        let schema = TableSchema::new(&[("day", DType::U64), ("qty", DType::U64)]);
        let day = ColumnData::U64((0..n).map(|i| 1 + i / 100).collect());
        let qty = ColumnData::U64((0..n).map(|i| 1 + i % 50).collect());
        Table::build(
            schema,
            &[day, qty],
            &[CompressionPolicy::Auto, CompressionPolicy::Auto],
            256,
        )
        .unwrap()
    }

    fn nocancel() -> Arc<CancelToken> {
        Arc::new(CancelToken::unbounded())
    }

    fn specs() -> Vec<QuerySpec> {
        vec![
            QuerySpec::new()
                .filter("day", Predicate::Range { lo: 5, hi: 24 })
                .aggregate(&[Agg::Sum("qty"), Agg::Min("qty"), Agg::Count]),
            QuerySpec::new()
                .filter("qty", Predicate::Range { lo: 10, hi: 40 })
                .group_by("day")
                .aggregate(&[Agg::Sum("qty"), Agg::Count]),
            QuerySpec::new().top_k("qty", 13),
            QuerySpec::new()
                .filter("day", Predicate::Range { lo: 0, hi: 9 })
                .distinct("qty"),
        ]
    }

    #[test]
    fn pool_matches_direct_execution() {
        let table = orders(6000);
        let single = CatalogTable::Single(Arc::new(table.clone()));
        let sharded = CatalogTable::Sharded(Arc::new(
            ShardedTable::new(shard_table(&table, 3).unwrap()).unwrap(),
        ));
        let pool = WorkerPool::new(3).unwrap();
        for spec in specs() {
            let want = spec.bind(&table).execute().unwrap();
            for handle in [&single, &sharded] {
                for threads in [1usize, 2, 8] {
                    let got = pool
                        .execute(handle, &spec, &ExecOptions::threads(threads), nocancel())
                        .unwrap();
                    assert_eq!(got.rows, want.rows, "{spec:?} x{threads}");
                }
            }
        }
        assert!(pool.peak_leases() <= pool.threads());
        pool.stop();
    }

    #[test]
    fn concurrent_jobs_interleave_and_all_finish() {
        let table = Arc::new(orders(20_000));
        let handle = CatalogTable::Single(Arc::clone(&table));
        let pool = Arc::new(WorkerPool::new(2).unwrap());
        let all = specs();
        let answers: Vec<_> = all
            .iter()
            .map(|s| s.bind(table.as_ref()).execute().unwrap())
            .collect();
        std::thread::scope(|scope| {
            for round in 0..3 {
                for (spec, want) in all.iter().zip(&answers) {
                    let (pool, handle) = (Arc::clone(&pool), handle.clone());
                    scope.spawn(move || {
                        let got = pool
                            .execute(
                                &handle,
                                spec,
                                &ExecOptions::threads(1 + round % 4),
                                nocancel(),
                            )
                            .unwrap();
                        assert_eq!(got.rows, want.rows);
                    });
                }
            }
        });
        assert!(pool.peak_leases() <= 2, "2-wide pool never over-executes");
        pool.stop();
    }

    #[test]
    fn client_thread_cap_bounds_a_jobs_leases() {
        let table = orders(50_000);
        let handle = CatalogTable::Single(Arc::new(table));
        let pool = WorkerPool::new(4).unwrap();
        let spec = QuerySpec::new()
            .filter("qty", Predicate::Range { lo: 0, hi: 49 })
            .group_by("day")
            .aggregate(&[Agg::Sum("qty")]);
        // A sequential client on a wide pool: execution must never run
        // two of its leases at once. Observed via the job's own peak,
        // which `execute` does not expose — so drive the internals the
        // way `execute` does, with a cap of 1.
        let got = pool
            .execute(&handle, &spec, &ExecOptions::threads(1), nocancel())
            .unwrap();
        assert!(got.stats.segments > 0);
        pool.stop();
    }

    #[test]
    fn errors_deliver_and_pool_survives() {
        let table = orders(3000);
        let handle = CatalogTable::Single(Arc::new(table.clone()));
        let pool = WorkerPool::new(2).unwrap();
        // Unknown column: rejected at submit-time compile.
        let bad = QuerySpec::new().aggregate(&[Agg::Sum("nope")]);
        assert!(pool
            .execute(&handle, &bad, &ExecOptions::threads(2), nocancel())
            .is_err());
        // The pool still works afterwards.
        let spec = QuerySpec::new().aggregate(&[Agg::Count]);
        let got = pool
            .execute(&handle, &spec, &ExecOptions::threads(2), nocancel())
            .unwrap();
        assert_eq!(
            got.aggregates().unwrap(),
            spec.bind(&table).execute().unwrap().aggregates().unwrap()
        );
        pool.stop();
    }

    #[test]
    fn pre_cancelled_token_rejects_at_submit_and_pool_survives() {
        let table = orders(3000);
        let handle = CatalogTable::Single(Arc::new(table.clone()));
        let pool = WorkerPool::new(2).unwrap();
        let token = nocancel();
        token.cancel();
        let spec = QuerySpec::new().aggregate(&[Agg::Count]);
        assert!(matches!(
            pool.execute(&handle, &spec, &ExecOptions::threads(2), token),
            Err(StoreError::Cancelled)
        ));
        // The pool keeps answering healthy requests afterwards.
        let got = pool
            .execute(&handle, &spec, &ExecOptions::threads(2), nocancel())
            .unwrap();
        assert_eq!(
            got.aggregates().unwrap(),
            spec.bind(&table).execute().unwrap().aggregates().unwrap()
        );
        pool.stop();
    }

    #[test]
    fn expired_deadline_surfaces_typed_and_aborts_morsels() {
        let table = orders(20_000);
        let handle = CatalogTable::Single(Arc::new(table));
        let pool = WorkerPool::new(2).unwrap();
        let spec = QuerySpec::new()
            .filter("qty", Predicate::Range { lo: 0, hi: 49 })
            .group_by("day")
            .aggregate(&[Agg::Sum("qty")]);
        // deadline_ms = 0 is expired before submit: the typed error
        // comes back without executing a single morsel.
        let token = Arc::new(CancelToken::with_deadline_ms(0));
        assert!(matches!(
            pool.execute(&handle, &spec, &ExecOptions::threads(2), token),
            Err(StoreError::DeadlineExceeded { deadline_ms: 0 })
        ));
        // A generous deadline executes normally.
        let token = Arc::new(CancelToken::with_deadline_ms(60_000));
        let got = pool
            .execute(&handle, &spec, &ExecOptions::threads(2), token)
            .unwrap();
        assert!(got.stats.segments > 0);
        pool.stop();
    }

    #[test]
    fn all_pruned_shards_shape_an_empty_result() {
        let table = orders(3000); // days 1..=30
        let handle = CatalogTable::Sharded(Arc::new(
            ShardedTable::new(shard_table(&table, 2).unwrap()).unwrap(),
        ));
        let pool = WorkerPool::new(2).unwrap();
        let spec = QuerySpec::new()
            .filter("day", Predicate::Range { lo: 900, hi: 999 })
            .aggregate(&[Agg::Sum("qty"), Agg::Count]);
        let got = pool
            .execute(&handle, &spec, &ExecOptions::threads(2), nocancel())
            .unwrap();
        assert_eq!(got.aggregates().unwrap(), &[Some(0), Some(0)]);
        assert_eq!(got.stats.shards_pruned, 2);
        pool.stop();
    }
}
