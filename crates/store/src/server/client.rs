//! A blocking client for the `lcdc serve` wire protocol.
//!
//! One [`Client`] wraps one connection and speaks strict
//! request/response: every call writes one frame and blocks for the
//! answer. The typed entry points ([`Client::query`],
//! [`Client::ingest`]) return the raw [`Response`] so callers can tell
//! a [`Response::Busy`] rejection from an error and react — back off,
//! retry, or fail — instead of losing the distinction in a stringly
//! error. `lcdc client` is a thin veneer over this type, and the e2e
//! tests drive servers through it.

use super::metrics::StatsReport;
use super::protocol::{Request, Response};
use crate::{Result, StoreError};
use lcdc_core::ColumnData;
use std::net::{TcpStream, ToSocketAddrs};

/// One connection to an `lcdc serve` instance.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a serving address (e.g. `127.0.0.1:7878`).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Client { stream })
    }

    /// Send one request and block for its response. A connection the
    /// server closed without answering is an error — responses are
    /// never silently dropped.
    pub fn request(&mut self, request: &Request) -> Result<Response> {
        request.write_to(&mut self.stream)?;
        Response::read_from(&mut self.stream)?.ok_or_else(|| {
            StoreError::CorruptFile("server closed the connection mid-request".into())
        })
    }

    /// Run a query: `args` is an `lcdc query`-style flag vector
    /// (filters, sink, execution knobs). Returns the raw response —
    /// [`Response::Rows`] on success, [`Response::Busy`] when admission
    /// control refused, [`Response::Error`] otherwise.
    pub fn query(&mut self, table: &str, args: &[String]) -> Result<Response> {
        self.request(&Request::Query {
            table: table.to_string(),
            args: args.to_vec(),
        })
    }

    /// Append a row batch (one column per schema column, schema order).
    /// Returns [`Response::Ingested`] with the published version, a
    /// [`Response::Busy`], or a [`Response::Error`].
    pub fn ingest(&mut self, table: &str, columns: Vec<ColumnData>) -> Result<Response> {
        self.request(&Request::Ingest {
            table: table.to_string(),
            columns,
        })
    }

    /// Fetch the server-wide metrics snapshot.
    pub fn stats(&mut self) -> Result<StatsReport> {
        match self.request(&Request::Stats)? {
            Response::Stats(report) => Ok(report),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("ping", &other)),
        }
    }

    /// Ask the server to shut down gracefully (drain, then exit). The
    /// server acknowledges before it starts draining.
    pub fn shutdown(&mut self) -> Result<()> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("shutdown", &other)),
        }
    }
}

fn unexpected(what: &str, got: &Response) -> StoreError {
    StoreError::Shape(match got {
        Response::Error { message } => format!("{what} failed: {message}"),
        other => format!("unexpected response to {what}: {other:?}"),
    })
}
