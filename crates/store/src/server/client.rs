//! A blocking client for the `lcdc serve` wire protocol.
//!
//! One [`Client`] wraps one connection and speaks strict
//! request/response: every call writes one frame and blocks for the
//! answer. The typed entry points ([`Client::query`],
//! [`Client::ingest`]) return the raw [`Response`] so callers can tell
//! a [`Response::Busy`] rejection from an error and react — back off,
//! retry, or fail — instead of losing the distinction in a stringly
//! error. `lcdc client` is a thin veneer over this type, and the e2e
//! tests drive servers through it.
//!
//! The client owns the retry discipline: a [`RetryPolicy`] arms capped
//! exponential backoff with seeded jitter, applied to the two failures
//! that are *expected* under load — a connect refused while the server
//! is still binding, and a typed [`Response::Busy`]. A `Busy` carries
//! the server's own `retry_after_ms` drain estimate, which floors the
//! backoff so clients wait at least as long as the server thinks one
//! slot takes to free. Retries and abandonments are counted on the
//! client ([`Client::retries`], [`Client::gave_up`]) so chaos tests
//! can assert the discipline actually engaged.

use super::metrics::StatsReport;
use super::protocol::{Request, Response};
use crate::fault::splitmix64;
use crate::{Result, StoreError};
use lcdc_core::ColumnData;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Backoff discipline for [`Client::connect_with`] and the
/// busy-retrying request paths. The default policy never retries —
/// opt in with a nonzero `max_retries`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Most retries per operation; `0` disables retrying entirely.
    pub max_retries: u32,
    /// First backoff step, milliseconds; doubles each retry.
    pub base_ms: u64,
    /// Ceiling on one backoff sleep, milliseconds.
    pub cap_ms: u64,
    /// Jitter seed — the same seed replays the same sleep schedule,
    /// which chaos tests rely on.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            base_ms: 25,
            cap_ms: 2000,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `attempt` (0-based): exponential
    /// from `base_ms`, capped at `cap_ms`, floored by the server's
    /// `hint_ms` drain estimate, then jittered into the upper half of
    /// the window so synchronized clients fan out. Never zero.
    fn backoff(&self, attempt: u32, hint_ms: u64) -> Duration {
        let exp = self
            .base_ms
            .saturating_mul(1u64 << attempt.min(16))
            .min(self.cap_ms);
        let full = exp.max(hint_ms).max(1);
        let jittered = full / 2 + splitmix64(self.seed ^ u64::from(attempt)) % (full / 2 + 1);
        Duration::from_millis(jittered.max(1))
    }
}

/// One connection to an `lcdc serve` instance.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    policy: RetryPolicy,
    deadline_ms: Option<u64>,
    retries: u64,
    gave_up: u64,
}

impl Client {
    /// Connect to a serving address (e.g. `127.0.0.1:7878`).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client> {
        Client::connect_with(addr, RetryPolicy::default())
    }

    /// Connect with a retry policy: a refused connection (the server
    /// still binding, or briefly gone) is retried up to
    /// `policy.max_retries` times with backoff before surfacing.
    pub fn connect_with<A: ToSocketAddrs>(addr: A, policy: RetryPolicy) -> Result<Client> {
        let mut attempt = 0u32;
        let stream = loop {
            match TcpStream::connect(&addr) {
                Ok(stream) => break stream,
                Err(e)
                    if e.kind() == std::io::ErrorKind::ConnectionRefused
                        && attempt < policy.max_retries =>
                {
                    std::thread::sleep(policy.backoff(attempt, 0));
                    attempt += 1;
                }
                Err(e) => return Err(e.into()),
            }
        };
        stream.set_nodelay(true)?;
        Ok(Client {
            stream,
            policy,
            deadline_ms: None,
            retries: u64::from(attempt),
            gave_up: 0,
        })
    }

    /// Deadline attached to every subsequent [`Client::query`], in
    /// milliseconds of server-side patience. `None` defers to the
    /// server's configured default.
    pub fn set_deadline_ms(&mut self, deadline_ms: Option<u64>) {
        self.deadline_ms = deadline_ms;
    }

    /// Backoff sleeps taken so far (busy retries and connect retries).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Operations that exhausted their retries and surfaced the final
    /// [`Response::Busy`] to the caller.
    pub fn gave_up(&self) -> u64 {
        self.gave_up
    }

    /// Send one request and block for its response. A connection the
    /// server closed without answering is an error — responses are
    /// never silently dropped.
    pub fn request(&mut self, request: &Request) -> Result<Response> {
        request.write_to(&mut self.stream)?;
        Response::read_from(&mut self.stream)?.ok_or_else(|| {
            StoreError::CorruptFile("server closed the connection mid-request".into())
        })
    }

    /// Send a request, retrying typed [`Response::Busy`] answers with
    /// backoff (floored by the server's `retry_after_ms` hint) until
    /// the policy's retries run out; the final `Busy` is then returned
    /// and counted in [`Client::gave_up`].
    fn request_retrying(&mut self, request: &Request) -> Result<Response> {
        let mut attempt = 0u32;
        loop {
            let response = self.request(request)?;
            let Response::Busy { retry_after_ms, .. } = response else {
                return Ok(response);
            };
            if attempt >= self.policy.max_retries {
                if self.policy.max_retries > 0 {
                    self.gave_up += 1;
                }
                return Ok(response);
            }
            std::thread::sleep(self.policy.backoff(attempt, retry_after_ms));
            self.retries += 1;
            attempt += 1;
        }
    }

    /// Run a query: `args` is an `lcdc query`-style flag vector
    /// (filters, sink, execution knobs). Returns the raw response —
    /// [`Response::Rows`] on success, [`Response::Busy`] when admission
    /// control refused past the retry budget, [`Response::Deadline`] /
    /// [`Response::Cancelled`] when the server aborted the query,
    /// [`Response::Error`] otherwise.
    pub fn query(&mut self, table: &str, args: &[String]) -> Result<Response> {
        self.request_retrying(&Request::Query {
            table: table.to_string(),
            args: args.to_vec(),
            deadline_ms: self.deadline_ms,
        })
    }

    /// Append a row batch (one column per schema column, schema order).
    /// Returns [`Response::Ingested`] with the published version, a
    /// [`Response::Busy`] (after the retry budget), or a
    /// [`Response::Error`].
    pub fn ingest(&mut self, table: &str, columns: Vec<ColumnData>) -> Result<Response> {
        self.request_retrying(&Request::Ingest {
            table: table.to_string(),
            columns,
        })
    }

    /// Fetch the server-wide metrics snapshot.
    pub fn stats(&mut self) -> Result<StatsReport> {
        match self.request(&Request::Stats)? {
            Response::Stats(report) => Ok(report),
            other => Err(unexpected("stats", &other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<()> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("ping", &other)),
        }
    }

    /// Ask the server to shut down gracefully (drain, then exit). The
    /// server acknowledges before it starts draining.
    pub fn shutdown(&mut self) -> Result<()> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected("shutdown", &other)),
        }
    }
}

fn unexpected(what: &str, got: &Response) -> StoreError {
    StoreError::Shape(match got {
        Response::Error { message } => format!("{what} failed: {message}"),
        other => format!("unexpected response to {what}: {other:?}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_capped_floored_and_deterministic() {
        let policy = RetryPolicy {
            max_retries: 8,
            base_ms: 10,
            cap_ms: 100,
            seed: 42,
        };
        for attempt in 0..8 {
            let a = policy.backoff(attempt, 0);
            let b = policy.backoff(attempt, 0);
            assert_eq!(a, b, "same seed, same schedule");
            assert!(a >= Duration::from_millis(1));
            // Window: [full/2, full] where full <= cap floored by hint.
            assert!(a <= Duration::from_millis(100));
        }
        // The hint floors the window even when the exponent is tiny.
        let hinted = policy.backoff(0, 500);
        assert!(hinted >= Duration::from_millis(250));
        assert!(hinted <= Duration::from_millis(500));
        // Huge attempts don't overflow the shift.
        let _ = policy.backoff(u32::MAX, 0);
    }
}
