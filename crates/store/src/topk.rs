//! Top-k over compressed columns, as a thin adapter over the planner.
//!
//! The paper's §II-B: "the rough correspondence of the column data to a
//! simple model can be used to speed up selections". Top-k is a
//! selection whose predicate bound is *discovered during execution*: the
//! running k-th largest value. The planner's top-k sink visits segments
//! best-max first and skips — without decompressing a single row — every
//! segment whose zone-map maximum cannot beat that bound; RLE/RPE
//! segments that do survive are folded *run-structurally* (one value
//! per run, `min(run length, k)` multiplicity) instead of being
//! decompressed. Under the morsel executor the discovered bound is
//! additionally *shared*: every worker (and every shard of a fan-in)
//! publishes its k-th value into one process-wide atomic and prunes
//! against the tightest bound anyone found, so a late worker benefits
//! from an early worker's heap
//! ([`crate::ExecOptions::topk_shared_bound`],
//! [`crate::query::QueryStats::topk_segments_skipped`]). These free
//! functions keep the original signatures; new code should use
//! [`crate::QueryBuilder::top_k`], which also composes with filters
//! and the parallel executor.

use crate::query::QueryBuilder;
use crate::table::Table;
use crate::Result;

/// Execution counters for [`top_k_pruned`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TopKStats {
    /// Segments whose rows were examined.
    pub segments_scanned: usize,
    /// Segments skipped on zone-map evidence.
    pub segments_pruned: usize,
    /// Rows decompressed.
    pub rows_materialized: usize,
}

/// Baseline: materialise the whole column, take the k largest.
/// Returned descending.
pub fn top_k_naive(table: &Table, column: &str, k: usize) -> Result<Vec<i128>> {
    let result = QueryBuilder::scan(table).top_k(column, k).execute_naive()?;
    Ok(result.top_k().expect("top-k plan").to_vec())
}

/// Zone-map-pruned top-k: visit segments in descending order of their
/// maximum; once k values are held, skip every segment whose maximum is
/// no better than the current k-th value. Returned descending.
pub fn top_k_pruned(table: &Table, column: &str, k: usize) -> Result<(Vec<i128>, TopKStats)> {
    let result = QueryBuilder::scan(table).top_k(column, k).execute()?;
    let stats = TopKStats {
        segments_scanned: result.stats.segments - result.stats.segments_pruned,
        segments_pruned: result.stats.segments_pruned,
        rows_materialized: result.stats.rows_materialized,
    };
    Ok((result.top_k().expect("top-k plan").to_vec(), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::CompressionPolicy;
    use lcdc_core::ColumnData;

    fn skewed_table() -> Table {
        // A drifting walk: later segments dominate, so ascending-max
        // visit order would scan everything; descending order prunes.
        let col = ColumnData::I64((0..8000i64).map(|i| i / 4 + (i % 29) - 14).collect());
        let schema = crate::schema::TableSchema::new(&[("v", lcdc_core::DType::I64)]);
        Table::build(
            schema,
            &[col],
            &[CompressionPolicy::Fixed("for(l=128)[offsets=ns]".into())],
            512,
        )
        .unwrap()
    }

    #[test]
    fn pruned_matches_naive() {
        let t = skewed_table();
        for k in [1, 10, 100, 512, 9000] {
            let naive = top_k_naive(&t, "v", k).unwrap();
            let (pruned, _) = top_k_pruned(&t, "v", k).unwrap();
            assert_eq!(pruned, naive, "k={k}");
        }
    }

    #[test]
    fn most_segments_pruned_for_small_k() {
        let t = skewed_table();
        let (_, stats) = top_k_pruned(&t, "v", 10).unwrap();
        assert!(
            stats.segments_pruned > stats.segments_scanned * 3,
            "{stats:?}"
        );
        assert!(stats.rows_materialized < 2048, "{stats:?}");
    }

    #[test]
    fn k_zero_touches_nothing() {
        let t = skewed_table();
        let (top, stats) = top_k_pruned(&t, "v", 0).unwrap();
        assert!(top.is_empty());
        assert_eq!(stats.segments_scanned, 0);
        assert_eq!(stats.rows_materialized, 0);
    }

    #[test]
    fn k_larger_than_table_returns_all_sorted() {
        let col = ColumnData::U32(vec![5, 1, 9, 9, 3]);
        let schema = crate::schema::TableSchema::new(&[("v", lcdc_core::DType::U32)]);
        let t = Table::build(schema, &[col], &[CompressionPolicy::None], 2).unwrap();
        let (top, _) = top_k_pruned(&t, "v", 100).unwrap();
        assert_eq!(top, vec![9, 9, 5, 3, 1]);
    }

    #[test]
    fn duplicates_at_the_threshold() {
        // Ties at the k-th value: both paths must agree on multiplicity.
        let col = ColumnData::U32(vec![7, 7, 7, 7, 6, 8]);
        let schema = crate::schema::TableSchema::new(&[("v", lcdc_core::DType::U32)]);
        let t = Table::build(schema, &[col], &[CompressionPolicy::None], 3).unwrap();
        let naive = top_k_naive(&t, "v", 3).unwrap();
        let (pruned, _) = top_k_pruned(&t, "v", 3).unwrap();
        assert_eq!(pruned, naive);
        assert_eq!(pruned, vec![8, 7, 7]);
    }

    #[test]
    fn missing_column_errors() {
        let t = skewed_table();
        assert!(top_k_pruned(&t, "nope", 3).is_err());
    }

    #[test]
    fn rle_top_k_is_run_structural() {
        // Runs under RLE: the adapter's pruned path decompresses zero
        // rows (run values folded with min(run length, k) multiplicity)
        // yet agrees with naive, duplicates included.
        let col = ColumnData::U64((0..6000u64).map(|i| (i / 30) % 97).collect());
        let schema = crate::schema::TableSchema::new(&[("v", lcdc_core::DType::U64)]);
        let t = Table::build(
            schema,
            &[col],
            &[CompressionPolicy::Fixed("rle[values=ns,lengths=ns]".into())],
            600,
        )
        .unwrap();
        for k in [5usize, 40, 7000] {
            let naive = top_k_naive(&t, "v", k).unwrap();
            let (pruned, stats) = top_k_pruned(&t, "v", k).unwrap();
            assert_eq!(pruned, naive, "k={k}");
            assert_eq!(stats.rows_materialized, 0, "k={k}");
        }
    }
}
