//! Top-k over compressed columns with model-metadata pruning.
//!
//! The paper's §II-B: "the rough correspondence of the column data to a
//! simple model can be used to speed up selections". Top-k is a
//! selection whose predicate bound is *discovered during execution*: the
//! running k-th largest value. Segment zone maps — which for FOR/STEP
//! forms are the model metadata itself — let whole segments be skipped
//! once their maximum cannot beat that bound, without decompressing a
//! single row.

use crate::table::Table;
use crate::Result;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Execution counters for [`top_k_pruned`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TopKStats {
    /// Segments whose rows were examined.
    pub segments_scanned: usize,
    /// Segments skipped on zone-map evidence.
    pub segments_pruned: usize,
    /// Rows decompressed.
    pub rows_materialized: usize,
}

/// Baseline: materialise the whole column, sort, take the k largest.
/// Returned descending.
pub fn top_k_naive(table: &Table, column: &str, k: usize) -> Result<Vec<i128>> {
    let col = table.materialize(column)?;
    let mut numeric = col.to_numeric();
    numeric.sort_unstable_by(|a, b| b.cmp(a));
    numeric.truncate(k);
    Ok(numeric)
}

/// Zone-map-pruned top-k: visit segments in descending order of their
/// maximum; once k values are held, skip every segment whose maximum is
/// no better than the current k-th value. Returned descending.
pub fn top_k_pruned(table: &Table, column: &str, k: usize) -> Result<(Vec<i128>, TopKStats)> {
    let segments = table.column_segments(column)?;
    let mut stats = TopKStats::default();
    if k == 0 {
        stats.segments_pruned = segments.len();
        return Ok((Vec::new(), stats));
    }
    // Visit order: best possible value first, so the threshold tightens
    // as early as possible.
    let mut order: Vec<usize> = (0..segments.len()).collect();
    order.sort_unstable_by_key(|&i| Reverse(segments[i].max));

    let mut heap: BinaryHeap<Reverse<i128>> = BinaryHeap::with_capacity(k + 1);
    for seg_idx in order {
        let seg = &segments[seg_idx];
        if seg.num_rows() == 0 {
            stats.segments_pruned += 1;
            continue;
        }
        if heap.len() == k {
            let Reverse(threshold) = *heap.peek().expect("heap holds k values");
            if seg.max <= threshold {
                stats.segments_pruned += 1;
                continue;
            }
        }
        stats.segments_scanned += 1;
        let col = seg.decompress()?;
        stats.rows_materialized += col.len();
        for i in 0..col.len() {
            let v = col.get_numeric(i).expect("in range");
            if heap.len() < k {
                heap.push(Reverse(v));
            } else if v > heap.peek().expect("non-empty").0 {
                heap.pop();
                heap.push(Reverse(v));
            }
        }
    }
    let mut out: Vec<i128> = heap.into_iter().map(|Reverse(v)| v).collect();
    out.sort_unstable_by(|a, b| b.cmp(a));
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::CompressionPolicy;
    use lcdc_core::ColumnData;

    fn skewed_table() -> Table {
        // A drifting walk: later segments dominate, so ascending-max
        // visit order would scan everything; descending order prunes.
        let col = ColumnData::I64((0..8000i64).map(|i| i / 4 + (i % 29) - 14).collect());
        let schema = crate::schema::TableSchema::new(&[("v", lcdc_core::DType::I64)]);
        Table::build(
            schema,
            &[col],
            &[CompressionPolicy::Fixed("for(l=128)[offsets=ns]".into())],
            512,
        )
        .unwrap()
    }

    #[test]
    fn pruned_matches_naive() {
        let t = skewed_table();
        for k in [1, 10, 100, 512, 9000] {
            let naive = top_k_naive(&t, "v", k).unwrap();
            let (pruned, _) = top_k_pruned(&t, "v", k).unwrap();
            assert_eq!(pruned, naive, "k={k}");
        }
    }

    #[test]
    fn most_segments_pruned_for_small_k() {
        let t = skewed_table();
        let (_, stats) = top_k_pruned(&t, "v", 10).unwrap();
        assert!(
            stats.segments_pruned > stats.segments_scanned * 3,
            "{stats:?}"
        );
        assert!(stats.rows_materialized < 2048, "{stats:?}");
    }

    #[test]
    fn k_zero_touches_nothing() {
        let t = skewed_table();
        let (top, stats) = top_k_pruned(&t, "v", 0).unwrap();
        assert!(top.is_empty());
        assert_eq!(stats.segments_scanned, 0);
        assert_eq!(stats.rows_materialized, 0);
    }

    #[test]
    fn k_larger_than_table_returns_all_sorted() {
        let col = ColumnData::U32(vec![5, 1, 9, 9, 3]);
        let schema = crate::schema::TableSchema::new(&[("v", lcdc_core::DType::U32)]);
        let t = Table::build(schema, &[col], &[CompressionPolicy::None], 2).unwrap();
        let (top, _) = top_k_pruned(&t, "v", 100).unwrap();
        assert_eq!(top, vec![9, 9, 5, 3, 1]);
    }

    #[test]
    fn duplicates_at_the_threshold() {
        // Ties at the k-th value: both paths must agree on multiplicity.
        let col = ColumnData::U32(vec![7, 7, 7, 7, 6, 8]);
        let schema = crate::schema::TableSchema::new(&[("v", lcdc_core::DType::U32)]);
        let t = Table::build(schema, &[col], &[CompressionPolicy::None], 3).unwrap();
        let naive = top_k_naive(&t, "v", 3).unwrap();
        let (pruned, _) = top_k_pruned(&t, "v", 3).unwrap();
        assert_eq!(pruned, naive);
        assert_eq!(pruned, vec![8, 7, 7]);
    }

    #[test]
    fn missing_column_errors() {
        let t = skewed_table();
        assert!(top_k_pruned(&t, "nope", 3).is_err());
    }
}
