//! Join kernels on compressed columns.
//!
//! The paper (§II-B) lists joins next to selections among the operations
//! a model-aware engine can speed up. The demonstration here is the
//! equi-join *cardinality* (`|{(i,j) : a[i] == b[j]}|`, the core of any
//! hash join's build/probe accounting):
//!
//! * the **naive** path decompresses both sides and hashes row by row;
//! * the **run-aware** path partially decompresses only the run values
//!   and lengths of RLE/RPE sides, hashing one entry *per run* and
//!   multiplying lengths — `Σ_v count_a(v)·count_b(v)` computed at run
//!   granularity.

use crate::segment::Segment;
use crate::Result;
use lcdc_core::schemes::{dict, rle, rpe};
use lcdc_core::ColumnData;
use std::collections::HashMap;

/// Value -> total row count, the histogram both join paths reduce to.
type Histogram = HashMap<i128, u64>;

/// One segment's join build side at the best structural granularity —
/// what the planner's join sink caches per `(shard, segment)` and the
/// standalone cardinality kernels below fold together.
#[derive(Debug, Clone, Default)]
pub(crate) struct SegmentHistogram {
    /// value -> row count.
    pub(crate) hist: Histogram,
    /// The dictionary side when the segment is DICT-compressed:
    /// `(value -> code, per-code row counts)` — what the join sink's
    /// code→code translation tier probes instead of `hist`.
    pub(crate) dict: Option<(HashMap<i128, usize>, Vec<u64>)>,
    /// Rows consumed without decompressing the row form (the whole
    /// segment for const/dict/rle/rpe; 0 for the decoded fallback).
    pub(crate) undecoded_rows: usize,
}

impl SegmentHistogram {
    /// The CONST build side: one value, `rows` copies — constructible
    /// from a zone map alone, with no payload in hand.
    pub(crate) fn constant(value: i128, rows: usize) -> SegmentHistogram {
        SegmentHistogram {
            hist: Histogram::from([(value, rows as u64)]),
            dict: None,
            undecoded_rows: rows,
        }
    }

    /// The fully-decoded build side (the naive baseline's only tier).
    pub(crate) fn decoded(col: &ColumnData) -> SegmentHistogram {
        SegmentHistogram {
            hist: histogram_plain(col),
            dict: None,
            undecoded_rows: 0,
        }
    }
}

fn histogram_plain(col: &ColumnData) -> Histogram {
    let mut h = Histogram::new();
    for i in 0..col.len() {
        *h.entry(col.get_numeric(i).expect("in range")).or_insert(0) += 1;
    }
    h
}

/// Histogram one compressed segment at the best structural tier: CONST
/// from its zone map, DICT by counting codes (each distinct value
/// decoded once, with the dictionary side kept for code→code joins),
/// RLE/RPE one entry per run with run-length weights, full row
/// decompression only as the last resort.
pub(crate) fn segment_histogram(segment: &Segment) -> Result<SegmentHistogram> {
    let n = segment.num_rows();
    match segment.scheme_base() {
        "const" => return Ok(SegmentHistogram::constant(segment.min, n)),
        "dict" => {
            let scheme = segment.scheme()?;
            let values = scheme.decompress_part(&segment.compressed, dict::ROLE_DICT)?;
            let codes = scheme.decompress_part(&segment.compressed, dict::ROLE_CODES)?;
            let codes = codes.to_transport();
            let mut counts = vec![0u64; values.len()];
            for i in 0..n {
                counts[codes[i] as usize] += 1;
            }
            let mut hist = Histogram::with_capacity(values.len());
            let mut value_to_code = HashMap::with_capacity(values.len());
            for (code, &count) in counts.iter().enumerate() {
                let value = values.get_numeric(code).expect("in range");
                value_to_code.insert(value, code);
                if count > 0 {
                    *hist.entry(value).or_insert(0) += count;
                }
            }
            return Ok(SegmentHistogram {
                hist,
                dict: Some((value_to_code, counts)),
                undecoded_rows: n,
            });
        }
        _ => {}
    }
    let scheme_id = segment.compressed.scheme_id.as_str();
    let run_parts = if scheme_id == "rle" || scheme_id.starts_with("rle[") {
        let scheme = segment.scheme()?;
        let values = scheme.decompress_part(&segment.compressed, rle::ROLE_VALUES)?;
        let lengths = scheme.decompress_part(&segment.compressed, rle::ROLE_LENGTHS)?;
        let weights: Vec<u64> = (0..lengths.len())
            .map(|i| lengths.get_numeric(i).expect("in range") as u64)
            .collect();
        Some((values, weights))
    } else if scheme_id == "rpe" || scheme_id.starts_with("rpe[") {
        let scheme = segment.scheme()?;
        let values = scheme.decompress_part(&segment.compressed, rpe::ROLE_VALUES)?;
        let positions = scheme.decompress_part(&segment.compressed, rpe::ROLE_POSITIONS)?;
        let mut weights = Vec::with_capacity(positions.len());
        let mut start = 0i128;
        for i in 0..positions.len() {
            let end = positions.get_numeric(i).expect("in range");
            weights.push((end - start) as u64);
            start = end;
        }
        Some((values, weights))
    } else {
        None
    };
    match run_parts {
        Some((values, weights)) => {
            let mut hist = Histogram::with_capacity(values.len());
            for (i, &w) in weights.iter().enumerate() {
                *hist
                    .entry(values.get_numeric(i).expect("in range"))
                    .or_insert(0) += w;
            }
            Ok(SegmentHistogram {
                hist,
                dict: None,
                undecoded_rows: n,
            })
        }
        None => Ok(SegmentHistogram::decoded(&segment.decompress()?)),
    }
}

/// Histogram of a compressed segment at the best available granularity:
/// zone-map probe for CONST, per-code counting for DICT, one hash
/// update per *run* for the RLE family, per row otherwise. The
/// planner's join sink builds on the same kernel
/// (`segment_histogram`), so the standalone cardinality identity
/// below regression-tests the operator's build side.
pub fn histogram_segment(segment: &Segment) -> Result<Histogram> {
    Ok(segment_histogram(segment)?.hist)
}

fn merge(into: &mut Histogram, from: Histogram) {
    for (value, count) in from {
        *into.entry(value).or_insert(0) += count;
    }
}

fn join_cardinality(a: &Histogram, b: &Histogram) -> u128 {
    // Probe the smaller side into the larger.
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    small
        .iter()
        .filter_map(|(value, &ca)| large.get(value).map(|&cb| ca as u128 * cb as u128))
        .sum()
}

/// Naive equi-join cardinality: decompress both segment lists fully.
pub fn join_count_naive(a: &[Segment], b: &[Segment]) -> Result<u128> {
    let mut ha = Histogram::new();
    for seg in a {
        merge(&mut ha, histogram_plain(&seg.decompress()?));
    }
    let mut hb = Histogram::new();
    for seg in b {
        merge(&mut hb, histogram_plain(&seg.decompress()?));
    }
    Ok(join_cardinality(&ha, &hb))
}

/// Run-aware equi-join cardinality: RLE/RPE sides are hashed one entry
/// per run via partial decompression.
pub fn join_count_compressed(a: &[Segment], b: &[Segment]) -> Result<u128> {
    let mut ha = Histogram::new();
    for seg in a {
        merge(&mut ha, histogram_segment(seg)?);
    }
    let mut hb = Histogram::new();
    for seg in b {
        merge(&mut hb, histogram_segment(seg)?);
    }
    Ok(join_cardinality(&ha, &hb))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::CompressionPolicy;

    fn segments(col: &ColumnData, expr: &str) -> Vec<Segment> {
        vec![Segment::build(col, &CompressionPolicy::Fixed(expr.to_string())).unwrap()]
    }

    #[test]
    fn paths_agree_on_runny_sides() {
        let a = ColumnData::U64(vec![1, 1, 1, 2, 2, 3, 3, 3, 3]);
        let b = ColumnData::U64(vec![2, 2, 2, 3, 5, 5]);
        let sa = segments(&a, "rle[values=ns,lengths=ns]");
        let sb = segments(&b, "rpe[values=ns,positions=ns]");
        let naive = join_count_naive(&sa, &sb).unwrap();
        let fast = join_count_compressed(&sa, &sb).unwrap();
        // pairs: value 2 -> 2*3 = 6, value 3 -> 4*1 = 4.
        assert_eq!(naive, 10);
        assert_eq!(fast, 10);
    }

    #[test]
    fn mixed_schemes_fall_back() {
        let a = ColumnData::U64(vec![7, 8, 9, 7]);
        let b = ColumnData::U64(vec![7, 7, 9]);
        let sa = segments(&a, "ns");
        let sb = segments(&b, "rle[values=ns,lengths=ns]");
        assert_eq!(
            join_count_naive(&sa, &sb).unwrap(),
            join_count_compressed(&sa, &sb).unwrap()
        );
        assert_eq!(join_count_compressed(&sa, &sb).unwrap(), 2 * 2 + 1);
    }

    #[test]
    fn empty_sides() {
        let a = ColumnData::U64(vec![]);
        let b = ColumnData::U64(vec![1, 2]);
        let sa = segments(&a, "ns");
        let sb = segments(&b, "ns");
        assert_eq!(join_count_compressed(&sa, &sb).unwrap(), 0);
        assert_eq!(join_count_naive(&sa, &sb).unwrap(), 0);
    }

    #[test]
    fn disjoint_sides_yield_zero() {
        let a = ColumnData::U64(vec![1; 100]);
        let b = ColumnData::U64(vec![2; 100]);
        let sa = segments(&a, "rle[values=ns,lengths=ns]");
        let sb = segments(&b, "rle[values=ns,lengths=ns]");
        assert_eq!(join_count_compressed(&sa, &sb).unwrap(), 0);
    }

    #[test]
    fn multi_segment_sides() {
        let a = ColumnData::U64((0..4000u64).map(|i| i / 100).collect());
        let b = ColumnData::U64((0..2000u64).map(|i| i / 25).collect());
        let sa: Vec<Segment> = a
            .to_transport()
            .chunks(1000)
            .map(|c| {
                Segment::build(
                    &ColumnData::U64(c.to_vec()),
                    &CompressionPolicy::Fixed("rle[values=ns,lengths=ns]".into()),
                )
                .unwrap()
            })
            .collect();
        let sb: Vec<Segment> = b
            .to_transport()
            .chunks(500)
            .map(|c| {
                Segment::build(&ColumnData::U64(c.to_vec()), &CompressionPolicy::Auto).unwrap()
            })
            .collect();
        assert_eq!(
            join_count_naive(&sa, &sb).unwrap(),
            join_count_compressed(&sa, &sb).unwrap()
        );
    }

    #[test]
    fn signed_values_join() {
        let a = ColumnData::I64(vec![-5, -5, 3]);
        let b = ColumnData::I64(vec![-5, 3, 3]);
        let sa = segments(&a, "rle[values=id,lengths=ns]");
        let sb = segments(&b, "id");
        assert_eq!(join_count_compressed(&sa, &sb).unwrap(), 2 + 2);
    }

    #[test]
    fn dict_and_const_sides_are_structural() {
        let a = ColumnData::U64(vec![5; 40]);
        let b = ColumnData::U64((0..40).map(|i| 3 + i % 4).collect());
        let sa = segments(&a, "const");
        let sb = segments(&b, "dict[codes=ns]");
        assert_eq!(
            join_count_naive(&sa, &sb).unwrap(),
            join_count_compressed(&sa, &sb).unwrap()
        );
        // value 5 appears 40x left, 10x right.
        assert_eq!(join_count_compressed(&sa, &sb).unwrap(), 400);
        let built = segment_histogram(&sa[0]).unwrap();
        assert_eq!(built.undecoded_rows, 40, "const side never decodes");
        let built = segment_histogram(&sb[0]).unwrap();
        assert_eq!(built.undecoded_rows, 40, "dict side counts codes");
        let (value_to_code, counts) = built.dict.expect("dict side kept");
        assert_eq!(value_to_code.len(), 4);
        assert_eq!(counts.iter().sum::<u64>(), 40);
    }
}
