//! Join kernels on compressed columns.
//!
//! The paper (§II-B) lists joins next to selections among the operations
//! a model-aware engine can speed up. The demonstration here is the
//! equi-join *cardinality* (`|{(i,j) : a[i] == b[j]}|`, the core of any
//! hash join's build/probe accounting):
//!
//! * the **naive** path decompresses both sides and hashes row by row;
//! * the **run-aware** path partially decompresses only the run values
//!   and lengths of RLE/RPE sides, hashing one entry *per run* and
//!   multiplying lengths — `Σ_v count_a(v)·count_b(v)` computed at run
//!   granularity.

use crate::segment::Segment;
use crate::Result;
use lcdc_core::schemes::{rle, rpe};
use lcdc_core::ColumnData;
use std::collections::HashMap;

/// Value -> total row count, the histogram both join paths reduce to.
type Histogram = HashMap<i128, u64>;

fn histogram_plain(col: &ColumnData) -> Histogram {
    let mut h = Histogram::new();
    for i in 0..col.len() {
        *h.entry(col.get_numeric(i).expect("in range")).or_insert(0) += 1;
    }
    h
}

/// Histogram of a compressed segment at the best available granularity:
/// one hash update per *run* for the RLE family, per row otherwise.
pub fn histogram_segment(segment: &Segment) -> Result<Histogram> {
    let scheme_id = segment.compressed.scheme_id.as_str();
    let run_parts = if scheme_id == "rle" || scheme_id.starts_with("rle[") {
        let scheme = segment.scheme()?;
        let values = scheme.decompress_part(&segment.compressed, rle::ROLE_VALUES)?;
        let lengths = scheme.decompress_part(&segment.compressed, rle::ROLE_LENGTHS)?;
        let weights: Vec<u64> = (0..lengths.len())
            .map(|i| lengths.get_numeric(i).expect("in range") as u64)
            .collect();
        Some((values, weights))
    } else if scheme_id == "rpe" || scheme_id.starts_with("rpe[") {
        let scheme = segment.scheme()?;
        let values = scheme.decompress_part(&segment.compressed, rpe::ROLE_VALUES)?;
        let positions = scheme.decompress_part(&segment.compressed, rpe::ROLE_POSITIONS)?;
        let mut weights = Vec::with_capacity(positions.len());
        let mut start = 0i128;
        for i in 0..positions.len() {
            let end = positions.get_numeric(i).expect("in range");
            weights.push((end - start) as u64);
            start = end;
        }
        Some((values, weights))
    } else {
        None
    };
    match run_parts {
        Some((values, weights)) => {
            let mut h = Histogram::with_capacity(values.len());
            for (i, &w) in weights.iter().enumerate() {
                *h.entry(values.get_numeric(i).expect("in range"))
                    .or_insert(0) += w;
            }
            Ok(h)
        }
        None => Ok(histogram_plain(&segment.decompress()?)),
    }
}

fn merge(into: &mut Histogram, from: Histogram) {
    for (value, count) in from {
        *into.entry(value).or_insert(0) += count;
    }
}

fn join_cardinality(a: &Histogram, b: &Histogram) -> u128 {
    // Probe the smaller side into the larger.
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    small
        .iter()
        .filter_map(|(value, &ca)| large.get(value).map(|&cb| ca as u128 * cb as u128))
        .sum()
}

/// Naive equi-join cardinality: decompress both segment lists fully.
pub fn join_count_naive(a: &[Segment], b: &[Segment]) -> Result<u128> {
    let mut ha = Histogram::new();
    for seg in a {
        merge(&mut ha, histogram_plain(&seg.decompress()?));
    }
    let mut hb = Histogram::new();
    for seg in b {
        merge(&mut hb, histogram_plain(&seg.decompress()?));
    }
    Ok(join_cardinality(&ha, &hb))
}

/// Run-aware equi-join cardinality: RLE/RPE sides are hashed one entry
/// per run via partial decompression.
pub fn join_count_compressed(a: &[Segment], b: &[Segment]) -> Result<u128> {
    let mut ha = Histogram::new();
    for seg in a {
        merge(&mut ha, histogram_segment(seg)?);
    }
    let mut hb = Histogram::new();
    for seg in b {
        merge(&mut hb, histogram_segment(seg)?);
    }
    Ok(join_cardinality(&ha, &hb))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::CompressionPolicy;

    fn segments(col: &ColumnData, expr: &str) -> Vec<Segment> {
        vec![Segment::build(col, &CompressionPolicy::Fixed(expr.to_string())).unwrap()]
    }

    #[test]
    fn paths_agree_on_runny_sides() {
        let a = ColumnData::U64(vec![1, 1, 1, 2, 2, 3, 3, 3, 3]);
        let b = ColumnData::U64(vec![2, 2, 2, 3, 5, 5]);
        let sa = segments(&a, "rle[values=ns,lengths=ns]");
        let sb = segments(&b, "rpe[values=ns,positions=ns]");
        let naive = join_count_naive(&sa, &sb).unwrap();
        let fast = join_count_compressed(&sa, &sb).unwrap();
        // pairs: value 2 -> 2*3 = 6, value 3 -> 4*1 = 4.
        assert_eq!(naive, 10);
        assert_eq!(fast, 10);
    }

    #[test]
    fn mixed_schemes_fall_back() {
        let a = ColumnData::U64(vec![7, 8, 9, 7]);
        let b = ColumnData::U64(vec![7, 7, 9]);
        let sa = segments(&a, "ns");
        let sb = segments(&b, "rle[values=ns,lengths=ns]");
        assert_eq!(
            join_count_naive(&sa, &sb).unwrap(),
            join_count_compressed(&sa, &sb).unwrap()
        );
        assert_eq!(join_count_compressed(&sa, &sb).unwrap(), 2 * 2 + 1);
    }

    #[test]
    fn empty_sides() {
        let a = ColumnData::U64(vec![]);
        let b = ColumnData::U64(vec![1, 2]);
        let sa = segments(&a, "ns");
        let sb = segments(&b, "ns");
        assert_eq!(join_count_compressed(&sa, &sb).unwrap(), 0);
        assert_eq!(join_count_naive(&sa, &sb).unwrap(), 0);
    }

    #[test]
    fn disjoint_sides_yield_zero() {
        let a = ColumnData::U64(vec![1; 100]);
        let b = ColumnData::U64(vec![2; 100]);
        let sa = segments(&a, "rle[values=ns,lengths=ns]");
        let sb = segments(&b, "rle[values=ns,lengths=ns]");
        assert_eq!(join_count_compressed(&sa, &sb).unwrap(), 0);
    }

    #[test]
    fn multi_segment_sides() {
        let a = ColumnData::U64((0..4000u64).map(|i| i / 100).collect());
        let b = ColumnData::U64((0..2000u64).map(|i| i / 25).collect());
        let sa: Vec<Segment> = a
            .to_transport()
            .chunks(1000)
            .map(|c| {
                Segment::build(
                    &ColumnData::U64(c.to_vec()),
                    &CompressionPolicy::Fixed("rle[values=ns,lengths=ns]".into()),
                )
                .unwrap()
            })
            .collect();
        let sb: Vec<Segment> = b
            .to_transport()
            .chunks(500)
            .map(|c| {
                Segment::build(&ColumnData::U64(c.to_vec()), &CompressionPolicy::Auto).unwrap()
            })
            .collect();
        assert_eq!(
            join_count_naive(&sa, &sb).unwrap(),
            join_count_compressed(&sa, &sb).unwrap()
        );
    }

    #[test]
    fn signed_values_join() {
        let a = ColumnData::I64(vec![-5, -5, 3]);
        let b = ColumnData::I64(vec![-5, 3, 3]);
        let sa = segments(&a, "rle[values=id,lengths=ns]");
        let sb = segments(&b, "id");
        assert_eq!(join_count_compressed(&sa, &sb).unwrap(), 2 + 2);
    }
}
