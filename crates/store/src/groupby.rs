//! Grouped aggregation over raw segment slices.
//!
//! `SELECT key, SUM(value) GROUP BY key` over a compressed key column:
//! the naive path hashes every row; the compressed path picks a
//! *code-space* tier from the key segment's scheme —
//!
//! * **RLE/RPE**: within a run the key is constant, so the hash table
//!   is probed once per *run*, through the same
//!   [`Segment::run_structure`] kernel the planner's group-by sink
//!   uses;
//! * **DICT**: aggregation runs directly on the dictionary codes into
//!   a dense per-code accumulator (no hash probe, no key decode per
//!   row); each distinct key is decoded exactly once at merge time.
//!
//! These free functions keep the original segment-slice signatures
//! (pairwise-aligned slices, no table needed, nothing cloned) for
//! existing callers and benches; table-level code should use
//! [`crate::QueryBuilder::group_by`], which adds filters, multiple
//! aggregates, and parallel execution on top of the same kernels.

use crate::agg::AggResult;
use crate::segment::Segment;
use crate::{Result, StoreError};
use lcdc_core::schemes::dict;
use std::collections::HashMap;

/// Grouped aggregates keyed by the group value.
pub type Groups = HashMap<i128, AggResult>;

/// Naive grouped sum: decompress both columns, hash per row.
pub fn group_agg_naive(keys: &[Segment], values: &[Segment]) -> Result<Groups> {
    check_alignment(keys, values)?;
    let mut groups = Groups::new();
    for (kseg, vseg) in keys.iter().zip(values) {
        per_row(&kseg.decompress()?, &vseg.decompress()?, &mut groups);
    }
    Ok(groups)
}

/// Compression-aware grouped sum: RLE/RPE key segments probe the hash
/// table once per run and fold the aligned value range in one pass;
/// DICT key segments aggregate on dictionary codes into a dense
/// per-code accumulator, decoding each distinct key exactly once;
/// other key schemes fall back to per-row hashing. The key column is
/// never decompressed on the structural paths.
pub fn group_agg_compressed(keys: &[Segment], values: &[Segment]) -> Result<Groups> {
    check_alignment(keys, values)?;
    let mut groups = Groups::new();
    let mut scratch: Vec<AggResult> = Vec::new();
    for (kseg, vseg) in keys.iter().zip(values) {
        if let Some((run_values, run_ends)) = kseg.run_structure()? {
            let v = vseg.decompress()?;
            let v_numeric = v.to_numeric();
            let mut start = 0usize;
            for (run, &run_end) in run_ends.iter().enumerate().take(run_values.len()) {
                let end = (run_end as usize).min(v_numeric.len());
                let acc = groups
                    .entry(run_values.get_numeric(run).expect("in range"))
                    .or_default();
                for &value in &v_numeric[start..end] {
                    acc.push(value);
                }
                start = end;
            }
            continue;
        }
        if kseg.scheme_base() == "dict" {
            let scheme = kseg.scheme()?;
            let dict_values = scheme.decompress_part(&kseg.compressed, dict::ROLE_DICT)?;
            let codes = scheme.decompress_part(&kseg.compressed, dict::ROLE_CODES)?;
            let codes = codes.to_transport();
            let v = vseg.decompress()?;
            let v_numeric = v.to_numeric();
            scratch.clear();
            scratch.resize(dict_values.len(), AggResult::default());
            for (i, &value) in v_numeric.iter().enumerate() {
                scratch[codes[i] as usize].push(value);
            }
            for (code, acc) in scratch.iter().enumerate() {
                if acc.count == 0 {
                    continue;
                }
                groups
                    .entry(dict_values.get_numeric(code).expect("in range"))
                    .or_default()
                    .merge(acc);
            }
            continue;
        }
        per_row(&kseg.decompress()?, &vseg.decompress()?, &mut groups);
    }
    Ok(groups)
}

fn per_row(k: &lcdc_core::ColumnData, v: &lcdc_core::ColumnData, groups: &mut Groups) {
    for i in 0..k.len() {
        groups
            .entry(k.get_numeric(i).expect("in range"))
            .or_default()
            .push(v.get_numeric(i).expect("in range"));
    }
}

fn check_alignment(keys: &[Segment], values: &[Segment]) -> Result<()> {
    if keys.len() != values.len() {
        return Err(StoreError::Shape(format!(
            "{} key segments vs {} value segments",
            keys.len(),
            values.len()
        )));
    }
    for (i, (k, v)) in keys.iter().zip(values).enumerate() {
        if k.num_rows() != v.num_rows() {
            return Err(StoreError::Shape(format!(
                "segment {i}: {} key rows vs {} value rows",
                k.num_rows(),
                v.num_rows()
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::CompressionPolicy;
    use lcdc_core::ColumnData;

    fn segs(col: &ColumnData, expr: &str, seg_rows: usize) -> Vec<Segment> {
        let t = col.to_transport();
        t.chunks(seg_rows)
            .map(|chunk| {
                Segment::build(
                    &ColumnData::from_transport(col.dtype(), chunk.to_vec()),
                    &CompressionPolicy::Fixed(expr.to_string()),
                )
                .unwrap()
            })
            .collect()
    }

    fn orders() -> (ColumnData, ColumnData) {
        // key = day (runs), value = quantity.
        let keys = ColumnData::U64((0..5000u64).map(|i| 20_180_101 + i / 100).collect());
        let values = ColumnData::U64((0..5000u64).map(|i| 1 + i % 50).collect());
        (keys, values)
    }

    #[test]
    fn run_aware_agrees_with_naive() {
        let (k, v) = orders();
        let keys = segs(&k, "rle[values=delta[deltas=ns_zz],lengths=ns]", 1000);
        let values = segs(&v, "ns", 1000);
        let naive = group_agg_naive(&keys, &values).unwrap();
        let fast = group_agg_compressed(&keys, &values).unwrap();
        assert_eq!(naive, fast);
        assert_eq!(naive.len(), 50, "one group per day");
        let day0 = &naive[&20_180_101];
        assert_eq!(day0.count, 100);
    }

    #[test]
    fn rpe_keys_work_too() {
        let (k, v) = orders();
        let keys = segs(&k, "rpe[values=ns,positions=ns]", 512);
        let values = segs(&v, "varwidth", 512);
        assert_eq!(
            group_agg_naive(&keys, &values).unwrap(),
            group_agg_compressed(&keys, &values).unwrap()
        );
    }

    #[test]
    fn dict_keys_aggregate_in_code_space() {
        let k = ColumnData::U64((0..1000u64).map(|i| (i * 7919) % 8).collect());
        let v = ColumnData::U64((0..1000u64).collect());
        let keys = segs(&k, "dict[codes=ns]", 250);
        let values = segs(&v, "ns", 250);
        let naive = group_agg_naive(&keys, &values).unwrap();
        let fast = group_agg_compressed(&keys, &values).unwrap();
        assert_eq!(naive, fast);
        assert_eq!(naive.len(), 8);
    }

    #[test]
    fn high_cardinality_dict_keys_match_naive() {
        // 509 distinct keys in pseudo-random order: every segment's
        // dictionary is large, codes are unordered, and the dense
        // per-code accumulator must still reproduce the hashed answer.
        let k = ColumnData::U64((0..6000u64).map(|i| (i * 7919) % 509).collect());
        let v = ColumnData::I64((0..6000i64).map(|i| (i * 31) % 1009 - 500).collect());
        let keys = segs(&k, "dict[codes=ns]", 750);
        let values = segs(&v, "ns_zz", 750);
        let naive = group_agg_naive(&keys, &values).unwrap();
        let fast = group_agg_compressed(&keys, &values).unwrap();
        assert_eq!(naive, fast);
        assert_eq!(naive.len(), 509);
    }

    #[test]
    fn non_structural_keys_fall_back() {
        let k = ColumnData::U64((0..1000u64).map(|i| (i * 7919) % 997).collect());
        let v = ColumnData::U64((0..1000u64).collect());
        let keys = segs(&k, "ns", 250);
        let values = segs(&v, "ns", 250);
        assert_eq!(
            group_agg_naive(&keys, &values).unwrap(),
            group_agg_compressed(&keys, &values).unwrap()
        );
    }

    #[test]
    fn signed_keys_and_values() {
        let k = ColumnData::I64(vec![-1, -1, -1, 5, 5, -1]);
        let v = ColumnData::I64(vec![10, -10, 3, 7, 7, 100]);
        let keys = segs(&k, "rle[values=id,lengths=ns]", 6);
        let values = segs(&v, "id", 6);
        let groups = group_agg_compressed(&keys, &values).unwrap();
        assert_eq!(groups[&-1].sum, 103); // 10 - 10 + 3 + 100
        assert_eq!(groups[&5].sum, 14);
        assert_eq!(groups[&-1].min, Some(-10));
        assert_eq!(groups, group_agg_naive(&keys, &values).unwrap());
    }

    #[test]
    fn misaligned_segments_rejected() {
        let (k, v) = orders();
        let keys = segs(&k, "ns", 1000);
        let values = segs(&v, "ns", 512);
        assert!(group_agg_compressed(&keys, &values).is_err());
        assert!(group_agg_naive(&keys[..1], &values[..2]).is_err());
    }

    #[test]
    fn empty_input() {
        assert!(group_agg_compressed(&[], &[]).unwrap().is_empty());
    }

    #[test]
    fn ragged_but_aligned_segments_still_work() {
        // The segment-slice API only requires *pairwise* height
        // equality, not uniform heights — callers may hand over
        // arbitrary aligned chunks.
        let build = |col: &ColumnData, expr: &str| {
            Segment::build(col, &CompressionPolicy::Fixed(expr.to_string())).unwrap()
        };
        let keys = vec![
            build(&ColumnData::U64(vec![1; 100]), "rle[values=ns,lengths=ns]"),
            build(&ColumnData::U64(vec![2; 70]), "rle[values=ns,lengths=ns]"),
            build(&ColumnData::U64(vec![1; 100]), "rle[values=ns,lengths=ns]"),
        ];
        let values = vec![
            build(&ColumnData::U64((0..100).collect()), "ns"),
            build(&ColumnData::U64((0..70).collect()), "ns"),
            build(&ColumnData::U64(vec![5; 100]), "ns"),
        ];
        let naive = group_agg_naive(&keys, &values).unwrap();
        let fast = group_agg_compressed(&keys, &values).unwrap();
        assert_eq!(naive, fast);
        assert_eq!(naive[&1].count, 200);
        assert_eq!(naive[&2].count, 70);
        assert_eq!(naive[&1].sum, (0..100).sum::<i128>() + 500);
    }
}
