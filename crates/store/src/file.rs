//! On-disk persistence: a directory-per-table, file-per-column format.
//!
//! The paper's columnar view is what makes this layer thin: a segment's
//! wire form (`lcdc_core::bytes`) *is* its storage form — parts, params
//! and nesting serialise one-to-one, so the file layer only adds
//! framing, zone-map metadata and corruption detection:
//!
//! ```text
//! <dir>/MANIFEST.lcdc    magic, version, seg_rows, num_rows,
//!                        column count, { name, dtype, segment count,
//!                          { offset, record_len, payload_bytes, rows,
//!                            min, max, expr }* }*
//! <dir>/<name>.col       { frame_len: u64, checksum: u64,
//!                          expr: str, min: i128, max: i128,
//!                          frame: bytes }*        (one per segment)
//! ```
//!
//! Since manifest v2 the per-segment *planner metadata* — zone map,
//! scheme expression, frame location — lives in the manifest, so a
//! lazily-opened table ([`open_table_lazy`]) plans exactly like a
//! resident one and only reads the frames its pushdown tiers touch:
//! the I/O-level analogue of the §II-B pruning claim. Frames are
//! independently addressable through the recorded offsets
//! ([`read_segment`] reads exactly one).
//!
//! Checksums are FNV-1a 64 over the frame bytes — corruption
//! *detection* (bit rot, truncation), not cryptographic integrity.

use crate::schema::{ColumnSchema, TableSchema};
use crate::segment::Segment;
use crate::source::{FileSource, FrameLocation, SegmentMeta, SegmentSource};
use crate::table::Table;
use crate::{Result, StoreError};
use lcdc_core::{bytes, ColumnData, DType};
use std::fs;
use std::path::Path;
use std::sync::Arc;

const MANIFEST: &str = "MANIFEST.lcdc";
const MAGIC: &[u8; 8] = b"LCDCTBL\0";
const VERSION: u16 = 2;

/// Default decoded-segment cache capacity per column for
/// [`open_table_lazy`].
pub const DEFAULT_SEGMENT_CACHE: usize = 16;

/// One column's manifest entry: declaration plus per-segment metadata.
#[derive(Debug, Clone)]
struct ColumnManifest {
    schema: ColumnSchema,
    metas: Vec<SegmentMeta>,
    locations: Vec<FrameLocation>,
}

/// One segment's on-disk record: header (frame length, checksum, expr,
/// zone map) followed by the frame bytes. Shared by the full write and
/// the append paths so the record format has one home.
fn encode_segment_record(seg: &Segment) -> Vec<u8> {
    let frame = bytes::to_bytes(&seg.compressed);
    let mut record = Vec::with_capacity(frame.len() + 64);
    put_u64(&mut record, frame.len() as u64);
    put_u64(&mut record, fnv1a64(&frame));
    put_str(&mut record, &seg.expr);
    put_i128(&mut record, seg.min);
    put_i128(&mut record, seg.max);
    record.extend_from_slice(&frame);
    record
}

/// Serialize and install the manifest. The body is written to a
/// sibling temp file and *renamed* over `MANIFEST.lcdc`, and its
/// trailing FNV-1a checksum is the last bytes serialized — so a torn
/// write leaves either the old manifest (appended frames past its
/// recorded end are invisible) or a checksum-failing file that
/// [`read_manifest`] rejects on open. Never a silently truncated view.
fn write_manifest(
    dir: &Path,
    seg_rows: usize,
    num_rows: usize,
    columns: &[ColumnManifest],
) -> Result<()> {
    let mut manifest = Vec::with_capacity(256);
    manifest.extend_from_slice(MAGIC);
    put_u16(&mut manifest, VERSION);
    put_u64(&mut manifest, seg_rows as u64);
    put_u64(&mut manifest, num_rows as u64);
    put_u16(&mut manifest, columns.len() as u16);
    for col in columns {
        put_str(&mut manifest, &col.schema.name);
        manifest.push(dtype_tag(col.schema.dtype));
        put_u64(&mut manifest, col.metas.len() as u64);
        // Each record: where the frame sits plus everything the
        // planner needs without reading it. Row counts are persisted,
        // not inferred from seg_rows, so non-uniform segmentations
        // (from_sources assemblies, appended tails) survive a reopen.
        for (meta, loc) in col.metas.iter().zip(&col.locations) {
            put_u64(&mut manifest, loc.offset);
            put_u64(&mut manifest, loc.len);
            put_u64(&mut manifest, meta.bytes as u64);
            put_u64(&mut manifest, meta.rows as u64);
            put_i128(&mut manifest, meta.min);
            put_i128(&mut manifest, meta.max);
            put_str(&mut manifest, &meta.expr);
        }
    }
    // Trailing FNV-1a over the manifest body: zone maps steer lazy
    // pruning without ever reading frames, so manifest corruption must
    // be *detected*, not silently turned into wrong answers.
    let checksum = fnv1a64(&manifest);
    put_u64(&mut manifest, checksum);
    let tmp = dir.join(format!("{MANIFEST}.tmp"));
    {
        use std::io::Write;
        let mut file = fs::File::create(&tmp)?;
        file.write_all(&manifest)?;
        file.sync_all()?;
    }
    fs::rename(&tmp, dir.join(MANIFEST))?;
    Ok(())
}

/// Write `table` into `dir` (created if absent; existing table files are
/// overwritten). Loads lazily-backed columns in full.
pub fn save_table(table: &Table, dir: &Path) -> Result<()> {
    fs::create_dir_all(dir)?;
    let mut columns = Vec::with_capacity(table.schema().width());
    for col in &table.schema().columns {
        let segments = table.column_segments(&col.name)?;
        let mut file = Vec::new();
        let mut metas = Vec::with_capacity(segments.len());
        let mut locations = Vec::with_capacity(segments.len());
        for seg in &segments {
            let offset = file.len() as u64;
            let record = encode_segment_record(seg);
            file.extend_from_slice(&record);
            metas.push(SegmentMeta::of(seg));
            locations.push(FrameLocation {
                offset,
                len: record.len() as u64,
            });
        }
        fs::write(dir.join(column_file(&col.name)), file)?;
        columns.push(ColumnManifest {
            schema: col.clone(),
            metas,
            locations,
        });
    }
    write_manifest(dir, table.seg_rows(), table.num_rows(), &columns)
}

/// Append a row batch to a saved table **without rewriting any
/// existing frame**: the batch is chunked by the table's segment
/// height, compressed per column under `policies` (align them with the
/// schema; [`crate::CompressionPolicy::Auto`] re-runs the scheme chooser per
/// segment), the new records are appended to each `<name>.col` file,
/// and the manifest is rewritten last — temp file, rename, checksum
/// trailing — so a write torn *anywhere* leaves a directory that
/// either opens as the pre-append snapshot or is rejected on open,
/// never one that silently serves a truncated table. Trailing bytes a
/// previous torn append left past the manifest's recorded end are
/// truncated away before the new frames land.
///
/// Returns the table's new total row count. The on-disk counterpart of
/// [`Table::append`]; `lcdc ingest` is its CLI face.
pub fn append_table(
    dir: &Path,
    columns: &[ColumnData],
    policies: &[crate::segment::CompressionPolicy],
) -> Result<usize> {
    use std::io::{Seek, SeekFrom, Write};
    let (mut manifest_cols, seg_rows, num_rows) = read_manifest(dir)?;
    if columns.len() != manifest_cols.len() || policies.len() != manifest_cols.len() {
        return Err(StoreError::Shape(format!(
            "append batch has {} columns, {} policies; table has {}",
            columns.len(),
            policies.len(),
            manifest_cols.len()
        )));
    }
    let batch_rows = columns.first().map_or(0, ColumnData::len);
    for (col, m) in columns.iter().zip(&manifest_cols) {
        if col.len() != batch_rows {
            return Err(StoreError::Shape(format!(
                "append column {} has {} rows, expected {batch_rows}",
                m.schema.name,
                col.len()
            )));
        }
        if col.dtype() != m.schema.dtype {
            return Err(StoreError::Shape(format!(
                "append column {} is {:?}, schema says {:?}",
                m.schema.name,
                col.dtype(),
                m.schema.dtype
            )));
        }
    }
    if batch_rows == 0 {
        return Ok(num_rows);
    }
    for (idx, (col, manifest_col)) in columns.iter().zip(manifest_cols.iter_mut()).enumerate() {
        let path = dir.join(column_file(&manifest_col.schema.name));
        let expected: u64 = manifest_col
            .locations
            .iter()
            .map(|loc| loc.offset + loc.len)
            .max()
            .unwrap_or(0);
        let mut file = fs::OpenOptions::new().read(true).write(true).open(&path)?;
        let actual = file.metadata()?.len();
        if actual < expected {
            return Err(StoreError::CorruptFile(format!(
                "{}: file holds {actual} bytes, manifest records {expected}",
                manifest_col.schema.name
            )));
        }
        if actual > expected {
            // A previous append died between frame write and manifest
            // rename: the bytes past `expected` belong to no manifest.
            file.set_len(expected)?;
        }
        file.seek(SeekFrom::Start(expected))?;
        let mut offset = expected;
        for start in (0..batch_rows).step_by(seg_rows) {
            let end = (start + seg_rows).min(batch_rows);
            let chunk = crate::table::slice_column(col, start, end);
            let segment = Segment::build(&chunk, &policies[idx])?;
            let record = encode_segment_record(&segment);
            file.write_all(&record)?;
            manifest_col.metas.push(SegmentMeta::of(&segment));
            manifest_col.locations.push(FrameLocation {
                offset,
                len: record.len() as u64,
            });
            offset += record.len() as u64;
        }
        // Frames durable before the manifest that references them.
        file.sync_all()?;
    }
    let total = num_rows + batch_rows;
    write_manifest(dir, seg_rows, total, &manifest_cols)?;
    Ok(total)
}

/// Load a whole table from `dir` into memory, verifying every frame
/// checksum (the eager path; see [`open_table_lazy`] for the lazy one).
pub fn load_table(dir: &Path) -> Result<Table> {
    let (columns, seg_rows, num_rows) = read_manifest(dir)?;
    let mut sources: Vec<Arc<dyn SegmentSource>> = Vec::with_capacity(columns.len());
    let mut schema_columns = Vec::with_capacity(columns.len());
    for col in columns {
        let data = fs::read(dir.join(column_file(&col.schema.name)))?;
        let mut r = FileReader {
            bytes: &data,
            pos: 0,
            name: &col.schema.name,
        };
        let mut col_segments = Vec::with_capacity(col.metas.len());
        for meta in &col.metas {
            let segment = r.segment()?;
            // Heights come from the manifest, like the lazy path — the
            // eager and lazy opens accept exactly the same directories
            // (including non-uniform segmentations from_sources built).
            segment.check_rows(meta.rows)?;
            if segment.compressed.dtype != col.schema.dtype {
                return Err(StoreError::Shape(format!(
                    "column {} is {:?}, schema says {:?}",
                    col.schema.name, segment.compressed.dtype, col.schema.dtype
                )));
            }
            col_segments.push(segment);
        }
        if r.pos != data.len() {
            return Err(StoreError::CorruptFile(format!(
                "{}: {} trailing bytes",
                col.schema.name,
                data.len() - r.pos
            )));
        }
        sources.push(Arc::new(crate::source::ResidentSource::new(col_segments)));
        schema_columns.push(col.schema);
    }
    Table::from_sources(
        TableSchema {
            columns: schema_columns,
        },
        sources,
        num_rows,
        seg_rows,
    )
}

/// Open a table from `dir` *lazily*: only the manifest is read now;
/// each column becomes a [`FileSource`] that loads frames on demand
/// (checksum-verified per read) behind an LRU cache of
/// `cache_capacity` decoded segments. Planning consults manifest
/// metadata only, so zone-map-pruned segments are never read from disk.
pub fn open_table_lazy(dir: &Path, cache_capacity: usize) -> Result<Table> {
    let (columns, seg_rows, num_rows) = read_manifest(dir)?;
    let mut sources: Vec<Arc<dyn SegmentSource>> = Vec::with_capacity(columns.len());
    let mut schema_columns = Vec::with_capacity(columns.len());
    for col in columns {
        let path = dir.join(column_file(&col.schema.name));
        // FileSource::new bounds-checks every frame location against
        // the file length before any fetch can allocate from it.
        sources.push(Arc::new(FileSource::new(
            path,
            &col.schema.name,
            col.schema.dtype,
            col.metas,
            col.locations,
            cache_capacity,
        )?));
        schema_columns.push(col.schema);
    }
    Table::from_sources(
        TableSchema {
            columns: schema_columns,
        },
        sources,
        num_rows,
        seg_rows,
    )
}

/// Read one segment of one column without touching any other frame:
/// the manifest records each frame's offset, so exactly one record is
/// read, checksum-verified, and cross-checked against its manifest
/// metadata — the same guarded path `FileSource` fetches through.
pub fn read_segment(dir: &Path, column: &str, index: usize) -> Result<Segment> {
    let (columns, _, _) = read_manifest(dir)?;
    let col = columns
        .into_iter()
        .find(|c| c.schema.name == column)
        .ok_or_else(|| StoreError::NoSuchColumn(column.to_string()))?;
    if index >= col.locations.len() {
        return Err(StoreError::Shape(format!(
            "segment {index} requested, column {column} has {}",
            col.locations.len()
        )));
    }
    let source = FileSource::new(
        dir.join(column_file(column)),
        column,
        col.schema.dtype,
        col.metas,
        col.locations,
        1,
    )?;
    let segment = source.segment(index)?;
    // Drop the source (and its cache's Arc) so the unwrap moves the
    // decoded segment out instead of deep-cloning it.
    drop(source);
    Ok(Arc::try_unwrap(segment).unwrap_or_else(|arc| (*arc).clone()))
}

/// Decode one `.col` segment record (header + frame), verifying the
/// frame checksum. Shared with [`FileSource`].
pub(crate) fn decode_segment_record(record: &[u8], name: &str) -> Result<Segment> {
    let mut r = FileReader {
        bytes: record,
        pos: 0,
        name,
    };
    let segment = r.segment()?;
    if r.pos != record.len() {
        return Err(StoreError::CorruptFile(format!(
            "{name}: {} trailing bytes after segment record",
            record.len() - r.pos
        )));
    }
    Ok(segment)
}

fn read_manifest(dir: &Path) -> Result<(Vec<ColumnManifest>, usize, usize)> {
    let raw = fs::read(dir.join(MANIFEST))?;
    // Magic and version first — every manifest version shares that
    // prefix, so an old-format table reports "unsupported version",
    // not a bogus checksum mismatch.
    if raw.len() < 10 {
        return Err(StoreError::CorruptFile("manifest too short".into()));
    }
    if &raw[0..8] != MAGIC {
        return Err(StoreError::CorruptFile("bad manifest magic".into()));
    }
    let version = u16::from_le_bytes(raw[8..10].try_into().expect("2 bytes"));
    if version != VERSION {
        return Err(StoreError::CorruptFile(format!(
            "unsupported table version {version}"
        )));
    }
    // v2 carries a trailing FNV-1a over the body; verify it before
    // believing any other field.
    if raw.len() < 18 {
        return Err(StoreError::CorruptFile("manifest too short".into()));
    }
    let (data, trailer) = raw.split_at(raw.len() - 8);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8 bytes"));
    if fnv1a64(data) != stored {
        return Err(StoreError::CorruptFile("manifest checksum mismatch".into()));
    }
    let mut r = FileReader {
        bytes: data,
        pos: 10, // past magic + version, parsed above
        name: MANIFEST,
    };
    let seg_rows = r.u64()? as usize;
    let num_rows = r.u64()? as usize;
    let width = r.u16()? as usize;
    let mut columns = Vec::with_capacity(width);
    for _ in 0..width {
        let name = r.str()?;
        let dtype = dtype_from_tag(r.u8()?)?;
        let count = r.u64()? as usize;
        // Each segment record is at least 66 bytes (four u64s, two
        // i128s, a u16 string length): a count the remaining manifest
        // cannot possibly hold is corruption, caught *before* any
        // count-sized allocation.
        if count > (data.len() - r.pos) / 66 {
            return Err(StoreError::CorruptFile(format!(
                "{name}: implausible segment count {count}"
            )));
        }
        let mut metas = Vec::with_capacity(count);
        let mut locations = Vec::with_capacity(count);
        let mut total_rows = 0usize;
        for _ in 0..count {
            let offset = r.u64()?;
            let len = r.u64()?;
            let payload_bytes = r.u64()? as usize;
            let rows = r.u64()? as usize;
            let min = r.i128()?;
            let max = r.i128()?;
            let expr = r.str()?;
            total_rows = total_rows.saturating_add(rows);
            metas.push(SegmentMeta {
                rows,
                min,
                max,
                bytes: payload_bytes,
                expr,
            });
            locations.push(FrameLocation { offset, len });
        }
        if total_rows != num_rows {
            return Err(StoreError::CorruptFile(format!(
                "{name}: segments hold {total_rows} rows, manifest says {num_rows}"
            )));
        }
        columns.push(ColumnManifest {
            schema: ColumnSchema::new(&name, dtype),
            metas,
            locations,
        });
    }
    if r.pos != data.len() {
        return Err(StoreError::CorruptFile("trailing manifest bytes".into()));
    }
    Ok((columns, seg_rows, num_rows))
}

fn column_file(name: &str) -> String {
    // Column names are identifiers in practice; escape anything else.
    let safe: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    format!("{safe}.col")
}

use crate::fnv::fnv1a64;

fn dtype_tag(dtype: DType) -> u8 {
    match dtype {
        DType::U32 => 0,
        DType::U64 => 1,
        DType::I32 => 2,
        DType::I64 => 3,
    }
}

fn dtype_from_tag(tag: u8) -> Result<DType> {
    Ok(match tag {
        0 => DType::U32,
        1 => DType::U64,
        2 => DType::I32,
        3 => DType::I64,
        other => {
            return Err(StoreError::CorruptFile(format!(
                "unknown dtype tag {other}"
            )))
        }
    })
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i128(out: &mut Vec<u8>, v: i128) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

struct FileReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    name: &'a str,
}

impl<'a> FileReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        // checked_add: a corrupt length must error, not wrap in release.
        if self
            .pos
            .checked_add(n)
            .is_none_or(|end| end > self.bytes.len())
        {
            return Err(StoreError::CorruptFile(format!(
                "{}: truncated at byte {}",
                self.name, self.pos
            )));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn i128(&mut self) -> Result<i128> {
        Ok(i128::from_le_bytes(
            self.take(16)?.try_into().expect("16 bytes"),
        ))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u16()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| StoreError::CorruptFile(format!("{}: invalid UTF-8", self.name)))
    }

    fn segment(&mut self) -> Result<Segment> {
        let frame_len = self.u64()? as usize;
        let checksum = self.u64()?;
        let expr = self.str()?;
        let min = self.i128()?;
        let max = self.i128()?;
        let frame = self.take(frame_len)?;
        if fnv1a64(frame) != checksum {
            return Err(StoreError::CorruptFile(format!(
                "{}: frame checksum mismatch",
                self.name
            )));
        }
        let compressed = bytes::from_bytes(frame)?;
        Ok(Segment {
            compressed,
            expr,
            min,
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::CompressionPolicy;
    use lcdc_core::ColumnData;

    fn sample_table() -> Table {
        let a = ColumnData::U64((0..5000u64).map(|i| 20_180_101 + i / 40).collect());
        let b = ColumnData::I64((0..5000i64).map(|i| (i * 13) % 997 - 400).collect());
        let schema = TableSchema::new(&[("date", DType::U64), ("delta", DType::I64)]);
        Table::build(
            schema,
            &[a, b],
            &[CompressionPolicy::Auto, CompressionPolicy::Auto],
            700,
        )
        .unwrap()
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("lcdc_file_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trips() {
        let dir = tmpdir("roundtrip");
        let table = sample_table();
        save_table(&table, &dir).unwrap();
        let loaded = load_table(&dir).unwrap();
        assert_eq!(loaded.num_rows(), table.num_rows());
        assert_eq!(loaded.schema(), table.schema());
        for col in ["date", "delta"] {
            assert_eq!(
                loaded.materialize(col).unwrap(),
                table.materialize(col).unwrap(),
                "{col}"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_granular_read() {
        let dir = tmpdir("seg_read");
        let table = sample_table();
        save_table(&table, &dir).unwrap();
        let in_memory = table.column_segments("delta").unwrap();
        for idx in [0usize, 3, in_memory.len() - 1] {
            let seg = read_segment(&dir, "delta", idx).unwrap();
            assert_eq!(seg.expr, in_memory[idx].expr);
            assert_eq!(seg.compressed, in_memory[idx].compressed);
            assert_eq!((seg.min, seg.max), (in_memory[idx].min, in_memory[idx].max));
        }
        assert!(read_segment(&dir, "delta", 999).is_err());
        assert!(read_segment(&dir, "nope", 0).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn queries_agree_after_reload() {
        let dir = tmpdir("queries");
        let table = sample_table();
        save_table(&table, &dir).unwrap();
        let loaded = load_table(&dir).unwrap();
        let q = crate::Query::new(
            "date",
            crate::Predicate::Range {
                lo: 20_180_110,
                hi: 20_180_140,
            },
            "delta",
        );
        assert_eq!(
            q.run_pushdown(&table).unwrap().agg,
            q.run_pushdown(&loaded).unwrap().agg
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_detected() {
        let dir = tmpdir("bitflip");
        save_table(&sample_table(), &dir).unwrap();
        let path = dir.join("delta.col");
        let mut data = fs::read(&path).unwrap();
        // Flip a byte deep in the first frame's payload (past its
        // 16-byte header + expr + 32 bytes of zone map).
        let target = 120.min(data.len() - 1);
        data[target] ^= 0x40;
        fs::write(&path, data).unwrap();
        match load_table(&dir) {
            Err(StoreError::CorruptFile(_)) | Err(StoreError::Core(_)) => {}
            other => panic!("corruption not detected: {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_detected() {
        let dir = tmpdir("trunc");
        save_table(&sample_table(), &dir).unwrap();
        let path = dir.join("date.col");
        let data = fs::read(&path).unwrap();
        fs::write(&path, &data[..data.len() - 7]).unwrap();
        assert!(matches!(load_table(&dir), Err(StoreError::CorruptFile(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_tamper_detected() {
        let dir = tmpdir("manifest");
        save_table(&sample_table(), &dir).unwrap();
        let path = dir.join(MANIFEST);
        let mut data = fs::read(&path).unwrap();
        data[0] = b'X'; // break the magic
        fs::write(&path, data).unwrap();
        assert!(matches!(load_table(&dir), Err(StoreError::CorruptFile(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn non_uniform_segmentation_survives_lazy_reopen() {
        // from_sources permits non-uniform segment heights (aligned
        // across columns); persisted per-segment row counts mean a lazy
        // reopen plans on the true heights, not a seg_rows inference.
        use crate::source::{ResidentSource, SegmentSource};
        use std::sync::Arc;
        let dir = tmpdir("nonuniform");
        let seg = |vals: Vec<u64>| {
            Segment::build(&ColumnData::U64(vals), &CompressionPolicy::None).unwrap()
        };
        let table = Table::from_sources(
            TableSchema::new(&[("a", DType::U64)]),
            vec![Arc::new(ResidentSource::new(vec![
                seg((0..10).collect()),
                seg((10..30).collect()),
            ])) as Arc<dyn SegmentSource>],
            30,
            20,
        )
        .unwrap();
        save_table(&table, &dir).unwrap();
        // Both open paths accept the non-uniform directory.
        let eager = load_table(&dir).unwrap();
        assert_eq!(
            eager.materialize("a").unwrap(),
            table.materialize("a").unwrap()
        );
        let lazy = open_table_lazy(&dir, 4).unwrap();
        assert_eq!(
            lazy.materialize("a").unwrap(),
            table.materialize("a").unwrap()
        );
        // Values 0..=9 live only in the 10-row segment; the zone map
        // decides it fully, so the count comes straight from metadata.
        let result = crate::QueryBuilder::scan(&lazy)
            .filter("a", crate::Predicate::Range { lo: 0, hi: 9 })
            .aggregate(&[crate::Agg::Count])
            .execute()
            .unwrap();
        assert_eq!(result.aggregates().unwrap(), &[Some(10)]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_segment_count_errors_without_allocating() {
        let dir = tmpdir("badcount");
        save_table(&sample_table(), &dir).unwrap();
        let path = dir.join(MANIFEST);
        let mut data = fs::read(&path).unwrap();
        // The first column's segment-count u64 sits right after
        // magic+version+seg_rows+num_rows+width+name("date")+dtype.
        let count_at = 8 + 2 + 8 + 8 + 2 + (2 + 4) + 1;
        data[count_at..count_at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        // Re-stamp the trailing checksum so the *count plausibility*
        // guard is what fires, not the checksum.
        let body_len = data.len() - 8;
        let checksum = fnv1a64(&data[..body_len]);
        data[body_len..].copy_from_slice(&checksum.to_le_bytes());
        fs::write(&path, data).unwrap();
        assert!(matches!(load_table(&dir), Err(StoreError::CorruptFile(_))));
        assert!(matches!(
            open_table_lazy(&dir, 4),
            Err(StoreError::CorruptFile(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_zone_map_tamper_detected() {
        // Zone maps steer lazy pruning without frame reads, so a bit
        // flip anywhere in the manifest must fail the checksum — never
        // silently change which segments a query prunes.
        let dir = tmpdir("zonemap");
        save_table(&sample_table(), &dir).unwrap();
        let path = dir.join(MANIFEST);
        let mut data = fs::read(&path).unwrap();
        let mid = data.len() / 2; // inside the per-segment records
        data[mid] ^= 0x01;
        fs::write(&path, data).unwrap();
        assert!(matches!(
            open_table_lazy(&dir, 4),
            Err(StoreError::CorruptFile(_))
        ));
        assert!(matches!(load_table(&dir), Err(StoreError::CorruptFile(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_table_round_trips_without_rewriting_frames() {
        let dir = tmpdir("append");
        let table = sample_table();
        save_table(&table, &dir).unwrap();
        let date_before = fs::read(dir.join("date.col")).unwrap();

        let extra_date = ColumnData::U64((0..900u64).map(|i| 20_190_101 + i / 40).collect());
        let extra_delta = ColumnData::I64((0..900i64).map(|i| i % 100).collect());
        let policies = [CompressionPolicy::Auto, CompressionPolicy::Auto];
        let total =
            append_table(&dir, &[extra_date.clone(), extra_delta.clone()], &policies).unwrap();
        assert_eq!(total, 5900);

        // Existing frame bytes are untouched — strictly appended after.
        let date_after = fs::read(dir.join("date.col")).unwrap();
        assert!(date_after.len() > date_before.len());
        assert_eq!(&date_after[..date_before.len()], &date_before[..]);

        // Both open paths see the appended rows, and they agree with an
        // in-memory append of the same batch.
        let want = table
            .append(&[extra_date.clone(), extra_delta.clone()])
            .unwrap();
        for reopened in [load_table(&dir).unwrap(), open_table_lazy(&dir, 4).unwrap()] {
            assert_eq!(reopened.num_rows(), 5900);
            for col in ["date", "delta"] {
                assert_eq!(
                    reopened.materialize(col).unwrap(),
                    want.materialize(col).unwrap(),
                    "{col}"
                );
            }
        }

        // A second append stacks (non-uniform tail heights are fine).
        let total = append_table(
            &dir,
            &[ColumnData::U64(vec![20_200_101]), ColumnData::I64(vec![-1])],
            &policies,
        )
        .unwrap();
        assert_eq!(total, 5901);
        assert_eq!(load_table(&dir).unwrap().num_rows(), 5901);

        // Shape errors: wrong width, wrong dtype, short column.
        assert!(append_table(&dir, std::slice::from_ref(&extra_date), &policies[..1]).is_err());
        assert!(
            append_table(&dir, &[extra_delta.clone(), extra_delta.clone()], &policies).is_err()
        );
        // Empty batch: a no-op that reports the current total.
        assert_eq!(
            append_table(
                &dir,
                &[ColumnData::empty(DType::U64), ColumnData::empty(DType::I64)],
                &policies
            )
            .unwrap(),
            5901
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_append_is_rejected_or_recovered_never_truncated_silently() {
        let dir = tmpdir("torn");
        let table = sample_table();
        save_table(&table, &dir).unwrap();

        // Simulate an append that died after writing frames but before
        // the manifest rename: garbage past the manifest's recorded end.
        let path = dir.join("date.col");
        let clean = fs::read(&path).unwrap();
        let mut torn = clean.clone();
        torn.extend_from_slice(&[0xAB; 37]);
        fs::write(&path, &torn).unwrap();

        // The lazy open serves the pre-append snapshot (offsets ignore
        // the trailing garbage); the eager open rejects loudly rather
        // than guessing — and a *recorded* frame going missing is
        // rejected by both.
        let lazy = open_table_lazy(&dir, 4).unwrap();
        assert_eq!(
            lazy.materialize("date").unwrap(),
            table.materialize("date").unwrap()
        );
        assert!(matches!(load_table(&dir), Err(StoreError::CorruptFile(_))));

        // The next append heals the tear: garbage is truncated away
        // before the new frames land, and both opens agree again.
        let policies = [CompressionPolicy::Auto, CompressionPolicy::Auto];
        append_table(
            &dir,
            &[
                ColumnData::U64(vec![20_190_101, 20_190_102]),
                ColumnData::I64(vec![1, 2]),
            ],
            &policies,
        )
        .unwrap();
        let eager = load_table(&dir).unwrap();
        assert_eq!(eager.num_rows(), 5002);
        assert_eq!(
            eager.materialize("date").unwrap(),
            open_table_lazy(&dir, 4)
                .unwrap()
                .materialize("date")
                .unwrap()
        );

        // A file *shorter* than the manifest records is unrecoverable
        // and must refuse the append.
        let data = fs::read(&path).unwrap();
        fs::write(&path, &data[..data.len() - 10]).unwrap();
        assert!(matches!(
            append_table(
                &dir,
                &[ColumnData::U64(vec![1]), ColumnData::I64(vec![1])],
                &policies
            ),
            Err(StoreError::CorruptFile(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_is_io_error() {
        let dir = tmpdir("missing");
        assert!(matches!(load_table(&dir), Err(StoreError::Io(_))));
    }

    #[test]
    fn lazy_open_round_trips_and_counts_io() {
        let dir = tmpdir("lazy");
        let table = sample_table();
        save_table(&table, &dir).unwrap();
        let lazy = open_table_lazy(&dir, 4).unwrap();
        assert_eq!(lazy.num_rows(), table.num_rows());
        assert_eq!(lazy.schema(), table.schema());
        assert_eq!(lazy.io_reads(), 0, "opening reads only the manifest");
        // Metadata matches the resident table's exactly.
        let resident = load_table(&dir).unwrap();
        for col in ["date", "delta"] {
            let a = lazy.source(col).unwrap();
            let b = resident.source(col).unwrap();
            assert_eq!(a.num_segments(), b.num_segments());
            for i in 0..a.num_segments() {
                assert_eq!(a.meta(i), b.meta(i), "{col} segment {i}");
            }
        }
        assert_eq!(lazy.io_reads(), 0, "metadata access is not I/O");
        assert_eq!(
            lazy.materialize("date").unwrap(),
            table.materialize("date").unwrap()
        );
        assert!(lazy.io_reads() > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lazy_segment_cache_hits_avoid_rereads() {
        let dir = tmpdir("lazy_cache");
        save_table(&sample_table(), &dir).unwrap();
        let lazy = open_table_lazy(&dir, 16).unwrap();
        let source = lazy.source("date").unwrap();
        let first = source.segment(0).unwrap();
        let again = source.segment(0).unwrap();
        assert_eq!(first.compressed, again.compressed);
        assert_eq!(source.io_reads(), 1, "second fetch is a cache hit");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lazy_detects_corruption_on_fetch() {
        let dir = tmpdir("lazy_rot");
        save_table(&sample_table(), &dir).unwrap();
        let path = dir.join("delta.col");
        let mut data = fs::read(&path).unwrap();
        let target = 120.min(data.len() - 1);
        data[target] ^= 0x40;
        fs::write(&path, data).unwrap();
        let lazy = open_table_lazy(&dir, 4).unwrap(); // manifest is fine
        assert!(lazy.source("delta").unwrap().segment(0).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_table_round_trips() {
        let dir = tmpdir("empty");
        let schema = TableSchema::new(&[("v", DType::U32)]);
        let table = Table::build(
            schema,
            &[ColumnData::empty(DType::U32)],
            &[CompressionPolicy::None],
            64,
        )
        .unwrap();
        save_table(&table, &dir).unwrap();
        let loaded = load_table(&dir).unwrap();
        assert_eq!(loaded.num_rows(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
