//! On-disk persistence: a directory-per-table, file-per-column format.
//!
//! The paper's columnar view is what makes this layer thin: a segment's
//! wire form (`lcdc_core::bytes`) *is* its storage form — parts, params
//! and nesting serialise one-to-one, so the file layer only adds
//! framing, zone-map metadata and corruption detection:
//!
//! ```text
//! <dir>/MANIFEST.lcdc    magic, version, seg_rows, num_rows,
//!                        column count, { name, dtype, segment count }*
//! <dir>/<name>.col       { frame_len: u64, checksum: u64,
//!                          expr: str, min: i128, max: i128,
//!                          frame: bytes }*        (one per segment)
//! ```
//!
//! Frames are independently addressable: [`read_segment`] seeks through
//! headers without decoding frames, so a scan that zone-map-prunes a
//! segment never reads its payload — the I/O-level analogue of the
//! §II-B pruning claim.
//!
//! Checksums are FNV-1a 64 over the frame bytes — corruption
//! *detection* (bit rot, truncation), not cryptographic integrity.

use crate::schema::{ColumnSchema, TableSchema};
use crate::segment::Segment;
use crate::table::Table;
use crate::{Result, StoreError};
use lcdc_core::{bytes, DType};
use std::fs;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

const MANIFEST: &str = "MANIFEST.lcdc";
const MAGIC: &[u8; 8] = b"LCDCTBL\0";
const VERSION: u16 = 1;

/// Write `table` into `dir` (created if absent; existing table files are
/// overwritten).
pub fn save_table(table: &Table, dir: &Path) -> Result<()> {
    fs::create_dir_all(dir)?;
    let mut manifest = Vec::with_capacity(256);
    manifest.extend_from_slice(MAGIC);
    put_u16(&mut manifest, VERSION);
    put_u64(&mut manifest, table.seg_rows() as u64);
    put_u64(&mut manifest, table.num_rows() as u64);
    put_u16(&mut manifest, table.schema().width() as u16);
    for col in &table.schema().columns {
        put_str(&mut manifest, &col.name);
        manifest.push(dtype_tag(col.dtype));
        let segments = table.column_segments(&col.name)?;
        put_u64(&mut manifest, segments.len() as u64);

        let mut file = Vec::new();
        for seg in segments {
            let frame = bytes::to_bytes(&seg.compressed);
            put_u64(&mut file, frame.len() as u64);
            put_u64(&mut file, fnv1a64(&frame));
            put_str(&mut file, &seg.expr);
            put_i128(&mut file, seg.min);
            put_i128(&mut file, seg.max);
            file.extend_from_slice(&frame);
        }
        fs::write(dir.join(column_file(&col.name)), file)?;
    }
    fs::write(dir.join(MANIFEST), manifest)?;
    Ok(())
}

/// Load a whole table from `dir`, verifying every frame checksum.
pub fn load_table(dir: &Path) -> Result<Table> {
    let (schema, seg_rows, num_rows, seg_counts) = read_manifest(dir)?;
    let mut segments = Vec::with_capacity(schema.width());
    for (col, &count) in schema.columns.iter().zip(&seg_counts) {
        let data = fs::read(dir.join(column_file(&col.name)))?;
        let mut r = FileReader {
            bytes: &data,
            pos: 0,
            name: &col.name,
        };
        let mut col_segments = Vec::with_capacity(count);
        for _ in 0..count {
            col_segments.push(r.segment()?);
        }
        if r.pos != data.len() {
            return Err(StoreError::CorruptFile(format!(
                "{}: {} trailing bytes",
                col.name,
                data.len() - r.pos
            )));
        }
        segments.push(col_segments);
    }
    let table = Table::from_segments(schema, segments, seg_rows)?;
    if table.num_rows() != num_rows {
        return Err(StoreError::CorruptFile(format!(
            "manifest says {num_rows} rows, segments hold {}",
            table.num_rows()
        )));
    }
    Ok(table)
}

/// Read one segment of one column without touching any other frame:
/// headers are skipped over with seeks, and only the requested frame's
/// payload is read and checksum-verified.
pub fn read_segment(dir: &Path, column: &str, index: usize) -> Result<Segment> {
    let (schema, _, _, seg_counts) = read_manifest(dir)?;
    let col_idx = schema
        .index_of(column)
        .ok_or_else(|| StoreError::NoSuchColumn(column.to_string()))?;
    if index >= seg_counts[col_idx] {
        return Err(StoreError::Shape(format!(
            "segment {index} requested, column {column} has {}",
            seg_counts[col_idx]
        )));
    }
    let mut file = fs::File::open(dir.join(column_file(column)))?;
    for _ in 0..index {
        let mut head = [0u8; 16];
        file.read_exact(&mut head)?;
        let frame_len = u64::from_le_bytes(head[0..8].try_into().expect("8 bytes"));
        // Skip checksum (already consumed), expr, min/max, frame.
        let mut len_buf = [0u8; 2];
        file.read_exact(&mut len_buf)?;
        let expr_len = u16::from_le_bytes(len_buf) as i64;
        file.seek(SeekFrom::Current(expr_len + 32 + frame_len as i64))?;
    }
    let mut rest = Vec::new();
    file.read_to_end(&mut rest)?;
    let mut r = FileReader {
        bytes: &rest,
        pos: 0,
        name: column,
    };
    r.segment()
}

fn read_manifest(dir: &Path) -> Result<(TableSchema, usize, usize, Vec<usize>)> {
    let data = fs::read(dir.join(MANIFEST))?;
    let mut r = FileReader {
        bytes: &data,
        pos: 0,
        name: MANIFEST,
    };
    if r.take(8)? != MAGIC {
        return Err(StoreError::CorruptFile("bad manifest magic".into()));
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(StoreError::CorruptFile(format!(
            "unsupported table version {version}"
        )));
    }
    let seg_rows = r.u64()? as usize;
    let num_rows = r.u64()? as usize;
    let width = r.u16()? as usize;
    let mut columns = Vec::with_capacity(width);
    let mut seg_counts = Vec::with_capacity(width);
    for _ in 0..width {
        let name = r.str()?;
        let dtype = dtype_from_tag(r.u8()?)?;
        seg_counts.push(r.u64()? as usize);
        columns.push(ColumnSchema::new(&name, dtype));
    }
    if r.pos != data.len() {
        return Err(StoreError::CorruptFile("trailing manifest bytes".into()));
    }
    Ok((TableSchema { columns }, seg_rows, num_rows, seg_counts))
}

fn column_file(name: &str) -> String {
    // Column names are identifiers in practice; escape anything else.
    let safe: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    format!("{safe}.col")
}

/// FNV-1a 64-bit.
fn fnv1a64(data: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in data {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

fn dtype_tag(dtype: DType) -> u8 {
    match dtype {
        DType::U32 => 0,
        DType::U64 => 1,
        DType::I32 => 2,
        DType::I64 => 3,
    }
}

fn dtype_from_tag(tag: u8) -> Result<DType> {
    Ok(match tag {
        0 => DType::U32,
        1 => DType::U64,
        2 => DType::I32,
        3 => DType::I64,
        other => {
            return Err(StoreError::CorruptFile(format!(
                "unknown dtype tag {other}"
            )))
        }
    })
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i128(out: &mut Vec<u8>, v: i128) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u16(out, s.len() as u16);
    out.extend_from_slice(s.as_bytes());
}

struct FileReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    name: &'a str,
}

impl<'a> FileReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.bytes.len() {
            return Err(StoreError::CorruptFile(format!(
                "{}: truncated at byte {}",
                self.name, self.pos
            )));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn i128(&mut self) -> Result<i128> {
        Ok(i128::from_le_bytes(
            self.take(16)?.try_into().expect("16 bytes"),
        ))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u16()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| StoreError::CorruptFile(format!("{}: invalid UTF-8", self.name)))
    }

    fn segment(&mut self) -> Result<Segment> {
        let frame_len = self.u64()? as usize;
        let checksum = self.u64()?;
        let expr = self.str()?;
        let min = self.i128()?;
        let max = self.i128()?;
        let frame = self.take(frame_len)?;
        if fnv1a64(frame) != checksum {
            return Err(StoreError::CorruptFile(format!(
                "{}: frame checksum mismatch",
                self.name
            )));
        }
        let compressed = bytes::from_bytes(frame)?;
        Ok(Segment {
            compressed,
            expr,
            min,
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::CompressionPolicy;
    use lcdc_core::ColumnData;

    fn sample_table() -> Table {
        let a = ColumnData::U64((0..5000u64).map(|i| 20_180_101 + i / 40).collect());
        let b = ColumnData::I64((0..5000i64).map(|i| (i * 13) % 997 - 400).collect());
        let schema = TableSchema::new(&[("date", DType::U64), ("delta", DType::I64)]);
        Table::build(
            schema,
            &[a, b],
            &[CompressionPolicy::Auto, CompressionPolicy::Auto],
            700,
        )
        .unwrap()
    }

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("lcdc_file_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_round_trips() {
        let dir = tmpdir("roundtrip");
        let table = sample_table();
        save_table(&table, &dir).unwrap();
        let loaded = load_table(&dir).unwrap();
        assert_eq!(loaded.num_rows(), table.num_rows());
        assert_eq!(loaded.schema(), table.schema());
        for col in ["date", "delta"] {
            assert_eq!(
                loaded.materialize(col).unwrap(),
                table.materialize(col).unwrap(),
                "{col}"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segment_granular_read() {
        let dir = tmpdir("seg_read");
        let table = sample_table();
        save_table(&table, &dir).unwrap();
        let in_memory = table.column_segments("delta").unwrap();
        for idx in [0usize, 3, in_memory.len() - 1] {
            let seg = read_segment(&dir, "delta", idx).unwrap();
            assert_eq!(seg.expr, in_memory[idx].expr);
            assert_eq!(seg.compressed, in_memory[idx].compressed);
            assert_eq!((seg.min, seg.max), (in_memory[idx].min, in_memory[idx].max));
        }
        assert!(read_segment(&dir, "delta", 999).is_err());
        assert!(read_segment(&dir, "nope", 0).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn queries_agree_after_reload() {
        let dir = tmpdir("queries");
        let table = sample_table();
        save_table(&table, &dir).unwrap();
        let loaded = load_table(&dir).unwrap();
        let q = crate::Query::new(
            "date",
            crate::Predicate::Range {
                lo: 20_180_110,
                hi: 20_180_140,
            },
            "delta",
        );
        assert_eq!(
            q.run_pushdown(&table).unwrap().agg,
            q.run_pushdown(&loaded).unwrap().agg
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_detected() {
        let dir = tmpdir("bitflip");
        save_table(&sample_table(), &dir).unwrap();
        let path = dir.join("delta.col");
        let mut data = fs::read(&path).unwrap();
        // Flip a byte deep in the first frame's payload (past its
        // 16-byte header + expr + 32 bytes of zone map).
        let target = 120.min(data.len() - 1);
        data[target] ^= 0x40;
        fs::write(&path, data).unwrap();
        match load_table(&dir) {
            Err(StoreError::CorruptFile(_)) | Err(StoreError::Core(_)) => {}
            other => panic!("corruption not detected: {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_detected() {
        let dir = tmpdir("trunc");
        save_table(&sample_table(), &dir).unwrap();
        let path = dir.join("date.col");
        let data = fs::read(&path).unwrap();
        fs::write(&path, &data[..data.len() - 7]).unwrap();
        assert!(matches!(load_table(&dir), Err(StoreError::CorruptFile(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn manifest_tamper_detected() {
        let dir = tmpdir("manifest");
        save_table(&sample_table(), &dir).unwrap();
        let path = dir.join(MANIFEST);
        let mut data = fs::read(&path).unwrap();
        data[0] = b'X'; // break the magic
        fs::write(&path, data).unwrap();
        assert!(matches!(load_table(&dir), Err(StoreError::CorruptFile(_))));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_is_io_error() {
        let dir = tmpdir("missing");
        assert!(matches!(load_table(&dir), Err(StoreError::Io(_))));
    }

    #[test]
    fn empty_table_round_trips() {
        let dir = tmpdir("empty");
        let schema = TableSchema::new(&[("v", DType::U32)]);
        let table = Table::build(
            schema,
            &[ColumnData::empty(DType::U32)],
            &[CompressionPolicy::None],
            64,
        )
        .unwrap();
        save_table(&table, &dir).unwrap();
        let loaded = load_table(&dir).unwrap();
        assert_eq!(loaded.num_rows(), 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
