//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] is a parsed, seeded description of where and how
//! often to inject failures into the store's I/O seams. It exists so
//! the chaos harness (`tests/chaos.rs`, `serve_smoke.sh --chaos`) can
//! *deterministically* reproduce the hostile world: torn response
//! frames, mid-query disk-read errors, and socket stalls. Every
//! injected fault must surface as a typed error on the normal error
//! paths — never a hang, never a poisoned pool — which is exactly what
//! the harness asserts.
//!
//! The plan is **zero-cost when off**: holders keep an
//! `Option<Arc<FaultPlan>>` (or a [`std::sync::OnceLock`]) and skip the
//! seam entirely when no plan is armed; production binaries never pay
//! for a branch they did not opt into with `--faults`.
//!
//! ## Spec strings
//!
//! A plan is configured by a `;`-separated list of rules, each
//! `site:param=value[,param=value]` (see `docs/FAULTS.md`):
//!
//! ```text
//! io_read:every=7            fail every 7th disk read (typed I/O error)
//! io_read:p=0.05             fail each disk read with probability 0.05
//! io_stall:ms=50,every=1     sleep 50ms before every disk read
//! frame_truncate:p=0.05      cut 5% of response frames mid-write
//! stall:ms=200,every=3       sleep 200ms before every 3rd response write
//! ```
//!
//! Probabilistic rules draw from a splitmix64 stream keyed on the
//! plan's seed and a per-rule call counter, so the same seed injects
//! the same fault sequence run after run. Per-site fired counters
//! ([`FaultPlan::injected`]) let tests assert *exact* accounting
//! against the server's `deadline_exceeded`/`cancelled`/`io_faults`
//! metrics.

use crate::{Result, StoreError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Where a fault rule injects. Each site may carry at most one rule per
/// plan, so fired counts are unambiguous.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// `io_read`: a [`crate::FileSource`] disk read fails with an
    /// injected [`StoreError::Io`].
    IoRead,
    /// `io_stall`: a [`crate::FileSource`] disk read sleeps before
    /// reading (slow-disk simulation; `ms=` sets the pause).
    IoStall,
    /// `frame_truncate`: a server response frame is cut mid-write and
    /// the connection dropped (torn-frame simulation).
    FrameTruncate,
    /// `stall`: a server response write sleeps before starting
    /// (slow-socket simulation; `ms=` sets the pause).
    Stall,
}

/// How often a rule fires.
#[derive(Debug, Clone, Copy)]
enum Trigger {
    /// Every `n`th call (1-based: `every=1` fires on all).
    Every(u64),
    /// Each call independently, with probability `ppm / 1_000_000`,
    /// drawn from the plan's seeded stream.
    Prob(u64),
}

#[derive(Debug)]
struct FaultRule {
    site: FaultSite,
    trigger: Trigger,
    /// Pause for stall sites; zero elsewhere.
    pause: Duration,
    calls: AtomicU64,
    fired: AtomicU64,
}

/// A parsed, seeded fault-injection plan. See the module docs for the
/// spec-string grammar; [`FaultPlan::parse`] is the only constructor.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
}

/// The splitmix64 mixing function — the same deterministic generator
/// `lcdc gen` uses, shared here for fault probabilities and client
/// retry jitter.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Parse a spec string (see module docs). Errors are plain strings
    /// aimed at the CLI: they name the offending rule.
    pub fn parse(spec: &str, seed: u64) -> std::result::Result<FaultPlan, String> {
        let mut rules: Vec<FaultRule> = Vec::new();
        for part in spec.split(';').map(str::trim).filter(|p| !p.is_empty()) {
            let (site_name, params) = part
                .split_once(':')
                .ok_or_else(|| format!("fault rule {part:?} wants site:param=value"))?;
            let site = match site_name.trim() {
                "io_read" => FaultSite::IoRead,
                "io_stall" => FaultSite::IoStall,
                "frame_truncate" => FaultSite::FrameTruncate,
                "stall" => FaultSite::Stall,
                other => return Err(format!("unknown fault site {other:?}")),
            };
            if rules.iter().any(|r| r.site == site) {
                return Err(format!("duplicate fault rule for site {site_name:?}"));
            }
            let mut trigger = None;
            let mut pause = None;
            for param in params.split(',').map(str::trim).filter(|p| !p.is_empty()) {
                let (key, value) = param
                    .split_once('=')
                    .ok_or_else(|| format!("fault param {param:?} wants key=value"))?;
                match key.trim() {
                    "every" => {
                        let n: u64 = value
                            .trim()
                            .parse()
                            .ok()
                            .filter(|&n| n >= 1)
                            .ok_or_else(|| format!("{part:?}: every wants an integer >= 1"))?;
                        if trigger.replace(Trigger::Every(n)).is_some() {
                            return Err(format!("{part:?}: pick one of every= / p="));
                        }
                    }
                    "p" => {
                        let p: f64 = value
                            .trim()
                            .parse()
                            .ok()
                            .filter(|p| (0.0..=1.0).contains(p))
                            .ok_or_else(|| format!("{part:?}: p wants a number in [0, 1]"))?;
                        let ppm = (p * 1_000_000.0).round() as u64;
                        if trigger.replace(Trigger::Prob(ppm)).is_some() {
                            return Err(format!("{part:?}: pick one of every= / p="));
                        }
                    }
                    "ms" => {
                        let ms: u64 = value
                            .trim()
                            .parse()
                            .map_err(|_| format!("{part:?}: ms wants an integer"))?;
                        pause = Some(Duration::from_millis(ms));
                    }
                    other => return Err(format!("{part:?}: unknown param {other:?}")),
                }
            }
            let stall_site = matches!(site, FaultSite::IoStall | FaultSite::Stall);
            if stall_site && pause.is_none() {
                return Err(format!("{part:?}: stall sites want ms=N"));
            }
            // A stall with no trigger stalls every call; error sites
            // must say how often explicitly.
            let trigger = match (trigger, stall_site) {
                (Some(t), _) => t,
                (None, true) => Trigger::Every(1),
                (None, false) => return Err(format!("{part:?}: wants every=N or p=F")),
            };
            rules.push(FaultRule {
                site,
                trigger,
                pause: pause.unwrap_or(Duration::ZERO),
                calls: AtomicU64::new(0),
                fired: AtomicU64::new(0),
            });
        }
        if rules.is_empty() {
            return Err("empty fault spec".into());
        }
        Ok(FaultPlan { seed, rules })
    }

    /// Did this site's rule fire for the current call? Counts the call
    /// and, when firing, the injection.
    fn fire(&self, site: FaultSite) -> bool {
        let Some(rule) = self.rules.iter().find(|r| r.site == site) else {
            return false;
        };
        // ordering: the call counter only hands out unique tickets —
        // no other memory is published through it.
        let ticket = rule.calls.fetch_add(1, Ordering::Relaxed) + 1;
        let hit = match rule.trigger {
            Trigger::Every(n) => ticket % n == 0,
            Trigger::Prob(ppm) => splitmix64(self.seed ^ ticket) % 1_000_000 < ppm,
        };
        if hit {
            // ordering: advisory fired tally, read after the fact by
            // accounting assertions.
            rule.fired.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// The disk-read seam: sleeps for an armed `io_stall` rule, then
    /// fails with a typed injected [`StoreError::Io`] when the
    /// `io_read` rule fires. `what` names the read for the error
    /// message (the harness greps for "injected").
    pub fn on_io_read(&self, what: &str) -> Result<()> {
        if self.fire(FaultSite::IoStall) {
            std::thread::sleep(self.pause(FaultSite::IoStall));
        }
        if self.fire(FaultSite::IoRead) {
            return Err(StoreError::Io(std::io::Error::other(format!(
                "injected read fault ({what})"
            ))));
        }
        Ok(())
    }

    /// The response-write seam, stall half: how long to sleep before
    /// writing, when the `stall` rule fires.
    pub fn response_stall(&self) -> Option<Duration> {
        self.fire(FaultSite::Stall)
            .then(|| self.pause(FaultSite::Stall))
    }

    /// The response-write seam, torn-frame half: when the
    /// `frame_truncate` rule fires for a frame of `len` bytes, the
    /// number of bytes to actually write (always a strict prefix, so
    /// the peer sees a checksum/length violation, not silence).
    pub fn truncate_frame(&self, len: usize) -> Option<usize> {
        self.fire(FaultSite::FrameTruncate).then_some(len / 2)
    }

    /// Faults injected at `site` so far — what exact-accounting tests
    /// compare server counters against.
    pub fn injected(&self, site: FaultSite) -> u64 {
        self.rules
            .iter()
            .find(|r| r.site == site)
            // ordering: advisory tally read after the runs under test.
            .map_or(0, |r| r.fired.load(Ordering::Relaxed))
    }

    /// A one-line human rendering of the armed rules, for the serve
    /// banner.
    pub fn describe(&self) -> String {
        let rules: Vec<String> = self
            .rules
            .iter()
            .map(|r| {
                let site = match r.site {
                    FaultSite::IoRead => "io_read",
                    FaultSite::IoStall => "io_stall",
                    FaultSite::FrameTruncate => "frame_truncate",
                    FaultSite::Stall => "stall",
                };
                let trigger = match r.trigger {
                    Trigger::Every(n) => format!("every={n}"),
                    Trigger::Prob(ppm) => format!("p={}", ppm as f64 / 1_000_000.0),
                };
                if r.pause.is_zero() {
                    format!("{site}:{trigger}")
                } else {
                    format!("{site}:{trigger},ms={}", r.pause.as_millis())
                }
            })
            .collect();
        format!("{} (seed {})", rules.join("; "), self.seed)
    }

    fn pause(&self, site: FaultSite) -> Duration {
        self.rules
            .iter()
            .find(|r| r.site == site)
            .map_or(Duration::ZERO, |r| r.pause)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_grammar() {
        let plan = FaultPlan::parse(
            "io_read:every=7; frame_truncate:p=0.05; stall:ms=200,every=3",
            1,
        )
        .unwrap();
        assert_eq!(plan.rules.len(), 3);
        let plan = FaultPlan::parse("io_stall:ms=50", 1).unwrap();
        assert!(matches!(plan.rules[0].trigger, Trigger::Every(1)));

        for bad in [
            "",
            "io_read",
            "io_read:every=0",
            "io_read:p=1.5",
            "nope:every=2",
            "io_read:every=2,p=0.5",
            "stall:every=2",
            "io_read:every=2;io_read:every=3",
        ] {
            assert!(FaultPlan::parse(bad, 1).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn every_n_fires_exactly_every_nth() {
        let plan = FaultPlan::parse("io_read:every=7", 9).unwrap();
        let mut errors = 0;
        for i in 1..=70 {
            let out = plan.on_io_read("col");
            if i % 7 == 0 {
                let e = out.unwrap_err();
                assert!(e.to_string().contains("injected read fault"), "{e}");
                errors += 1;
            } else {
                out.unwrap();
            }
        }
        assert_eq!(errors, 10);
        assert_eq!(plan.injected(FaultSite::IoRead), 10);
        assert_eq!(plan.injected(FaultSite::Stall), 0);
    }

    #[test]
    fn probabilistic_rules_are_seed_deterministic() {
        let fired = |seed| {
            let plan = FaultPlan::parse("frame_truncate:p=0.2", seed).unwrap();
            let hits: Vec<bool> = (0..200)
                .map(|_| plan.truncate_frame(64).is_some())
                .collect();
            hits
        };
        assert_eq!(fired(42), fired(42), "same seed, same sequence");
        assert_ne!(fired(42), fired(43), "different seed, different sequence");
        let n = fired(42).iter().filter(|&&h| h).count();
        assert!((10..=90).contains(&n), "p=0.2 over 200 draws fired {n}x");
    }

    #[test]
    fn stalls_report_their_pause() {
        let plan = FaultPlan::parse("stall:ms=200,every=2", 0).unwrap();
        assert_eq!(plan.response_stall(), None);
        assert_eq!(plan.response_stall(), Some(Duration::from_millis(200)));
        assert_eq!(plan.injected(FaultSite::Stall), 1);
    }

    #[test]
    fn truncation_is_a_strict_prefix() {
        let plan = FaultPlan::parse("frame_truncate:every=1", 0).unwrap();
        let keep = plan.truncate_frame(100).unwrap();
        assert!(keep < 100);
    }
}
