//! Predicates and their compression-aware evaluation.
//!
//! Three evaluation tiers per segment, in decreasing order of savings:
//!
//! 1. **Zone map**: the segment's `[min, max]` proves all-match or
//!    no-match — nothing is decompressed. For FOR/STEP segments this is
//!    precisely the paper's "the rough correspondence of the column data
//!    to a simple model can be used to speed up selections".
//! 2. **Run granularity**: RLE/RPE segments are evaluated per *run*
//!    using partial decompression of the run values; the result bitmap
//!    is painted with `set_range`, touching each run once instead of
//!    each row once.
//! 3. **Code granularity**: DICT segments rewrite range predicates into
//!    code ranges against the order-preserving dictionary and test the
//!    codes directly.
//! 4. **Row granularity**: decompress and test.

use crate::segment::Segment;
use crate::Result;
use lcdc_colops::Bitmap;
use lcdc_core::ColumnData;
use std::sync::Arc;

/// A sorted, deduplicated membership list for [`Predicate::In`]. The
/// inner slice is private: every construction path goes through
/// [`InList::new`], so binary searches, bounds, and zone decisions can
/// rely on the ordering invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InList(Arc<[i128]>);

impl InList {
    /// Build from any value list (sorted and deduplicated here; an
    /// empty list matches nothing).
    pub fn new(values: &[i128]) -> InList {
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        InList(sorted.into())
    }
}

impl std::ops::Deref for InList {
    type Target = [i128];

    fn deref(&self) -> &[i128] {
        &self.0
    }
}

/// A selection predicate over one column's numeric values.
///
/// Cloning is cheap: the `In` membership list is behind an [`Arc`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// Everything matches.
    All,
    /// `lo <= v && v <= hi` (inclusive range).
    Range {
        /// Inclusive lower bound.
        lo: i128,
        /// Inclusive upper bound.
        hi: i128,
    },
    /// `v == value`.
    Eq(i128),
    /// `v ∈ values` — see [`Predicate::in_list`] / [`InList::new`].
    In(InList),
}

impl Predicate {
    /// An `In` predicate over `values`.
    pub fn in_list(values: &[i128]) -> Predicate {
        Predicate::In(InList::new(values))
    }

    /// Inclusive bounds of the predicate, if it has them. `None` for
    /// `All` (unbounded) and for an empty `In` list (matches nothing).
    pub fn bounds(&self) -> Option<(i128, i128)> {
        match self {
            Predicate::All => None,
            Predicate::Range { lo, hi } => Some((*lo, *hi)),
            Predicate::Eq(v) => Some((*v, *v)),
            Predicate::In(values) => match (values.first(), values.last()) {
                (Some(&lo), Some(&hi)) => Some((lo, hi)),
                _ => None,
            },
        }
    }

    /// Test one value.
    pub fn test(&self, v: i128) -> bool {
        match self {
            Predicate::All => true,
            Predicate::Range { lo, hi } => *lo <= v && v <= *hi,
            Predicate::Eq(value) => v == *value,
            Predicate::In(values) => values.binary_search(&v).is_ok(),
        }
    }

    /// What a zone map `[min, max]` (over a non-empty segment) proves
    /// about this predicate: `Some(true)` = every row matches,
    /// `Some(false)` = no row matches, `None` = undecided. Unlike a raw
    /// bounds check this is correct for non-convex predicates: an `In`
    /// segment fully inside the list's bounds is *not* thereby
    /// all-matching.
    pub fn zone_decides(&self, min: i128, max: i128) -> Option<bool> {
        match self {
            Predicate::All => Some(true),
            Predicate::Range { lo, hi } => {
                if max < *lo || *hi < min {
                    Some(false)
                } else if *lo <= min && max <= *hi {
                    Some(true)
                } else {
                    None
                }
            }
            Predicate::Eq(v) => {
                if max < *v || *v < min {
                    Some(false)
                } else if min == *v && max == *v {
                    Some(true)
                } else {
                    None
                }
            }
            Predicate::In(values) => {
                // No list element inside [min, max] -> nothing matches.
                let from = values.partition_point(|&v| v < min);
                if from == values.len() || values[from] > max {
                    return Some(false);
                }
                if min == max {
                    return Some(true); // constant segment, value in list
                }
                None
            }
        }
    }

    /// Evaluate over a plain column (row granularity).
    pub fn eval_plain(&self, col: &ColumnData) -> Bitmap {
        let mut bitmap = Bitmap::new_zeroed(col.len());
        if matches!(self, Predicate::All) {
            return Bitmap::new_ones(col.len());
        }
        for i in 0..col.len() {
            if self.test(col.get_numeric(i).expect("in range")) {
                bitmap.set(i);
            }
        }
        bitmap
    }

    /// Evaluate over a compressed segment with every pushdown tier
    /// available. `stats`, when given, counts which tier fired.
    pub fn eval_segment(
        &self,
        segment: &Segment,
        stats: Option<&mut PushdownStats>,
    ) -> Result<Bitmap> {
        self.eval_segment_caching(segment, stats, &mut None)
    }

    /// Like [`Predicate::eval_segment`], but when the row-granularity
    /// tier has to fully decompress the segment, the plain column is
    /// handed back through `plain_out` so the caller can reuse it
    /// instead of decompressing the same segment a second time.
    pub fn eval_segment_caching(
        &self,
        segment: &Segment,
        stats: Option<&mut PushdownStats>,
        plain_out: &mut Option<ColumnData>,
    ) -> Result<Bitmap> {
        let n = segment.num_rows();
        let mut local_stats = PushdownStats::default();
        let result = self.eval_segment_inner(segment, n, &mut local_stats, plain_out)?;
        if let Some(s) = stats {
            s.absorb(&local_stats);
        }
        Ok(result)
    }

    fn eval_segment_inner(
        &self,
        segment: &Segment,
        n: usize,
        stats: &mut PushdownStats,
        plain_out: &mut Option<ColumnData>,
    ) -> Result<Bitmap> {
        // Tier 1: zone map (`zone_decides` is predicate-shape-aware, so
        // an `In` list is never wrongly proven all-matching).
        if n == 0 {
            stats.zonemap_hits += 1;
            return Ok(Bitmap::new_zeroed(0));
        }
        match self.zone_decides(segment.min, segment.max) {
            Some(true) => {
                stats.zonemap_hits += 1;
                return Ok(Bitmap::new_ones(n));
            }
            Some(false) => {
                stats.zonemap_hits += 1;
                return Ok(Bitmap::new_zeroed(n));
            }
            None => {}
        }
        // Tier 2: run granularity for the RLE family, via the shared
        // [`Segment::run_structure`] kernel.
        if let Some((values, ends)) = segment.run_structure()? {
            stats.run_granularity += 1;
            return Ok(self.paint_runs(&values, &ends, n));
        }
        // Tier 2b: order-preserving dictionaries — rewrite the value
        // range into a *code* range and test codes directly, never
        // materialising the gathered values (the classic dictionary
        // pushdown; another face of "executing on the compressed form").
        if segment.scheme_base() == "dict" && self.bounds().is_some() {
            stats.code_granularity += 1;
            let scheme = segment.scheme()?;
            let dict =
                scheme.decompress_part(&segment.compressed, lcdc_core::schemes::dict::ROLE_DICT)?;
            let dict_numeric = dict.to_numeric();
            // Decide from the dictionary alone first — a predicate no
            // dictionary entry satisfies empties the segment without
            // ever decompressing the per-row codes.
            let mut bitmap = Bitmap::new_zeroed(n);
            if let Predicate::In(_) = self {
                // Membership per *dictionary entry* (tiny vs rows),
                // then test the codes against the marked entries.
                let selected: Vec<bool> = dict_numeric.iter().map(|&v| self.test(v)).collect();
                if !selected.iter().any(|&s| s) {
                    return Ok(bitmap);
                }
                let codes = scheme
                    .decompress_part(&segment.compressed, lcdc_core::schemes::dict::ROLE_CODES)?;
                for (i, &code) in codes.to_transport().iter().enumerate() {
                    if selected.get(code as usize).copied().unwrap_or(false) {
                        bitmap.set(i);
                    }
                }
                return Ok(bitmap);
            }
            // Range/Eq: the dictionary is order-preserving, so the
            // value range rewrites into one contiguous code range.
            let (lo, hi) = self.bounds().expect("checked above");
            let code_lo = dict_numeric.partition_point(|&v| v < lo) as u64;
            let code_hi = dict_numeric.partition_point(|&v| v <= hi) as u64; // exclusive
            if code_lo >= code_hi {
                return Ok(bitmap);
            }
            let codes = scheme
                .decompress_part(&segment.compressed, lcdc_core::schemes::dict::ROLE_CODES)?;
            for (i, &code) in codes.to_transport().iter().enumerate() {
                if (code_lo..code_hi).contains(&code) {
                    bitmap.set(i);
                }
            }
            return Ok(bitmap);
        }
        // Tier 3: decompress and test.
        stats.row_granularity += 1;
        let plain = segment.decompress()?;
        let mask = self.eval_plain(&plain);
        *plain_out = Some(plain);
        Ok(mask)
    }

    fn paint_runs(&self, values: &ColumnData, ends: &[u64], n: usize) -> Bitmap {
        let mut bitmap = Bitmap::new_zeroed(n);
        let mut start = 0usize;
        for run in 0..values.len() {
            let end = ends.get(run).copied().unwrap_or(n as u64) as usize;
            if self.test(values.get_numeric(run).expect("in range")) {
                bitmap.set_range(start, end.min(n));
            }
            start = end.min(n);
        }
        bitmap
    }
}

/// Counters for which pushdown tier handled each segment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PushdownStats {
    /// Segments answered from the zone map alone.
    pub zonemap_hits: usize,
    /// Segments evaluated per run.
    pub run_granularity: usize,
    /// Segments evaluated on dictionary codes.
    pub code_granularity: usize,
    /// Segments that had to be fully decompressed.
    pub row_granularity: usize,
}

impl PushdownStats {
    /// Add another counter set into this one.
    pub fn absorb(&mut self, other: &PushdownStats) {
        self.zonemap_hits += other.zonemap_hits;
        self.run_granularity += other.run_granularity;
        self.code_granularity += other.code_granularity;
        self.row_granularity += other.row_granularity;
    }

    /// Total segments inspected.
    pub fn total(&self) -> usize {
        self.zonemap_hits + self.run_granularity + self.code_granularity + self.row_granularity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::CompressionPolicy;

    fn runs_segment() -> Segment {
        let col = ColumnData::U64(vec![7, 7, 7, 9, 9, 4, 4, 4, 4, 2]);
        Segment::build(
            &col,
            &CompressionPolicy::Fixed("rle[values=ns,lengths=ns]".into()),
        )
        .unwrap()
    }

    #[test]
    fn predicate_bounds_and_test() {
        assert_eq!(Predicate::Eq(5).bounds(), Some((5, 5)));
        assert_eq!(Predicate::All.bounds(), None);
        assert!(Predicate::Range { lo: 2, hi: 4 }.test(3));
        assert!(!Predicate::Range { lo: 2, hi: 4 }.test(5));
    }

    #[test]
    fn plain_eval() {
        let col = ColumnData::I64(vec![-5, 0, 5, 10]);
        let b = Predicate::Range { lo: 0, hi: 5 }.eval_plain(&col);
        assert_eq!(b.to_selection_vector(), vec![1, 2]);
        assert_eq!(Predicate::All.eval_plain(&col).count_ones(), 4);
    }

    #[test]
    fn run_granularity_matches_plain() {
        let segment = runs_segment();
        let plain = segment.decompress().unwrap();
        for pred in [
            Predicate::Eq(4),
            Predicate::Eq(7),
            Predicate::Range { lo: 4, hi: 8 },
            Predicate::Range { lo: 100, hi: 200 },
        ] {
            let mut stats = PushdownStats::default();
            let fast = pred.eval_segment(&segment, Some(&mut stats)).unwrap();
            assert_eq!(fast, pred.eval_plain(&plain), "{pred:?}");
        }
    }

    #[test]
    fn run_granularity_tier_fires() {
        let segment = runs_segment();
        let mut stats = PushdownStats::default();
        let _ = Predicate::Eq(4)
            .eval_segment(&segment, Some(&mut stats))
            .unwrap();
        assert_eq!(stats.run_granularity, 1);
        assert_eq!(stats.row_granularity, 0);
    }

    #[test]
    fn zonemap_tier_fires_on_disjoint_range() {
        let segment = runs_segment();
        let mut stats = PushdownStats::default();
        let b = Predicate::Range { lo: 100, hi: 200 }
            .eval_segment(&segment, Some(&mut stats))
            .unwrap();
        assert_eq!(b.count_ones(), 0);
        assert_eq!(stats.zonemap_hits, 1);
        assert_eq!(stats.run_granularity, 0);
    }

    #[test]
    fn zonemap_tier_fires_on_containing_range() {
        let segment = runs_segment();
        let mut stats = PushdownStats::default();
        let b = Predicate::Range { lo: 0, hi: 100 }
            .eval_segment(&segment, Some(&mut stats))
            .unwrap();
        assert_eq!(b.count_ones(), 10);
        assert_eq!(stats.zonemap_hits, 1);
    }

    #[test]
    fn row_granularity_fallback() {
        let col = ColumnData::U64((0..100).map(|i| i * 7 % 13).collect());
        let segment = Segment::build(&col, &CompressionPolicy::Fixed("ns".into())).unwrap();
        let mut stats = PushdownStats::default();
        let b = Predicate::Eq(0)
            .eval_segment(&segment, Some(&mut stats))
            .unwrap();
        assert_eq!(stats.row_granularity, 1);
        assert_eq!(b, Predicate::Eq(0).eval_plain(&col));
    }

    #[test]
    fn dict_code_granularity_matches_plain() {
        // Values chosen so the zone map cannot decide and the dictionary
        // pushdown must do the work.
        let col = ColumnData::I64(vec![-30, 10, 500, 10, -30, 77, 500, 10]);
        let segment =
            Segment::build(&col, &CompressionPolicy::Fixed("dict[codes=ns]".into())).unwrap();
        for pred in [
            Predicate::Range { lo: -30, hi: 10 },
            Predicate::Range { lo: 11, hi: 499 },
            Predicate::Eq(77),
            Predicate::Eq(78),
        ] {
            let mut stats = PushdownStats::default();
            let fast = pred.eval_segment(&segment, Some(&mut stats)).unwrap();
            assert_eq!(fast, pred.eval_plain(&col), "{pred:?}");
            assert_eq!(stats.code_granularity, 1, "{pred:?}");
            assert_eq!(stats.row_granularity, 0, "{pred:?}");
        }
    }

    #[test]
    fn dict_empty_code_range_short_circuits() {
        let col = ColumnData::U64(vec![10, 20, 30, 20]);
        let segment =
            Segment::build(&col, &CompressionPolicy::Fixed("dict[codes=ns]".into())).unwrap();
        let mut stats = PushdownStats::default();
        // Within the zone range but between dictionary entries.
        let b = Predicate::Range { lo: 21, hi: 29 }
            .eval_segment(&segment, Some(&mut stats))
            .unwrap();
        assert_eq!(b.count_ones(), 0);
        assert_eq!(stats.code_granularity, 1);
    }

    #[test]
    fn in_list_membership_and_zone_decisions() {
        let p = Predicate::in_list(&[30, 10, 10, -5]);
        assert_eq!(p.bounds(), Some((-5, 30)));
        assert!(p.test(10) && p.test(-5) && !p.test(11));
        // Fully inside the list's bounds but not constant: undecided.
        assert_eq!(p.zone_decides(0, 20), None);
        // Disjoint from the list: proven empty — including a gap
        // *between* list elements, which a raw bounds check misses.
        assert_eq!(p.zone_decides(40, 90), Some(false));
        assert_eq!(p.zone_decides(11, 29), Some(false));
        // Constant segment on a list element: proven full.
        assert_eq!(p.zone_decides(10, 10), Some(true));
        // Empty list matches nothing, anywhere.
        let empty = Predicate::in_list(&[]);
        assert_eq!(empty.bounds(), None);
        assert_eq!(empty.zone_decides(0, 100), Some(false));
    }

    #[test]
    fn in_on_runs_and_rows_matches_plain() {
        let segment = runs_segment();
        let plain = segment.decompress().unwrap();
        let p = Predicate::in_list(&[2, 7, 99]);
        let mut stats = PushdownStats::default();
        let fast = p.eval_segment(&segment, Some(&mut stats)).unwrap();
        assert_eq!(fast, p.eval_plain(&plain));
        assert_eq!(stats.run_granularity, 1);
    }

    #[test]
    fn dict_in_pushdown_matches_plain() {
        let col = ColumnData::I64(vec![-30, 10, 500, 10, -30, 77, 500, 10]);
        let segment =
            Segment::build(&col, &CompressionPolicy::Fixed("dict[codes=ns]".into())).unwrap();
        for values in [vec![10i128, 500], vec![-30, 78], vec![0, 1]] {
            let p = Predicate::in_list(&values);
            let mut stats = PushdownStats::default();
            let fast = p.eval_segment(&segment, Some(&mut stats)).unwrap();
            assert_eq!(fast, p.eval_plain(&col), "{values:?}");
            assert_eq!(stats.row_granularity, 0, "{values:?}");
        }
    }

    #[test]
    fn stats_absorb() {
        let mut a = PushdownStats {
            zonemap_hits: 1,
            run_granularity: 2,
            code_granularity: 0,
            row_granularity: 3,
        };
        a.absorb(&PushdownStats {
            zonemap_hits: 10,
            run_granularity: 0,
            code_granularity: 4,
            row_granularity: 1,
        });
        assert_eq!(a.total(), 21);
    }
}
