//! Predicates and their compression-aware evaluation.
//!
//! Three evaluation tiers per segment, in decreasing order of savings:
//!
//! 1. **Zone map**: the segment's `[min, max]` proves all-match or
//!    no-match — nothing is decompressed. For FOR/STEP segments this is
//!    precisely the paper's "the rough correspondence of the column data
//!    to a simple model can be used to speed up selections".
//! 2. **Run granularity**: RLE/RPE segments are evaluated per *run*
//!    using partial decompression of the run values; the result bitmap
//!    is painted with `set_range`, touching each run once instead of
//!    each row once.
//! 3. **Code granularity**: DICT segments rewrite range predicates into
//!    code ranges against the order-preserving dictionary and test the
//!    codes directly.
//! 4. **Row granularity**: decompress and test.

use crate::segment::Segment;
use crate::Result;
use lcdc_colops::Bitmap;
use lcdc_core::ColumnData;

/// A selection predicate over one column's numeric values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Predicate {
    /// Everything matches.
    All,
    /// `lo <= v && v <= hi` (inclusive range).
    Range {
        /// Inclusive lower bound.
        lo: i128,
        /// Inclusive upper bound.
        hi: i128,
    },
    /// `v == value`.
    Eq(i128),
}

impl Predicate {
    /// Inclusive bounds of the predicate, if it has them.
    pub fn bounds(&self) -> Option<(i128, i128)> {
        match *self {
            Predicate::All => None,
            Predicate::Range { lo, hi } => Some((lo, hi)),
            Predicate::Eq(v) => Some((v, v)),
        }
    }

    /// Test one value.
    pub fn test(&self, v: i128) -> bool {
        match *self {
            Predicate::All => true,
            Predicate::Range { lo, hi } => lo <= v && v <= hi,
            Predicate::Eq(value) => v == value,
        }
    }

    /// Evaluate over a plain column (row granularity).
    pub fn eval_plain(&self, col: &ColumnData) -> Bitmap {
        let mut bitmap = Bitmap::new_zeroed(col.len());
        if matches!(self, Predicate::All) {
            return Bitmap::new_ones(col.len());
        }
        for i in 0..col.len() {
            if self.test(col.get_numeric(i).expect("in range")) {
                bitmap.set(i);
            }
        }
        bitmap
    }

    /// Evaluate over a compressed segment with every pushdown tier
    /// available. `stats`, when given, counts which tier fired.
    pub fn eval_segment(
        &self,
        segment: &Segment,
        stats: Option<&mut PushdownStats>,
    ) -> Result<Bitmap> {
        self.eval_segment_caching(segment, stats, &mut None)
    }

    /// Like [`Predicate::eval_segment`], but when the row-granularity
    /// tier has to fully decompress the segment, the plain column is
    /// handed back through `plain_out` so the caller can reuse it
    /// instead of decompressing the same segment a second time.
    pub fn eval_segment_caching(
        &self,
        segment: &Segment,
        stats: Option<&mut PushdownStats>,
        plain_out: &mut Option<ColumnData>,
    ) -> Result<Bitmap> {
        let n = segment.num_rows();
        let mut local_stats = PushdownStats::default();
        let result = self.eval_segment_inner(segment, n, &mut local_stats, plain_out)?;
        if let Some(s) = stats {
            s.absorb(&local_stats);
        }
        Ok(result)
    }

    fn eval_segment_inner(
        &self,
        segment: &Segment,
        n: usize,
        stats: &mut PushdownStats,
        plain_out: &mut Option<ColumnData>,
    ) -> Result<Bitmap> {
        if matches!(self, Predicate::All) {
            stats.zonemap_hits += 1;
            return Ok(Bitmap::new_ones(n));
        }
        // Tier 1: zone map.
        if let Some((lo, hi)) = self.bounds() {
            if segment.prunable(lo, hi) {
                stats.zonemap_hits += 1;
                return Ok(Bitmap::new_zeroed(n));
            }
            if segment.fully_inside(lo, hi) {
                stats.zonemap_hits += 1;
                return Ok(Bitmap::new_ones(n));
            }
        }
        // Tier 2: run granularity for the RLE family, via the shared
        // [`Segment::run_structure`] kernel.
        if let Some((values, ends)) = segment.run_structure()? {
            stats.run_granularity += 1;
            return Ok(self.paint_runs(&values, &ends, n));
        }
        let scheme_id = segment.compressed.scheme_id.as_str();
        // Tier 2b: order-preserving dictionaries — rewrite the value
        // range into a *code* range and test codes directly, never
        // materialising the gathered values (the classic dictionary
        // pushdown; another face of "executing on the compressed form").
        if scheme_id == "dict" || scheme_id.starts_with("dict[") {
            if let Some((lo, hi)) = self.bounds() {
                stats.code_granularity += 1;
                let scheme = segment.scheme()?;
                let dict = scheme
                    .decompress_part(&segment.compressed, lcdc_core::schemes::dict::ROLE_DICT)?;
                let dict_numeric = dict.to_numeric();
                let code_lo = dict_numeric.partition_point(|&v| v < lo) as u64;
                let code_hi = dict_numeric.partition_point(|&v| v <= hi) as u64; // exclusive
                if code_lo >= code_hi {
                    return Ok(Bitmap::new_zeroed(n));
                }
                let codes = scheme
                    .decompress_part(&segment.compressed, lcdc_core::schemes::dict::ROLE_CODES)?;
                let codes = codes.to_transport();
                let mut bitmap = Bitmap::new_zeroed(n);
                for (i, &code) in codes.iter().enumerate() {
                    if (code_lo..code_hi).contains(&code) {
                        bitmap.set(i);
                    }
                }
                return Ok(bitmap);
            }
        }
        // Tier 3: decompress and test.
        stats.row_granularity += 1;
        let plain = segment.decompress()?;
        let mask = self.eval_plain(&plain);
        *plain_out = Some(plain);
        Ok(mask)
    }

    fn paint_runs(&self, values: &ColumnData, ends: &[u64], n: usize) -> Bitmap {
        let mut bitmap = Bitmap::new_zeroed(n);
        let mut start = 0usize;
        for run in 0..values.len() {
            let end = ends.get(run).copied().unwrap_or(n as u64) as usize;
            if self.test(values.get_numeric(run).expect("in range")) {
                bitmap.set_range(start, end.min(n));
            }
            start = end.min(n);
        }
        bitmap
    }
}

/// Counters for which pushdown tier handled each segment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PushdownStats {
    /// Segments answered from the zone map alone.
    pub zonemap_hits: usize,
    /// Segments evaluated per run.
    pub run_granularity: usize,
    /// Segments evaluated on dictionary codes.
    pub code_granularity: usize,
    /// Segments that had to be fully decompressed.
    pub row_granularity: usize,
}

impl PushdownStats {
    /// Add another counter set into this one.
    pub fn absorb(&mut self, other: &PushdownStats) {
        self.zonemap_hits += other.zonemap_hits;
        self.run_granularity += other.run_granularity;
        self.code_granularity += other.code_granularity;
        self.row_granularity += other.row_granularity;
    }

    /// Total segments inspected.
    pub fn total(&self) -> usize {
        self.zonemap_hits + self.run_granularity + self.code_granularity + self.row_granularity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::CompressionPolicy;

    fn runs_segment() -> Segment {
        let col = ColumnData::U64(vec![7, 7, 7, 9, 9, 4, 4, 4, 4, 2]);
        Segment::build(
            &col,
            &CompressionPolicy::Fixed("rle[values=ns,lengths=ns]".into()),
        )
        .unwrap()
    }

    #[test]
    fn predicate_bounds_and_test() {
        assert_eq!(Predicate::Eq(5).bounds(), Some((5, 5)));
        assert_eq!(Predicate::All.bounds(), None);
        assert!(Predicate::Range { lo: 2, hi: 4 }.test(3));
        assert!(!Predicate::Range { lo: 2, hi: 4 }.test(5));
    }

    #[test]
    fn plain_eval() {
        let col = ColumnData::I64(vec![-5, 0, 5, 10]);
        let b = Predicate::Range { lo: 0, hi: 5 }.eval_plain(&col);
        assert_eq!(b.to_selection_vector(), vec![1, 2]);
        assert_eq!(Predicate::All.eval_plain(&col).count_ones(), 4);
    }

    #[test]
    fn run_granularity_matches_plain() {
        let segment = runs_segment();
        let plain = segment.decompress().unwrap();
        for pred in [
            Predicate::Eq(4),
            Predicate::Eq(7),
            Predicate::Range { lo: 4, hi: 8 },
            Predicate::Range { lo: 100, hi: 200 },
        ] {
            let mut stats = PushdownStats::default();
            let fast = pred.eval_segment(&segment, Some(&mut stats)).unwrap();
            assert_eq!(fast, pred.eval_plain(&plain), "{pred:?}");
        }
    }

    #[test]
    fn run_granularity_tier_fires() {
        let segment = runs_segment();
        let mut stats = PushdownStats::default();
        let _ = Predicate::Eq(4)
            .eval_segment(&segment, Some(&mut stats))
            .unwrap();
        assert_eq!(stats.run_granularity, 1);
        assert_eq!(stats.row_granularity, 0);
    }

    #[test]
    fn zonemap_tier_fires_on_disjoint_range() {
        let segment = runs_segment();
        let mut stats = PushdownStats::default();
        let b = Predicate::Range { lo: 100, hi: 200 }
            .eval_segment(&segment, Some(&mut stats))
            .unwrap();
        assert_eq!(b.count_ones(), 0);
        assert_eq!(stats.zonemap_hits, 1);
        assert_eq!(stats.run_granularity, 0);
    }

    #[test]
    fn zonemap_tier_fires_on_containing_range() {
        let segment = runs_segment();
        let mut stats = PushdownStats::default();
        let b = Predicate::Range { lo: 0, hi: 100 }
            .eval_segment(&segment, Some(&mut stats))
            .unwrap();
        assert_eq!(b.count_ones(), 10);
        assert_eq!(stats.zonemap_hits, 1);
    }

    #[test]
    fn row_granularity_fallback() {
        let col = ColumnData::U64((0..100).map(|i| i * 7 % 13).collect());
        let segment = Segment::build(&col, &CompressionPolicy::Fixed("ns".into())).unwrap();
        let mut stats = PushdownStats::default();
        let b = Predicate::Eq(0)
            .eval_segment(&segment, Some(&mut stats))
            .unwrap();
        assert_eq!(stats.row_granularity, 1);
        assert_eq!(b, Predicate::Eq(0).eval_plain(&col));
    }

    #[test]
    fn dict_code_granularity_matches_plain() {
        // Values chosen so the zone map cannot decide and the dictionary
        // pushdown must do the work.
        let col = ColumnData::I64(vec![-30, 10, 500, 10, -30, 77, 500, 10]);
        let segment =
            Segment::build(&col, &CompressionPolicy::Fixed("dict[codes=ns]".into())).unwrap();
        for pred in [
            Predicate::Range { lo: -30, hi: 10 },
            Predicate::Range { lo: 11, hi: 499 },
            Predicate::Eq(77),
            Predicate::Eq(78),
        ] {
            let mut stats = PushdownStats::default();
            let fast = pred.eval_segment(&segment, Some(&mut stats)).unwrap();
            assert_eq!(fast, pred.eval_plain(&col), "{pred:?}");
            assert_eq!(stats.code_granularity, 1, "{pred:?}");
            assert_eq!(stats.row_granularity, 0, "{pred:?}");
        }
    }

    #[test]
    fn dict_empty_code_range_short_circuits() {
        let col = ColumnData::U64(vec![10, 20, 30, 20]);
        let segment =
            Segment::build(&col, &CompressionPolicy::Fixed("dict[codes=ns]".into())).unwrap();
        let mut stats = PushdownStats::default();
        // Within the zone range but between dictionary entries.
        let b = Predicate::Range { lo: 21, hi: 29 }
            .eval_segment(&segment, Some(&mut stats))
            .unwrap();
        assert_eq!(b.count_ones(), 0);
        assert_eq!(stats.code_granularity, 1);
    }

    #[test]
    fn stats_absorb() {
        let mut a = PushdownStats {
            zonemap_hits: 1,
            run_granularity: 2,
            code_granularity: 0,
            row_granularity: 3,
        };
        a.absorb(&PushdownStats {
            zonemap_hits: 10,
            run_granularity: 0,
            code_granularity: 4,
            row_granularity: 1,
        });
        assert_eq!(a.total(), 21);
    }
}
