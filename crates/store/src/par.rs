//! Parallel segment scans.
//!
//! Segments are independent — per-segment scheme choice made them the
//! unit of compression, and the same boundary makes them the unit of
//! parallelism: each worker runs the identical per-segment physical-plan
//! pipeline over a contiguous slice of the plan's segment visit order,
//! and the partial sink states merge associatively. Because the planner
//! executes *every* operator per segment, this parallelises filtered
//! aggregates, group-bys, top-k, and distinct alike — see
//! [`crate::QueryBuilder::execute_parallel`]. Built on
//! `std::thread::scope`; no work stealing (segments are equal-height, so
//! static partitioning balances except at the tail).

use crate::exec::{Query, QueryOutput};
use crate::table::Table;
use crate::{Result, StoreError};
use lcdc_core::ColumnData;

/// Run the pushdown pipeline with `threads` workers. Produces exactly
/// [`Query::run_pushdown`]'s answer and counters.
pub fn run_pushdown_parallel(query: &Query, table: &Table, threads: usize) -> Result<QueryOutput> {
    query.run_parallel(table, threads)
}

/// Decompress a column with `threads` workers, one contiguous segment
/// range each, and concatenate.
pub fn par_materialize(table: &Table, column: &str, threads: usize) -> Result<ColumnData> {
    let segments = table.column_segments(column)?;
    let dtype = table.schema().dtype_of(column)?;
    if segments.is_empty() {
        return Ok(ColumnData::empty(dtype));
    }
    let threads = threads.clamp(1, segments.len());
    let chunk = segments.len().div_ceil(threads);

    let pieces: Vec<Result<Vec<u64>>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for seg_chunk in segments.chunks(chunk) {
            handles.push(scope.spawn(move || {
                let mut out: Vec<u64> = Vec::new();
                for seg in seg_chunk {
                    out.extend(seg.decompress()?.to_transport());
                }
                Ok(out)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("decompress worker panicked"))
            .collect()
    });

    let mut transport = Vec::with_capacity(table.num_rows());
    for piece in pieces {
        transport.extend(piece?);
    }
    if transport.len() != table.num_rows() {
        return Err(StoreError::Shape(format!(
            "parallel materialise produced {} rows, expected {}",
            transport.len(),
            table.num_rows()
        )));
    }
    Ok(ColumnData::from_transport(dtype, transport))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::schema::TableSchema;
    use crate::segment::CompressionPolicy;
    use lcdc_core::DType;

    fn table() -> Table {
        let schema = TableSchema::new(&[("date", DType::U64), ("qty", DType::I64)]);
        let date = ColumnData::U64((0..40_000u64).map(|i| 20_180_101 + i / 200).collect());
        let qty = ColumnData::I64((0..40_000i64).map(|i| (i % 100) - 50).collect());
        Table::build(
            schema,
            &[date, qty],
            &[CompressionPolicy::Auto, CompressionPolicy::Auto],
            1 << 10,
        )
        .unwrap()
    }

    #[test]
    fn parallel_pushdown_matches_sequential() {
        let t = table();
        for (lo, hi) in [
            (20_180_101u64, 20_180_300),
            (20_180_110, 20_180_112),
            (10, 20), // empty
        ] {
            let q = Query::new(
                "date",
                Predicate::Range {
                    lo: lo as i128,
                    hi: hi as i128,
                },
                "qty",
            );
            let sequential = q.run_pushdown(&t).unwrap();
            for threads in [1usize, 2, 4, 13, 1000] {
                let parallel = run_pushdown_parallel(&q, &t, threads).unwrap();
                assert_eq!(parallel.agg, sequential.agg, "{lo}..{hi} x{threads}");
                // Counters are merged associatively: identical totals.
                assert_eq!(parallel.stats, sequential.stats, "{lo}..{hi} x{threads}");
            }
        }
    }

    #[test]
    fn parallel_materialize_matches_sequential() {
        let t = table();
        for threads in [1usize, 3, 8, 64] {
            assert_eq!(
                par_materialize(&t, "qty", threads).unwrap(),
                t.materialize("qty").unwrap(),
                "x{threads}"
            );
        }
    }

    #[test]
    fn empty_table_and_missing_column() {
        let schema = TableSchema::new(&[("v", DType::U32)]);
        let t = Table::build(
            schema,
            &[ColumnData::empty(DType::U32)],
            &[CompressionPolicy::None],
            64,
        )
        .unwrap();
        assert!(par_materialize(&t, "v", 4).unwrap().is_empty());
        assert!(par_materialize(&t, "nope", 4).is_err());
    }
}
