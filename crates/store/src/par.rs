//! Parallel segment scans.
//!
//! Segments are independent — per-segment scheme choice made them the
//! unit of compression, and the same boundary makes them the unit of
//! parallelism: the *morsel* a worker pulls from the shared queue is
//! one segment of the plan's visit order. Because the planner executes
//! *every* operator per segment, this parallelises filtered aggregates,
//! group-bys, top-k, and distinct alike — see
//! [`crate::QueryBuilder::execute_parallel`] and
//! [`crate::query::ExecOptions`] for prefetch-overlapped execution.
//!
//! Workers are *not* statically partitioned anymore: equal-height
//! segments do **not** cost equally — one zone-prunes for free while
//! its neighbour decompresses a cache-cold row tier — so the old
//! contiguous split could leave one worker holding every expensive
//! segment. The shared queue makes work-stealing implicit: whoever
//! finishes early pulls the next morsel, wherever it lives (including
//! other shards of a [`crate::ShardedTable`], which share one pool).
//! The static partitioner survives only as a benchmark baseline
//! ([`crate::QueryBuilder::execute_parallel_static`]).
//!
//! [`par_materialize`] keeps static contiguous ranges deliberately:
//! full decompression touches every row of every segment, so costs
//! *are* uniform — and contiguity lets each worker write into a
//! disjoint slice of the single output allocation, sized up front from
//! resident segment metadata.

use crate::exec::{Query, QueryOutput};
use crate::table::Table;
use crate::{Result, StoreError};
use lcdc_core::ColumnData;

/// Run the pushdown pipeline with `threads` workers. Produces exactly
/// [`Query::run_pushdown`]'s answer and counters.
pub fn run_pushdown_parallel(query: &Query, table: &Table, threads: usize) -> Result<QueryOutput> {
    query.run_parallel(table, threads)
}

/// Decompress a column with `threads` workers into one pre-sized
/// allocation: per-segment row counts come from resident metadata, so
/// each worker writes its contiguous segment range into a disjoint
/// output slice — no per-worker buffers, no final concatenation copy.
pub fn par_materialize(table: &Table, column: &str, threads: usize) -> Result<ColumnData> {
    let source = table.source(column)?;
    let dtype = table.schema().dtype_of(column)?;
    let num_segments = source.num_segments();
    if num_segments == 0 {
        return Ok(ColumnData::empty(dtype));
    }
    // Row offsets per segment, from metadata alone (no payload access).
    let mut offsets = Vec::with_capacity(num_segments + 1);
    offsets.push(0usize);
    for seg_idx in 0..num_segments {
        offsets.push(offsets[seg_idx] + source.meta(seg_idx).rows);
    }
    let total = *offsets.last().expect("non-empty");
    if total != table.num_rows() {
        return Err(StoreError::Shape(format!(
            "column {column} metadata holds {total} rows, table says {}",
            table.num_rows()
        )));
    }

    let threads = threads.clamp(1, num_segments);
    let chunk = num_segments.div_ceil(threads);
    let mut transport: Vec<u64> = vec![0; total];

    let results: Vec<Result<()>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        let mut rest: &mut [u64] = &mut transport;
        let mut start = 0usize;
        while start < num_segments {
            let end = (start + chunk).min(num_segments);
            let (mine, tail) = rest.split_at_mut(offsets[end] - offsets[start]);
            rest = tail;
            let offsets = &offsets;
            handles.push(scope.spawn(move || {
                let mut written = 0usize;
                for seg_idx in start..end {
                    let rows = offsets[seg_idx + 1] - offsets[seg_idx];
                    let plain = source.segment(seg_idx)?.decompress()?.to_transport();
                    if plain.len() != rows {
                        return Err(StoreError::Shape(format!(
                            "column {column} segment {seg_idx} decompressed to {} rows, \
                             metadata says {rows}",
                            plain.len()
                        )));
                    }
                    mine[written..written + rows].copy_from_slice(&plain);
                    written += rows;
                }
                Ok(())
            }));
            start = end;
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("decompress worker panicked"))
            .collect()
    });
    for result in results {
        result?;
    }
    Ok(ColumnData::from_transport(dtype, transport))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::schema::TableSchema;
    use crate::segment::CompressionPolicy;
    use lcdc_core::DType;

    fn table() -> Table {
        let schema = TableSchema::new(&[("date", DType::U64), ("qty", DType::I64)]);
        let date = ColumnData::U64((0..40_000u64).map(|i| 20_180_101 + i / 200).collect());
        let qty = ColumnData::I64((0..40_000i64).map(|i| (i % 100) - 50).collect());
        Table::build(
            schema,
            &[date, qty],
            &[CompressionPolicy::Auto, CompressionPolicy::Auto],
            1 << 10,
        )
        .unwrap()
    }

    #[test]
    fn parallel_pushdown_matches_sequential() {
        let t = table();
        for (lo, hi) in [
            (20_180_101u64, 20_180_300),
            (20_180_110, 20_180_112),
            (10, 20), // empty
        ] {
            let q = Query::new(
                "date",
                Predicate::Range {
                    lo: lo as i128,
                    hi: hi as i128,
                },
                "qty",
            );
            let sequential = q.run_pushdown(&t).unwrap();
            for threads in [1usize, 2, 4, 13, 1000] {
                let parallel = run_pushdown_parallel(&q, &t, threads).unwrap();
                assert_eq!(parallel.agg, sequential.agg, "{lo}..{hi} x{threads}");
                // Counters are merged associatively: identical totals.
                assert_eq!(parallel.stats, sequential.stats, "{lo}..{hi} x{threads}");
            }
        }
    }

    #[test]
    fn parallel_materialize_matches_sequential() {
        let t = table();
        for threads in [1usize, 3, 8, 64] {
            assert_eq!(
                par_materialize(&t, "qty", threads).unwrap(),
                t.materialize("qty").unwrap(),
                "x{threads}"
            );
        }
    }

    #[test]
    fn empty_table_and_missing_column() {
        let schema = TableSchema::new(&[("v", DType::U32)]);
        let t = Table::build(
            schema,
            &[ColumnData::empty(DType::U32)],
            &[CompressionPolicy::None],
            64,
        )
        .unwrap();
        assert!(par_materialize(&t, "v", 4).unwrap().is_empty());
        assert!(par_materialize(&t, "nope", 4).is_err());
    }
}
