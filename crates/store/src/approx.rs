//! Approximate and gradual-refinement aggregation.
//!
//! The paper (§II-B): the "rough correspondence of the column data to a
//! simple model can be used [...] in the context of approximate or
//! gradual-refinement query processing." Concretely:
//!
//! * An **approximate aggregate** is answered from the segments' zone
//!   maps alone — a certified `[lo, hi]` interval per aggregate, with
//!   *zero* payload bytes touched.
//! * **Gradual refinement** then decompresses segments one at a time
//!   (widest-interval first), shrinking the interval monotonically until
//!   it is tight enough or the budget runs out; the exact answer is the
//!   fixpoint.

use crate::agg::aggregate_segment;
use crate::table::Table;
use crate::Result;

/// A certified interval around an aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggInterval {
    /// Certified lower bound of the SUM.
    pub sum_lo: i128,
    /// Certified upper bound of the SUM.
    pub sum_hi: i128,
    /// Certified lower bound of the MIN.
    pub min_lo: Option<i128>,
    /// Certified upper bound of the MAX.
    pub max_hi: Option<i128>,
    /// Exact row count (always known from segment metadata).
    pub count: usize,
}

impl AggInterval {
    /// Width of the SUM interval (0 = exact).
    pub fn sum_width(&self) -> i128 {
        self.sum_hi - self.sum_lo
    }

    /// Whether the interval certifies the exact SUM.
    pub fn is_exact(&self) -> bool {
        self.sum_width() == 0
    }

    /// Whether `exact` lies inside the certified bounds.
    pub fn contains_sum(&self, exact: i128) -> bool {
        self.sum_lo <= exact && exact <= self.sum_hi
    }
}

/// The state of a gradually-refined aggregate over one column.
#[derive(Debug)]
pub struct GradualAggregate<'a> {
    table: &'a Table,
    column: String,
    /// Per still-unrefined segment: (segment index, row count, lo, hi).
    pending: Vec<(usize, usize, i128, i128)>,
    /// Exact partial sums from refined segments.
    refined_sum: i128,
    refined_min: Option<i128>,
    refined_max: Option<i128>,
    count: usize,
}

impl<'a> GradualAggregate<'a> {
    /// Start a gradual aggregate over `column`. The initial interval
    /// (available immediately via [`GradualAggregate::interval`]) comes
    /// from zone maps only.
    pub fn new(table: &'a Table, column: &str) -> Result<Self> {
        // Zone maps come from segment *metadata* — on a lazily-backed
        // table the initial interval costs zero payload reads.
        let source = table.source(column)?;
        let mut pending = Vec::with_capacity(source.num_segments());
        let mut count = 0usize;
        for idx in 0..source.num_segments() {
            let meta = source.meta(idx);
            count += meta.rows;
            if meta.rows > 0 {
                pending.push((idx, meta.rows, meta.min, meta.max));
            }
        }
        Ok(GradualAggregate {
            table,
            column: column.to_string(),
            pending,
            refined_sum: 0,
            refined_min: None,
            refined_max: None,
            count,
        })
    }

    /// The current certified interval.
    pub fn interval(&self) -> AggInterval {
        let mut sum_lo = self.refined_sum;
        let mut sum_hi = self.refined_sum;
        let mut min_lo = self.refined_min;
        let mut max_hi = self.refined_max;
        for &(_, rows, lo, hi) in &self.pending {
            sum_lo += lo * rows as i128;
            sum_hi += hi * rows as i128;
            min_lo = Some(min_lo.map_or(lo, |m| m.min(lo)));
            max_hi = Some(max_hi.map_or(hi, |m| m.max(hi)));
        }
        AggInterval {
            sum_lo,
            sum_hi,
            min_lo,
            max_hi,
            count: self.count,
        }
    }

    /// Segments not yet refined.
    pub fn pending_segments(&self) -> usize {
        self.pending.len()
    }

    /// Refine the segment contributing the widest slice of the SUM
    /// interval. Returns `false` when everything is already exact.
    pub fn refine_one(&mut self) -> Result<bool> {
        let Some(widest) = self
            .pending
            .iter()
            .enumerate()
            .max_by_key(|(_, &(_, rows, lo, hi))| (hi - lo) * rows as i128)
            .map(|(slot, _)| slot)
        else {
            return Ok(false);
        };
        let (seg_idx, _, _, _) = self.pending.swap_remove(widest);
        let segment = self.table.source(&self.column)?.segment(seg_idx)?;
        let exact = aggregate_segment(&segment, None)?;
        self.refined_sum += exact.sum;
        self.refined_min = match (self.refined_min, exact.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.refined_max = match (self.refined_max, exact.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        Ok(true)
    }

    /// Refine until the SUM interval's *relative* width drops below
    /// `rel_width` (e.g. 0.01 = ±0.5 %), or everything is exact. Returns
    /// the number of segments refined.
    pub fn refine_to(&mut self, rel_width: f64) -> Result<usize> {
        let mut refined = 0usize;
        loop {
            let interval = self.interval();
            let mid = (interval.sum_lo + interval.sum_hi) / 2;
            let rel = if mid == 0 {
                if interval.is_exact() {
                    0.0
                } else {
                    f64::INFINITY
                }
            } else {
                interval.sum_width() as f64 / (mid.abs() as f64)
            };
            if rel <= rel_width || !self.refine_one()? {
                return Ok(refined);
            }
            refined += 1;
        }
    }
}

/// One-shot zone-map-only approximation of a column's aggregates.
pub fn approximate_aggregate(table: &Table, column: &str) -> Result<AggInterval> {
    Ok(GradualAggregate::new(table, column)?.interval())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::aggregate_plain;
    use crate::schema::TableSchema;
    use crate::segment::CompressionPolicy;
    use crate::table::Table;
    use lcdc_core::{ColumnData, DType};

    fn table() -> (Table, ColumnData) {
        let col = ColumnData::U64((0..20_000u64).map(|i| (i / 1000) * 100 + i % 17).collect());
        let schema = TableSchema::new(&[("v", DType::U64)]);
        let t = Table::build(
            schema,
            std::slice::from_ref(&col),
            &[CompressionPolicy::Auto],
            1000,
        )
        .unwrap();
        (t, col)
    }

    #[test]
    fn zone_map_interval_contains_exact_sum() {
        let (t, col) = table();
        let exact = aggregate_plain(&col, None);
        let approx = approximate_aggregate(&t, "v").unwrap();
        assert!(
            approx.contains_sum(exact.sum),
            "{approx:?} vs {}",
            exact.sum
        );
        assert!(approx.min_lo.unwrap() <= exact.min.unwrap());
        assert!(approx.max_hi.unwrap() >= exact.max.unwrap());
        assert_eq!(approx.count, exact.count);
        // Locally tight data: zone maps alone are already quite narrow.
        assert!(approx.sum_width() < exact.sum / 10, "{approx:?}");
    }

    #[test]
    fn refinement_shrinks_monotonically_to_exact() {
        let (t, col) = table();
        let exact = aggregate_plain(&col, None).sum;
        let mut g = GradualAggregate::new(&t, "v").unwrap();
        let mut prev_width = g.interval().sum_width();
        let mut steps = 0;
        while g.refine_one().unwrap() {
            let interval = g.interval();
            assert!(interval.contains_sum(exact), "step {steps}");
            assert!(interval.sum_width() <= prev_width, "step {steps}");
            prev_width = interval.sum_width();
            steps += 1;
        }
        assert_eq!(steps, 20, "one refinement per segment");
        let final_interval = g.interval();
        assert!(final_interval.is_exact());
        assert_eq!(final_interval.sum_lo, exact);
    }

    #[test]
    fn refine_to_tolerance_stops_early() {
        let (t, col) = table();
        let exact = aggregate_plain(&col, None).sum;
        let mut g = GradualAggregate::new(&t, "v").unwrap();
        let refined = g.refine_to(0.05).unwrap();
        assert!(
            refined < 20,
            "should not need every segment, used {refined}"
        );
        let interval = g.interval();
        assert!(interval.contains_sum(exact));
        assert!(interval.sum_width() as f64 <= 0.05 * exact as f64 + 1.0);
    }

    #[test]
    fn refine_to_zero_reaches_exact() {
        let (t, col) = table();
        let exact = aggregate_plain(&col, None).sum;
        let mut g = GradualAggregate::new(&t, "v").unwrap();
        g.refine_to(0.0).unwrap();
        assert_eq!(g.interval().sum_lo, exact);
        assert_eq!(g.pending_segments(), 0);
    }

    #[test]
    fn empty_table_interval() {
        let schema = TableSchema::new(&[("v", DType::U64)]);
        let t = Table::build(
            schema,
            &[ColumnData::U64(vec![])],
            &[CompressionPolicy::None],
            100,
        )
        .unwrap();
        let approx = approximate_aggregate(&t, "v").unwrap();
        assert_eq!(approx.count, 0);
        assert!(approx.is_exact());
        assert_eq!(approx.min_lo, None);
    }

    #[test]
    fn unknown_column_errors() {
        let (t, _) = table();
        assert!(approximate_aggregate(&t, "nope").is_err());
    }

    #[test]
    fn signed_data_bounds() {
        let col = ColumnData::I64((0..5000).map(|i| -2500 + i).collect());
        let schema = TableSchema::new(&[("v", DType::I64)]);
        let t = Table::build(
            schema,
            std::slice::from_ref(&col),
            &[CompressionPolicy::Auto],
            500,
        )
        .unwrap();
        let exact = aggregate_plain(&col, None);
        let approx = approximate_aggregate(&t, "v").unwrap();
        assert!(approx.contains_sum(exact.sum));
    }
}
