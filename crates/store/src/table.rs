//! Tables: a schema plus, per column, a [`SegmentSource`] handle.
//!
//! Since the storage redesign a `Table` does not own its data — it owns
//! *handles*. A column's segments may be fully resident
//! ([`ResidentSource`], what [`Table::build`] produces) or lazily
//! loaded from disk ([`crate::source::FileSource`], what
//! [`crate::file::open_table_lazy`] produces); the planner sees the
//! same surface either way and only pays I/O for segments its pushdown
//! tiers actually touch.

use crate::schema::TableSchema;
use crate::segment::{CompressionPolicy, Segment};
use crate::source::{ChainedSource, ResidentSource, SegmentMeta, SegmentSource};
use crate::{Result, StoreError};
use lcdc_core::ColumnData;
use std::sync::Arc;

/// Default rows per segment (matches common vector/block sizes).
pub const DEFAULT_SEG_ROWS: usize = 16_384;

/// A columnar table: a schema plus, per column, a segment source of
/// equal-height compressed segments.
#[derive(Debug, Clone)]
pub struct Table {
    schema: TableSchema,
    /// `sources[col]`, aligned with `schema.columns`.
    sources: Vec<Arc<dyn SegmentSource>>,
    num_rows: usize,
    seg_rows: usize,
}

impl Table {
    /// Build a table from whole columns, compressing each column's
    /// segments under its own policy. All columns must have equal length;
    /// `policies` must align with `schema.columns`.
    pub fn build(
        schema: TableSchema,
        columns: &[ColumnData],
        policies: &[CompressionPolicy],
        seg_rows: usize,
    ) -> Result<Table> {
        if columns.len() != schema.width() || policies.len() != schema.width() {
            return Err(StoreError::Shape(format!(
                "{} columns, {} schemas, {} policies",
                columns.len(),
                schema.width(),
                policies.len()
            )));
        }
        let seg_rows = seg_rows.max(1);
        let num_rows = columns.first().map_or(0, ColumnData::len);
        for (i, col) in columns.iter().enumerate() {
            if col.len() != num_rows {
                return Err(StoreError::Shape(format!(
                    "column {} has {} rows, expected {num_rows}",
                    schema.columns[i].name,
                    col.len()
                )));
            }
            if col.dtype() != schema.columns[i].dtype {
                return Err(StoreError::Shape(format!(
                    "column {} is {:?}, schema says {:?}",
                    schema.columns[i].name,
                    col.dtype(),
                    schema.columns[i].dtype
                )));
            }
        }
        let mut sources: Vec<Arc<dyn SegmentSource>> = Vec::with_capacity(columns.len());
        for (col, policy) in columns.iter().zip(policies) {
            let mut col_segments = Vec::with_capacity(num_rows.div_ceil(seg_rows));
            for start in (0..num_rows).step_by(seg_rows) {
                let end = (start + seg_rows).min(num_rows);
                let chunk = slice_column(col, start, end);
                let segment = Segment::build(&chunk, policy)?;
                segment.check_rows(end - start)?;
                col_segments.push(segment);
            }
            sources.push(Arc::new(ResidentSource::new(col_segments)));
        }
        Ok(Table {
            schema,
            sources,
            num_rows,
            seg_rows,
        })
    }

    /// Assemble a table from already-compressed segments (the
    /// persistence layer's eager load path). Validates that every column
    /// has the same total row count and that non-final segments are
    /// exactly `seg_rows` tall.
    pub fn from_segments(
        schema: TableSchema,
        segments: Vec<Vec<Segment>>,
        seg_rows: usize,
    ) -> Result<Table> {
        if segments.len() != schema.width() {
            return Err(StoreError::Shape(format!(
                "{} segment columns, {} schema columns",
                segments.len(),
                schema.width()
            )));
        }
        let seg_rows = seg_rows.max(1);
        let num_rows = segments
            .first()
            .map_or(0, |col| col.iter().map(Segment::num_rows).sum());
        for (i, col) in segments.iter().enumerate() {
            let total: usize = col.iter().map(Segment::num_rows).sum();
            if total != num_rows {
                return Err(StoreError::Shape(format!(
                    "column {} holds {total} rows, expected {num_rows}",
                    schema.columns[i].name
                )));
            }
            for (j, seg) in col.iter().enumerate() {
                let expected = if j + 1 < col.len() {
                    seg_rows
                } else {
                    num_rows - seg_rows * (col.len() - 1)
                };
                seg.check_rows(expected)?;
                if seg.compressed.dtype != schema.columns[i].dtype {
                    return Err(StoreError::Shape(format!(
                        "column {} segment {j} is {:?}, schema says {:?}",
                        schema.columns[i].name, seg.compressed.dtype, schema.columns[i].dtype
                    )));
                }
            }
        }
        let sources = segments
            .into_iter()
            .map(|col| Arc::new(ResidentSource::new(col)) as Arc<dyn SegmentSource>)
            .collect();
        Ok(Table {
            schema,
            sources,
            num_rows,
            seg_rows,
        })
    }

    /// Assemble a table directly from per-column sources (the lazy load
    /// path and custom backends). Sources must agree on segment count
    /// and per-segment row counts; `num_rows`/`seg_rows` describe the
    /// shared segmentation.
    pub fn from_sources(
        schema: TableSchema,
        sources: Vec<Arc<dyn SegmentSource>>,
        num_rows: usize,
        seg_rows: usize,
    ) -> Result<Table> {
        if sources.len() != schema.width() {
            return Err(StoreError::Shape(format!(
                "{} sources, {} schema columns",
                sources.len(),
                schema.width()
            )));
        }
        let seg_rows = seg_rows.max(1);
        let num_segments = sources.first().map_or(0, |s| s.num_segments());
        for (i, source) in sources.iter().enumerate() {
            if source.num_segments() != num_segments {
                return Err(StoreError::Shape(format!(
                    "column {} has {} segments, expected {num_segments}",
                    schema.columns[i].name,
                    source.num_segments()
                )));
            }
            let mut total = 0usize;
            for j in 0..num_segments {
                let rows = source.meta(j).rows;
                // The planner reads per-segment row counts off column 0
                // and applies one selection bitmap across columns, so
                // segmentation must align exactly, not just in total.
                let expected = sources[0].meta(j).rows;
                if rows != expected {
                    return Err(StoreError::Shape(format!(
                        "column {} segment {j} holds {rows} rows, column {} holds {expected}",
                        schema.columns[i].name, schema.columns[0].name
                    )));
                }
                total += rows;
            }
            if total != num_rows {
                return Err(StoreError::Shape(format!(
                    "column {} holds {total} rows, expected {num_rows}",
                    schema.columns[i].name
                )));
            }
        }
        Ok(Table {
            schema,
            sources,
            num_rows,
            seg_rows,
        })
    }

    /// Append a batch of rows, returning a new table that shares every
    /// existing segment handle and adds freshly compressed segments at
    /// the end — the write path's encode step. Columns must align with
    /// the schema exactly as in [`Table::build`]. The batch is chunked
    /// by this table's segment height and each chunk goes through the
    /// per-column scheme chooser ([`CompressionPolicy::Auto`]), so
    /// appended segments carry zone maps and scheme tags exactly like
    /// built ones; use [`Table::append_with`] to pin policies.
    ///
    /// Tables are immutable values: the append is visible only through
    /// the returned table, which is what lets [`crate::Catalog::ingest`]
    /// publish it atomically under a version bump while in-flight
    /// queries keep reading the old snapshot. A lazily-backed table
    /// stays lazy — only the appended tail is resident
    /// ([`ChainedSource`]).
    ///
    /// ```
    /// use lcdc_core::{ColumnData, DType};
    /// use lcdc_store::{CompressionPolicy, Table, TableSchema};
    ///
    /// let schema = TableSchema::new(&[("day", DType::U64)]);
    /// let table = Table::build(
    ///     schema,
    ///     &[ColumnData::U64((0..100).collect())],
    ///     &[CompressionPolicy::Auto],
    ///     64,
    /// )
    /// .unwrap();
    /// let grown = table.append(&[ColumnData::U64((100..150).collect())]).unwrap();
    /// assert_eq!(grown.num_rows(), 150);
    /// assert_eq!(table.num_rows(), 100, "the original is untouched");
    /// ```
    pub fn append(&self, columns: &[ColumnData]) -> Result<Table> {
        let policies = vec![CompressionPolicy::Auto; self.schema.width()];
        self.append_with(columns, &policies)
    }

    /// [`Table::append`] with explicit per-column compression policies.
    pub fn append_with(
        &self,
        columns: &[ColumnData],
        policies: &[CompressionPolicy],
    ) -> Result<Table> {
        if columns.len() != self.schema.width() || policies.len() != self.schema.width() {
            return Err(StoreError::Shape(format!(
                "append batch has {} columns, {} policies; schema has {}",
                columns.len(),
                policies.len(),
                self.schema.width()
            )));
        }
        let batch_rows = columns.first().map_or(0, ColumnData::len);
        for (i, col) in columns.iter().enumerate() {
            if col.len() != batch_rows {
                return Err(StoreError::Shape(format!(
                    "append column {} has {} rows, expected {batch_rows}",
                    self.schema.columns[i].name,
                    col.len()
                )));
            }
            if col.dtype() != self.schema.columns[i].dtype {
                return Err(StoreError::Shape(format!(
                    "append column {} is {:?}, schema says {:?}",
                    self.schema.columns[i].name,
                    col.dtype(),
                    self.schema.columns[i].dtype
                )));
            }
        }
        if batch_rows == 0 {
            return Ok(self.clone());
        }
        let mut sources: Vec<Arc<dyn SegmentSource>> = Vec::with_capacity(columns.len());
        for (idx, (col, policy)) in columns.iter().zip(policies).enumerate() {
            let mut tail = Vec::with_capacity(batch_rows.div_ceil(self.seg_rows));
            for start in (0..batch_rows).step_by(self.seg_rows) {
                let end = (start + self.seg_rows).min(batch_rows);
                let chunk = slice_column(col, start, end);
                let segment = Segment::build(&chunk, policy)?;
                segment.check_rows(end - start)?;
                tail.push(segment);
            }
            sources.push(Arc::new(ChainedSource::new(
                Arc::clone(&self.sources[idx]),
                tail,
            )));
        }
        Ok(Table {
            schema: self.schema.clone(),
            sources,
            num_rows: self.num_rows + batch_rows,
            seg_rows: self.seg_rows,
        })
    }

    /// Convenience: build with one shared policy and default segment
    /// height.
    pub fn build_uniform(
        schema: TableSchema,
        columns: &[ColumnData],
        policy: CompressionPolicy,
    ) -> Result<Table> {
        let policies = vec![policy; schema.width()];
        Table::build(schema, columns, &policies, DEFAULT_SEG_ROWS)
    }

    /// The schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Total rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Rows per segment (last segment may be shorter).
    pub fn seg_rows(&self) -> usize {
        self.seg_rows
    }

    /// Number of segments per column.
    pub fn num_segments(&self) -> usize {
        self.sources.first().map_or(0, |s| s.num_segments())
    }

    /// The segment source of a column by schema index (planner-internal:
    /// the physical plan resolves names once, at compile time).
    pub(crate) fn source_at(&self, idx: usize) -> &dyn SegmentSource {
        self.sources[idx].as_ref()
    }

    /// The segment source of a named column.
    pub fn source(&self, name: &str) -> Result<&dyn SegmentSource> {
        Ok(self.source_at(self.resolve(name)?))
    }

    /// Planner metadata of one segment of a column by schema index.
    pub(crate) fn meta_at(&self, idx: usize, seg_idx: usize) -> &SegmentMeta {
        self.sources[idx].meta(seg_idx)
    }

    /// A column's table-wide `[min, max]` from resident segment
    /// metadata — the table-level zone map shard pruning intersects
    /// query bounds against. `None` when no non-empty segment exists.
    pub(crate) fn column_range(&self, idx: usize) -> Option<(i128, i128)> {
        let source = &self.sources[idx];
        let mut range: Option<(i128, i128)> = None;
        for seg_idx in 0..source.num_segments() {
            let meta = source.meta(seg_idx);
            if meta.rows == 0 {
                continue;
            }
            range = Some(match range {
                None => (meta.min, meta.max),
                Some((lo, hi)) => (lo.min(meta.min), hi.max(meta.max)),
            });
        }
        range
    }

    /// Fetch every segment of a named column (loads lazily-backed
    /// columns in full — whole-column operators only).
    pub fn column_segments(&self, name: &str) -> Result<Vec<Arc<Segment>>> {
        let source = self.source(name)?;
        (0..source.num_segments())
            .map(|i| source.segment(i))
            .collect()
    }

    /// Payload fetches that hit the backing store so far, summed over
    /// all columns — 0 for fully resident tables.
    pub fn io_reads(&self) -> usize {
        self.sources.iter().map(|s| s.io_reads()).sum()
    }

    /// Arm a [`crate::FaultPlan`] on every column's segment source, so
    /// lazily-backed reads run through its `io_read`/`io_stall` rules
    /// (chaos testing; a no-op for fully resident tables).
    pub fn inject_faults(&self, plan: &std::sync::Arc<crate::FaultPlan>) {
        for source in &self.sources {
            source.inject_faults(plan);
        }
    }

    /// Fully decompress a named column.
    pub fn materialize(&self, name: &str) -> Result<ColumnData> {
        let idx = self.resolve(name)?;
        let source = self.source_at(idx);
        let dtype = self.schema.columns[idx].dtype;
        let mut transport = Vec::with_capacity(self.num_rows);
        for seg_idx in 0..source.num_segments() {
            transport.extend(source.segment(seg_idx)?.decompress()?.to_transport());
        }
        Ok(ColumnData::from_transport(dtype, transport))
    }

    /// Total compressed bytes of a column (from segment metadata; no
    /// payload access).
    pub fn column_compressed_bytes(&self, name: &str) -> Result<usize> {
        let source = self.source(name)?;
        Ok((0..source.num_segments())
            .map(|i| source.meta(i).bytes)
            .sum())
    }

    /// Total compressed bytes of the table (from segment metadata).
    pub fn compressed_bytes(&self) -> usize {
        self.sources
            .iter()
            .map(|s| {
                (0..s.num_segments())
                    .map(|i| s.meta(i).bytes)
                    .sum::<usize>()
            })
            .sum()
    }

    /// Total plain bytes of the table.
    pub fn uncompressed_bytes(&self) -> usize {
        self.schema
            .columns
            .iter()
            .map(|c| self.num_rows * c.dtype.bytes())
            .sum()
    }

    fn resolve(&self, name: &str) -> Result<usize> {
        self.schema
            .index_of(name)
            .ok_or_else(|| StoreError::NoSuchColumn(name.to_string()))
    }
}

/// Copy `col[start..end]` out as an owned column (segment chunking for
/// the build and append paths, here and in [`crate::file::append_table`]).
pub(crate) fn slice_column(col: &ColumnData, start: usize, end: usize) -> ColumnData {
    match col {
        ColumnData::U32(v) => ColumnData::U32(v[start..end].to_vec()),
        ColumnData::U64(v) => ColumnData::U64(v[start..end].to_vec()),
        ColumnData::I32(v) => ColumnData::I32(v[start..end].to_vec()),
        ColumnData::I64(v) => ColumnData::I64(v[start..end].to_vec()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcdc_core::DType;

    fn small_table() -> Table {
        let schema = TableSchema::new(&[("date", DType::U64), ("qty", DType::U64)]);
        let date = ColumnData::U64((0..1000u64).map(|i| 20180101 + i / 100).collect());
        let qty = ColumnData::U64((0..1000u64).map(|i| 1 + i % 50).collect());
        Table::build(
            schema,
            &[date, qty],
            &[CompressionPolicy::Auto, CompressionPolicy::Auto],
            256,
        )
        .unwrap()
    }

    #[test]
    fn build_and_materialize() {
        let t = small_table();
        assert_eq!(t.num_rows(), 1000);
        assert_eq!(t.num_segments(), 4);
        let date = t.materialize("date").unwrap();
        assert_eq!(date.len(), 1000);
        assert_eq!(date.get_numeric(999), Some(20180110));
        assert_eq!(t.io_reads(), 0, "resident tables never touch a store");
    }

    #[test]
    fn compression_actually_happens() {
        let t = small_table();
        assert!(t.compressed_bytes() * 4 < t.uncompressed_bytes());
        let date_bytes = t.column_compressed_bytes("date").unwrap();
        assert!(date_bytes * 20 < 8000, "dates are runs; got {date_bytes}");
    }

    #[test]
    fn source_metadata_matches_segments() {
        let t = small_table();
        let source = t.source("qty").unwrap();
        for i in 0..source.num_segments() {
            let seg = source.segment(i).unwrap();
            assert_eq!(source.meta(i), &crate::source::SegmentMeta::of(&seg));
        }
    }

    #[test]
    fn shape_errors() {
        let schema = TableSchema::new(&[("a", DType::U32), ("b", DType::U32)]);
        let a = ColumnData::U32(vec![1, 2, 3]);
        let b_short = ColumnData::U32(vec![1]);
        assert!(Table::build_uniform(
            schema.clone(),
            &[a.clone(), b_short],
            CompressionPolicy::None
        )
        .is_err());
        let b_wrong_type = ColumnData::I64(vec![1, 2, 3]);
        assert!(Table::build_uniform(
            schema.clone(),
            &[a.clone(), b_wrong_type],
            CompressionPolicy::None
        )
        .is_err());
        assert!(Table::build_uniform(schema, &[a], CompressionPolicy::None).is_err());
    }

    #[test]
    fn unknown_column_errors() {
        let t = small_table();
        assert!(t.materialize("nope").is_err());
        assert!(t.column_segments("nope").is_err());
        assert!(t.source("nope").is_err());
    }

    #[test]
    fn empty_table() {
        let schema = TableSchema::new(&[("a", DType::U32)]);
        let t = Table::build_uniform(schema, &[ColumnData::U32(vec![])], CompressionPolicy::None)
            .unwrap();
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.num_segments(), 0);
        assert_eq!(t.materialize("a").unwrap(), ColumnData::U32(vec![]));
    }

    #[test]
    fn per_column_policies() {
        let schema = TableSchema::new(&[("a", DType::U64), ("b", DType::U64)]);
        let a = ColumnData::U64(vec![5; 100]);
        let b = ColumnData::U64((0..100).collect());
        let t = Table::build(
            schema,
            &[a, b],
            &[
                CompressionPolicy::Fixed("rle[values=ns,lengths=ns]".into()),
                CompressionPolicy::Fixed("delta[deltas=ns_zz]".into()),
            ],
            64,
        )
        .unwrap();
        assert!(t
            .column_segments("a")
            .unwrap()
            .iter()
            .all(|s| s.expr.starts_with("rle")));
        assert!(t
            .column_segments("b")
            .unwrap()
            .iter()
            .all(|s| s.expr.starts_with("delta")));
    }

    #[test]
    fn append_grows_without_touching_the_original() {
        let t = small_table();
        let date = ColumnData::U64((0..300u64).map(|i| 20180201 + i / 100).collect());
        let qty = ColumnData::U64((0..300u64).map(|i| 1 + i % 50).collect());
        let grown = t.append(&[date.clone(), qty.clone()]).unwrap();
        assert_eq!(grown.num_rows(), 1300);
        // 1000 rows / 256 seg_rows = 4 base segments, + 300/256 = 2 new.
        assert_eq!(grown.num_segments(), 6);
        assert_eq!(t.num_rows(), 1000, "original untouched");
        assert_eq!(t.num_segments(), 4);
        // The appended rows materialize at the tail, byte for byte.
        let all = grown.materialize("date").unwrap();
        assert_eq!(all.len(), 1300);
        assert_eq!(all.get_numeric(1000), Some(20180201));
        assert_eq!(all.get_numeric(1299), Some(20180203));
        // Appended segments carry zone maps and scheme tags.
        let source = grown.source("date").unwrap();
        let tail_meta = source.meta(4);
        assert_eq!(tail_meta.rows, 256);
        assert_eq!((tail_meta.min, tail_meta.max), (20180201, 20180203));
        assert!(!tail_meta.expr.is_empty());
        // Base segments are shared handles, not copies.
        let base = t.source("date").unwrap().segment(0).unwrap();
        let via_grown = source.segment(0).unwrap();
        assert!(Arc::ptr_eq(&base, &via_grown));
    }

    #[test]
    fn append_validates_like_build() {
        let t = small_table();
        // Wrong width.
        assert!(t.append(&[ColumnData::U64(vec![1])]).is_err());
        // Unequal lengths.
        assert!(t
            .append(&[ColumnData::U64(vec![1, 2]), ColumnData::U64(vec![1])])
            .is_err());
        // Wrong dtype.
        assert!(t
            .append(&[ColumnData::I64(vec![1]), ColumnData::U64(vec![1])])
            .is_err());
        // Empty batch: a clone of the original, same segments.
        let same = t
            .append(&[ColumnData::U64(vec![]), ColumnData::U64(vec![])])
            .unwrap();
        assert_eq!(same.num_rows(), 1000);
        assert_eq!(same.num_segments(), 4);
    }

    #[test]
    fn repeated_appends_nest_and_query_correctly() {
        let mut t = small_table();
        for round in 0..3u64 {
            let date = ColumnData::U64(vec![30_000_000 + round; 100]);
            let qty = ColumnData::U64(vec![7; 100]);
            t = t.append(&[date, qty]).unwrap();
        }
        assert_eq!(t.num_rows(), 1300);
        let result = crate::QueryBuilder::scan(&t)
            .filter(
                "date",
                crate::Predicate::Range {
                    lo: 30_000_000,
                    hi: 30_000_002,
                },
            )
            .aggregate(&[crate::Agg::Sum("qty"), crate::Agg::Count])
            .execute()
            .unwrap();
        assert_eq!(result.aggregates().unwrap(), &[Some(2100), Some(300)]);
    }

    #[test]
    fn from_sources_validates_alignment() {
        let t = small_table();
        let schema = t.schema().clone();
        let date = crate::source::ResidentSource::new(
            t.column_segments("date")
                .unwrap()
                .iter()
                .map(|s| (**s).clone())
                .collect(),
        );
        // One source for a two-column schema: rejected.
        assert!(Table::from_sources(
            schema.clone(),
            vec![Arc::new(date) as Arc<dyn SegmentSource>],
            1000,
            256
        )
        .is_err());
    }

    #[test]
    fn from_sources_rejects_misaligned_segmentation() {
        use crate::source::ResidentSource;
        // Equal segment counts and equal totals, but different splits:
        // column A is [10, 20] rows, column B is [20, 10].
        let schema = TableSchema::new(&[("a", DType::U32), ("b", DType::U32)]);
        let seg = |n: usize| {
            Segment::build(
                &ColumnData::U32((0..n as u32).collect()),
                &CompressionPolicy::None,
            )
            .unwrap()
        };
        let a = ResidentSource::new(vec![seg(10), seg(20)]);
        let b = ResidentSource::new(vec![seg(20), seg(10)]);
        let err = Table::from_sources(
            schema,
            vec![
                Arc::new(a) as Arc<dyn SegmentSource>,
                Arc::new(b) as Arc<dyn SegmentSource>,
            ],
            30,
            20,
        );
        assert!(err.is_err(), "misaligned splits must be rejected");
    }
}
