//! Tables: per-column lists of compressed segments.

use crate::schema::TableSchema;
use crate::segment::{CompressionPolicy, Segment};
use crate::{Result, StoreError};
use lcdc_core::ColumnData;

/// Default rows per segment (matches common vector/block sizes).
pub const DEFAULT_SEG_ROWS: usize = 16_384;

/// A columnar table: a schema plus, per column, equal-height compressed
/// segments.
#[derive(Debug)]
pub struct Table {
    schema: TableSchema,
    /// `segments[col][seg]`.
    segments: Vec<Vec<Segment>>,
    num_rows: usize,
    seg_rows: usize,
}

impl Table {
    /// Build a table from whole columns, compressing each column's
    /// segments under its own policy. All columns must have equal length;
    /// `policies` must align with `schema.columns`.
    pub fn build(
        schema: TableSchema,
        columns: &[ColumnData],
        policies: &[CompressionPolicy],
        seg_rows: usize,
    ) -> Result<Table> {
        if columns.len() != schema.width() || policies.len() != schema.width() {
            return Err(StoreError::Shape(format!(
                "{} columns, {} schemas, {} policies",
                columns.len(),
                schema.width(),
                policies.len()
            )));
        }
        let seg_rows = seg_rows.max(1);
        let num_rows = columns.first().map_or(0, ColumnData::len);
        for (i, col) in columns.iter().enumerate() {
            if col.len() != num_rows {
                return Err(StoreError::Shape(format!(
                    "column {} has {} rows, expected {num_rows}",
                    schema.columns[i].name,
                    col.len()
                )));
            }
            if col.dtype() != schema.columns[i].dtype {
                return Err(StoreError::Shape(format!(
                    "column {} is {:?}, schema says {:?}",
                    schema.columns[i].name,
                    col.dtype(),
                    schema.columns[i].dtype
                )));
            }
        }
        let mut segments = Vec::with_capacity(columns.len());
        for (col, policy) in columns.iter().zip(policies) {
            let mut col_segments = Vec::with_capacity(num_rows.div_ceil(seg_rows));
            for start in (0..num_rows).step_by(seg_rows) {
                let end = (start + seg_rows).min(num_rows);
                let chunk = slice_column(col, start, end);
                let segment = Segment::build(&chunk, policy)?;
                segment.check_rows(end - start)?;
                col_segments.push(segment);
            }
            segments.push(col_segments);
        }
        Ok(Table {
            schema,
            segments,
            num_rows,
            seg_rows,
        })
    }

    /// Assemble a table from already-compressed segments (the
    /// persistence layer's load path). Validates that every column has
    /// the same total row count and that non-final segments are exactly
    /// `seg_rows` tall.
    pub fn from_segments(
        schema: TableSchema,
        segments: Vec<Vec<Segment>>,
        seg_rows: usize,
    ) -> Result<Table> {
        if segments.len() != schema.width() {
            return Err(StoreError::Shape(format!(
                "{} segment columns, {} schema columns",
                segments.len(),
                schema.width()
            )));
        }
        let seg_rows = seg_rows.max(1);
        let num_rows = segments
            .first()
            .map_or(0, |col| col.iter().map(Segment::num_rows).sum());
        for (i, col) in segments.iter().enumerate() {
            let total: usize = col.iter().map(Segment::num_rows).sum();
            if total != num_rows {
                return Err(StoreError::Shape(format!(
                    "column {} holds {total} rows, expected {num_rows}",
                    schema.columns[i].name
                )));
            }
            for (j, seg) in col.iter().enumerate() {
                let expected = if j + 1 < col.len() {
                    seg_rows
                } else {
                    num_rows - seg_rows * (col.len() - 1)
                };
                seg.check_rows(expected)?;
                if seg.compressed.dtype != schema.columns[i].dtype {
                    return Err(StoreError::Shape(format!(
                        "column {} segment {j} is {:?}, schema says {:?}",
                        schema.columns[i].name, seg.compressed.dtype, schema.columns[i].dtype
                    )));
                }
            }
        }
        Ok(Table {
            schema,
            segments,
            num_rows,
            seg_rows,
        })
    }

    /// Convenience: build with one shared policy and default segment
    /// height.
    pub fn build_uniform(
        schema: TableSchema,
        columns: &[ColumnData],
        policy: CompressionPolicy,
    ) -> Result<Table> {
        let policies = vec![policy; schema.width()];
        Table::build(schema, columns, &policies, DEFAULT_SEG_ROWS)
    }

    /// The schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Total rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Rows per segment (last segment may be shorter).
    pub fn seg_rows(&self) -> usize {
        self.seg_rows
    }

    /// Number of segments per column.
    pub fn num_segments(&self) -> usize {
        self.segments.first().map_or(0, Vec::len)
    }

    /// The segments of a column by schema index (planner-internal: the
    /// physical plan resolves names once, at compile time).
    pub(crate) fn segments_at(&self, idx: usize) -> &[Segment] {
        &self.segments[idx]
    }

    /// The segments of a named column.
    pub fn column_segments(&self, name: &str) -> Result<&[Segment]> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| StoreError::NoSuchColumn(name.to_string()))?;
        Ok(&self.segments[idx])
    }

    /// Fully decompress a named column.
    pub fn materialize(&self, name: &str) -> Result<ColumnData> {
        let segments = self.column_segments(name)?;
        let dtype = self.schema.columns[self.schema.index_of(name).expect("checked")].dtype;
        let mut transport = Vec::with_capacity(self.num_rows);
        for segment in segments {
            transport.extend(segment.decompress()?.to_transport());
        }
        Ok(ColumnData::from_transport(dtype, transport))
    }

    /// Total compressed bytes of a column.
    pub fn column_compressed_bytes(&self, name: &str) -> Result<usize> {
        Ok(self
            .column_segments(name)?
            .iter()
            .map(Segment::compressed_bytes)
            .sum())
    }

    /// Total compressed bytes of the table.
    pub fn compressed_bytes(&self) -> usize {
        self.segments
            .iter()
            .flat_map(|col| col.iter().map(Segment::compressed_bytes))
            .sum()
    }

    /// Total plain bytes of the table.
    pub fn uncompressed_bytes(&self) -> usize {
        self.schema
            .columns
            .iter()
            .map(|c| self.num_rows * c.dtype.bytes())
            .sum()
    }
}

fn slice_column(col: &ColumnData, start: usize, end: usize) -> ColumnData {
    match col {
        ColumnData::U32(v) => ColumnData::U32(v[start..end].to_vec()),
        ColumnData::U64(v) => ColumnData::U64(v[start..end].to_vec()),
        ColumnData::I32(v) => ColumnData::I32(v[start..end].to_vec()),
        ColumnData::I64(v) => ColumnData::I64(v[start..end].to_vec()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcdc_core::DType;

    fn small_table() -> Table {
        let schema = TableSchema::new(&[("date", DType::U64), ("qty", DType::U64)]);
        let date = ColumnData::U64((0..1000u64).map(|i| 20180101 + i / 100).collect());
        let qty = ColumnData::U64((0..1000u64).map(|i| 1 + i % 50).collect());
        Table::build(
            schema,
            &[date, qty],
            &[CompressionPolicy::Auto, CompressionPolicy::Auto],
            256,
        )
        .unwrap()
    }

    #[test]
    fn build_and_materialize() {
        let t = small_table();
        assert_eq!(t.num_rows(), 1000);
        assert_eq!(t.num_segments(), 4);
        let date = t.materialize("date").unwrap();
        assert_eq!(date.len(), 1000);
        assert_eq!(date.get_numeric(999), Some(20180110));
    }

    #[test]
    fn compression_actually_happens() {
        let t = small_table();
        assert!(t.compressed_bytes() * 4 < t.uncompressed_bytes());
        let date_bytes = t.column_compressed_bytes("date").unwrap();
        assert!(date_bytes * 20 < 8000, "dates are runs; got {date_bytes}");
    }

    #[test]
    fn shape_errors() {
        let schema = TableSchema::new(&[("a", DType::U32), ("b", DType::U32)]);
        let a = ColumnData::U32(vec![1, 2, 3]);
        let b_short = ColumnData::U32(vec![1]);
        assert!(Table::build_uniform(
            schema.clone(),
            &[a.clone(), b_short],
            CompressionPolicy::None
        )
        .is_err());
        let b_wrong_type = ColumnData::I64(vec![1, 2, 3]);
        assert!(Table::build_uniform(
            schema.clone(),
            &[a.clone(), b_wrong_type],
            CompressionPolicy::None
        )
        .is_err());
        assert!(Table::build_uniform(schema, &[a], CompressionPolicy::None).is_err());
    }

    #[test]
    fn unknown_column_errors() {
        let t = small_table();
        assert!(t.materialize("nope").is_err());
        assert!(t.column_segments("nope").is_err());
    }

    #[test]
    fn empty_table() {
        let schema = TableSchema::new(&[("a", DType::U32)]);
        let t = Table::build_uniform(schema, &[ColumnData::U32(vec![])], CompressionPolicy::None)
            .unwrap();
        assert_eq!(t.num_rows(), 0);
        assert_eq!(t.num_segments(), 0);
        assert_eq!(t.materialize("a").unwrap(), ColumnData::U32(vec![]));
    }

    #[test]
    fn per_column_policies() {
        let schema = TableSchema::new(&[("a", DType::U64), ("b", DType::U64)]);
        let a = ColumnData::U64(vec![5; 100]);
        let b = ColumnData::U64((0..100).collect());
        let t = Table::build(
            schema,
            &[a, b],
            &[
                CompressionPolicy::Fixed("rle[values=ns,lengths=ns]".into()),
                CompressionPolicy::Fixed("delta[deltas=ns_zz]".into()),
            ],
            64,
        )
        .unwrap();
        assert!(t
            .column_segments("a")
            .unwrap()
            .iter()
            .all(|s| s.expr.starts_with("rle")));
        assert!(t
            .column_segments("b")
            .unwrap()
            .iter()
            .all(|s| s.expr.starts_with("delta")));
    }
}
