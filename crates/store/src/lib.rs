//! # lcdc-store — a miniature column store with a logical-plan query API
//!
//! The substrate for the paper's "why it matters" claims: a vectorised
//! column store whose segments are compressed with per-segment scheme
//! choice, and whose query operators can run **on the compressed form**.
//!
//! ## The query API
//!
//! Queries are built as **logical plans** and compiled to
//! **compression-aware physical plans** (see [`crate::query`]):
//!
//! ```
//! use lcdc_core::{ColumnData, DType};
//! use lcdc_store::{Agg, CompressionPolicy, Predicate, QueryBuilder, Table, TableSchema};
//!
//! # let schema = TableSchema::new(&[("shipdate", DType::U64), ("qty", DType::U64)]);
//! # let shipdate = ColumnData::U64((0..2000u64).map(|i| 19_920_101 + i / 40).collect());
//! # let qty = ColumnData::U64((0..2000u64).map(|i| 1 + i % 50).collect());
//! # let table = Table::build(
//! #     schema,
//! #     &[shipdate, qty],
//! #     &[CompressionPolicy::Auto, CompressionPolicy::Auto],
//! #     256,
//! # ).unwrap();
//! let result = QueryBuilder::scan(&table)
//!     .filter("shipdate", Predicate::Range { lo: 19_920_110, hi: 19_920_120 })
//!     .group_by("shipdate")
//!     .aggregate(&[Agg::Sum("qty"), Agg::Count])
//!     .execute()
//!     .unwrap();
//! assert_eq!(result.groups().unwrap().len(), 11);
//! ```
//!
//! The physical plan executes segment by segment, choosing the cheapest
//! pushdown tier each segment's scheme offers — zone-map pruning from
//! FOR/STEP model metadata, run-granularity predicates on RLE/RPE,
//! code-granularity on DICT, run-weighted aggregation, part-column
//! distinct — and materialises rows only as the last resort. The same
//! per-segment pipeline drives [`QueryBuilder::execute_parallel`], so
//! every operator parallelises, and a naive decompress-everything mode
//! ([`QueryBuilder::execute_naive`]) keeps the pushdown/fusion
//! experiments (E7-E9) honest. One [`QueryStats`] records the
//! segment/row/tier accounting uniformly across operators.
//!
//! ## The storage API
//!
//! A [`Table`] is a schema plus, per column, a [`SegmentSource`] handle
//! — segments may be fully resident ([`Table::build`]) or lazily
//! loaded from disk behind an LRU cache
//! ([`file::open_table_lazy`]); the planner consults resident
//! [`source::SegmentMeta`] (zone maps, scheme tags) for every pruning
//! decision and fetches payloads only for segments a pushdown tier
//! actually touches. The [`Catalog`] layers multi-table storage on
//! top: named tables, horizontal sharding ([`ShardedTable`], scanned
//! fan-in with merged [`QueryStats`]), monotonic versions stamped on
//! every mutation, and a query-result cache keyed on
//! `(plan fingerprint, table version)` via the stable
//! [`QuerySpec::fingerprint`].
//!
//! ## The write path
//!
//! Tables are immutable values; *growth* happens by appending:
//! [`Table::append`] encodes a row batch into fresh compressed
//! segments (per-segment scheme choice, zone maps and scheme tags like
//! built data) chained after the existing — possibly lazily-backed —
//! segments, [`Catalog::ingest`] routes a batch to the owning shards
//! by key range ([`Catalog::register_sharded_keyed`]) and publishes it
//! under one version bump so cached results self-invalidate, and
//! [`file::append_table`] is the on-disk counterpart: new frames
//! appended to the column files without rewriting existing ones, the
//! manifest rewritten last so torn writes are rejected on open.
//!
//! The pre-planner entry points — [`Query`] (filter + aggregate),
//! [`groupby`](mod@groupby), [`topk`](mod@topk),
//! [`distinct`](mod@distinct), [`run_pushdown_parallel`] — survive as
//! thin adapters over the planner, so existing callers and benches keep
//! working unchanged.
//!
//! Deliberately small: no transactions, no SQL — the paper's claims are
//! about scans over compressed columns, and that is what is here, built
//! on the same `lcdc-colops` kernels the decompression plans use.
//!
//! See `docs/ARCHITECTURE.md` at the repository root for the layer map
//! (segment → source → table → catalog → plans → executor) and the
//! version / cache-invalidation contract the write path relies on.

#![warn(missing_docs)]

pub mod agg;
pub mod approx;
pub mod catalog;
pub mod distinct;
pub mod exec;
pub mod fault;
pub mod file;
pub(crate) mod fnv;
pub mod groupby;
pub mod join;
pub mod par;
pub mod predicate;
pub mod query;
pub mod schema;
pub mod segment;
pub mod selvec;
pub mod server;
pub mod sort;
pub mod source;
pub mod table;
pub mod topk;

pub use agg::{AggKind, AggResult};
pub use approx::{approximate_aggregate, AggInterval, GradualAggregate};
pub use catalog::{shard_table, Catalog, CatalogTable, ResolvedJoin, ShardRouting, ShardedTable};
pub use distinct::{distinct_compressed, distinct_naive, DistinctStats};
pub use exec::{Query, QueryOutput};
pub use fault::{FaultPlan, FaultSite};
pub use file::{append_table, load_table, open_table_lazy, read_segment, save_table};
pub use join::{join_count_compressed, join_count_naive};
pub use par::{par_materialize, run_pushdown_parallel};
pub use predicate::{InList, Predicate, PushdownStats};
pub use query::{
    Agg, ExecOptions, JoinSpec, PhysicalPlan, QueryArgs, QueryBuilder, QueryResult, QuerySpec,
    QueryStats, Rows,
};
pub use schema::{ColumnSchema, TableSchema};
pub use segment::{CompressionPolicy, Segment};
pub use selvec::{gather_early, gather_late, select, select_and, GatherStats, SelVec};
pub use server::{
    Client, EndpointStats, Request, Response, RetryPolicy, Server, ServerConfig, StatsReport,
};
pub use sort::{sort_column_compressed, sort_column_naive, SortStats};
pub use source::{ChainedSource, FileSource, ResidentSource, SegmentMeta, SegmentSource};
pub use table::Table;
pub use topk::{top_k_naive, top_k_pruned, TopKStats};

/// Errors produced by the store.
#[derive(Debug)]
pub enum StoreError {
    /// A core-layer operation failed.
    Core(lcdc_core::CoreError),
    /// A named column does not exist.
    NoSuchColumn(String),
    /// A named catalog table does not exist.
    NoSuchTable(String),
    /// Input columns of unequal length, or segment bookkeeping broken.
    Shape(String),
    /// Filesystem I/O failed (persistence layer).
    Io(std::io::Error),
    /// A persisted file is malformed or fails its checksum.
    CorruptFile(String),
    /// A request's deadline expired before its query finished; the
    /// worker pool abandoned the query's unclaimed morsels.
    DeadlineExceeded {
        /// The deadline that expired, in milliseconds.
        deadline_ms: u64,
    },
    /// The request was cancelled before completion — typically because
    /// the server observed the client's disconnect mid-query.
    Cancelled,
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Core(e) => write!(f, "core: {e}"),
            StoreError::NoSuchColumn(name) => write!(f, "no such column {name:?}"),
            StoreError::NoSuchTable(name) => write!(f, "no such table {name:?}"),
            StoreError::Shape(msg) => write!(f, "shape error: {msg}"),
            StoreError::Io(e) => write!(f, "io: {e}"),
            StoreError::CorruptFile(msg) => write!(f, "corrupt file: {msg}"),
            StoreError::DeadlineExceeded { deadline_ms } => {
                write!(f, "deadline of {deadline_ms}ms exceeded")
            }
            StoreError::Cancelled => write!(f, "request cancelled"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<lcdc_core::CoreError> for StoreError {
    fn from(e: lcdc_core::CoreError) -> Self {
        StoreError::Core(e)
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StoreError>;
