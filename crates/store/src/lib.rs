//! # lcdc-store — a miniature column store
//!
//! The substrate for the paper's "why it matters" claims: a vectorised
//! column store whose segments are compressed with per-segment scheme
//! choice, and whose scan/filter/aggregate operators can run **on the
//! compressed form** — zone-map pruning from FOR/STEP model metadata,
//! run-granularity predicate evaluation on RLE/RPE, run-weighted
//! aggregation — next to a naive decompress-everything baseline for the
//! pushdown/fusion experiments (E7, E8).
//!
//! Deliberately small: one table = a schema plus, per column, a list of
//! compressed segments. No transactions, no buffer manager, no SQL — the
//! paper's claims are about scans over compressed columns, and that is
//! what is here, built on the same `lcdc-colops` kernels the
//! decompression plans use.

pub mod agg;
pub mod approx;
pub mod distinct;
pub mod exec;
pub mod file;
pub mod par;
pub mod groupby;
pub mod join;
pub mod predicate;
pub mod schema;
pub mod segment;
pub mod selvec;
pub mod sort;
pub mod table;
pub mod topk;

pub use agg::{AggKind, AggResult};
pub use approx::{approximate_aggregate, AggInterval, GradualAggregate};
pub use exec::{Query, QueryOutput, QueryStats};
pub use file::{load_table, read_segment, save_table};
pub use par::{par_materialize, run_pushdown_parallel};
pub use join::{join_count_compressed, join_count_naive};
pub use predicate::Predicate;
pub use schema::{ColumnSchema, TableSchema};
pub use distinct::{distinct_compressed, distinct_naive, DistinctStats};
pub use selvec::{gather_early, gather_late, select, select_and, GatherStats, SelVec};
pub use sort::{sort_column_compressed, sort_column_naive, SortStats};
pub use topk::{top_k_naive, top_k_pruned, TopKStats};
pub use segment::{CompressionPolicy, Segment};
pub use table::Table;

/// Errors produced by the store.
#[derive(Debug)]
pub enum StoreError {
    /// A core-layer operation failed.
    Core(lcdc_core::CoreError),
    /// A named column does not exist.
    NoSuchColumn(String),
    /// Input columns of unequal length, or segment bookkeeping broken.
    Shape(String),
    /// Filesystem I/O failed (persistence layer).
    Io(std::io::Error),
    /// A persisted file is malformed or fails its checksum.
    CorruptFile(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Core(e) => write!(f, "core: {e}"),
            StoreError::NoSuchColumn(name) => write!(f, "no such column {name:?}"),
            StoreError::Shape(msg) => write!(f, "shape error: {msg}"),
            StoreError::Io(e) => write!(f, "io: {e}"),
            StoreError::CorruptFile(msg) => write!(f, "corrupt file: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<lcdc_core::CoreError> for StoreError {
    fn from(e: lcdc_core::CoreError) -> Self {
        StoreError::Core(e)
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StoreError>;
