//! Query execution: the naive and pushdown pipelines side by side.
//!
//! A [`Query`] is a filter on one column plus an aggregate over another
//! (the canonical analytic scan shape, e.g. "total quantity shipped in
//! this date range"). Two executors answer it:
//!
//! * [`Query::run_naive`] — decompress every touched segment fully,
//!   filter row-at-a-time, aggregate; the baseline every engine without
//!   compression-aware operators runs.
//! * [`Query::run_pushdown`] — zone-map pruning, run-granularity
//!   predicate evaluation, run-/segment-granularity aggregation where no
//!   selection survived (see [`crate::predicate`] and [`crate::agg`]).
//!
//! Both return the same answer (asserted across the test suite); E7/E8
//! benchmark their separation.

use crate::agg::{aggregate_plain, aggregate_segment, AggResult};
use crate::predicate::{Predicate, PushdownStats};
use crate::table::Table;
use crate::Result;

/// A filtered aggregate over one table.
#[derive(Debug, Clone)]
pub struct Query {
    /// Column the predicate applies to.
    pub filter_column: String,
    /// The predicate.
    pub predicate: Predicate,
    /// Column to aggregate.
    pub agg_column: String,
}

/// The answer plus execution accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutput {
    /// The aggregate over the selected rows.
    pub agg: AggResult,
    /// Execution counters.
    pub stats: QueryStats,
}

/// Counters describing how a query executed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryStats {
    /// Segments touched.
    pub segments: usize,
    /// Rows materialised (decompressed into plain vectors).
    pub rows_materialized: usize,
    /// Pushdown tier counters (zero for the naive path).
    pub pushdown: PushdownStats,
}

impl Query {
    /// Construct a filtered-aggregate query.
    pub fn new(filter_column: &str, predicate: Predicate, agg_column: &str) -> Self {
        Query {
            filter_column: filter_column.to_string(),
            predicate,
            agg_column: agg_column.to_string(),
        }
    }

    /// Decompress-everything baseline.
    pub fn run_naive(&self, table: &Table) -> Result<QueryOutput> {
        let filter_segments = table.column_segments(&self.filter_column)?;
        let agg_segments = table.column_segments(&self.agg_column)?;
        let mut agg = AggResult::default();
        let mut stats = QueryStats::default();
        for (fseg, aseg) in filter_segments.iter().zip(agg_segments) {
            stats.segments += 1;
            let filter_col = fseg.decompress()?;
            let agg_col = aseg.decompress()?;
            stats.rows_materialized += filter_col.len() + agg_col.len();
            let mask = self.predicate.eval_plain(&filter_col);
            agg.merge(&aggregate_plain(&agg_col, Some(&mask)));
        }
        Ok(QueryOutput { agg, stats })
    }

    /// Compression-aware execution.
    pub fn run_pushdown(&self, table: &Table) -> Result<QueryOutput> {
        let filter_segments = table.column_segments(&self.filter_column)?;
        let agg_segments = table.column_segments(&self.agg_column)?;
        let mut agg = AggResult::default();
        let mut stats = QueryStats::default();
        for (fseg, aseg) in filter_segments.iter().zip(agg_segments) {
            let (part, part_stats) = self.pushdown_segment(fseg, aseg)?;
            agg.merge(&part);
            stats.absorb(&part_stats);
        }
        Ok(QueryOutput { agg, stats })
    }

    /// One segment's worth of the pushdown pipeline — the unit both the
    /// sequential and the parallel executors ([`crate::par`]) run.
    pub(crate) fn pushdown_segment(
        &self,
        fseg: &crate::segment::Segment,
        aseg: &crate::segment::Segment,
    ) -> Result<(AggResult, QueryStats)> {
        let mut agg = AggResult::default();
        let mut stats = QueryStats { segments: 1, ..QueryStats::default() };
        let n = fseg.num_rows();
        // Zone-map short-circuits avoid touching the filter column.
        if let Some((lo, hi)) = self.predicate.bounds() {
            if fseg.prunable(lo, hi) {
                stats.pushdown.zonemap_hits += 1;
                return Ok((agg, stats));
            }
            if fseg.fully_inside(lo, hi) {
                stats.pushdown.zonemap_hits += 1;
                // Whole segment selected: aggregate on the compressed
                // form, never materialising either column.
                agg.merge(&aggregate_segment(aseg, None)?);
                return Ok((agg, stats));
            }
        } else {
            stats.pushdown.zonemap_hits += 1;
            agg.merge(&aggregate_segment(aseg, None)?);
            return Ok((agg, stats));
        }
        // Partial overlap: evaluate the predicate at the best
        // granularity the filter segment's scheme offers.
        let mask = self.predicate.eval_segment(fseg, Some(&mut stats.pushdown))?;
        let selected = mask.count_ones();
        if selected == 0 {
            return Ok((agg, stats));
        }
        if selected == n {
            agg.merge(&aggregate_segment(aseg, None)?);
            return Ok((agg, stats));
        }
        let agg_col = aseg.decompress()?;
        stats.rows_materialized += agg_col.len();
        agg.merge(&aggregate_plain(&agg_col, Some(&mask)));
        Ok((agg, stats))
    }
}

impl QueryStats {
    /// Merge another stats record into this one (parallel partials).
    pub fn absorb(&mut self, other: &QueryStats) {
        self.segments += other.segments;
        self.rows_materialized += other.rows_materialized;
        self.pushdown.absorb(&other.pushdown);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use crate::segment::CompressionPolicy;
    use lcdc_core::{ColumnData, DType};

    fn orders_table(policy: CompressionPolicy) -> Table {
        // 100 days x 100 orders; quantity cycles 1..=50.
        let schema = TableSchema::new(&[("date", DType::U64), ("qty", DType::U64)]);
        let date = ColumnData::U64((0..10_000u64).map(|i| 20_180_101 + i / 100).collect());
        let qty = ColumnData::U64((0..10_000u64).map(|i| 1 + i % 50).collect());
        Table::build(schema, &[date, qty], &[policy.clone(), policy], 1000).unwrap()
    }

    fn range_query(lo: u64, hi: u64) -> Query {
        Query::new("date", Predicate::Range { lo: lo as i128, hi: hi as i128 }, "qty")
    }

    #[test]
    fn naive_and_pushdown_agree() {
        let table = orders_table(CompressionPolicy::Auto);
        for (lo, hi) in [
            (20_180_101, 20_180_200),   // all
            (20_180_110, 20_180_115),   // narrow
            (20_190_101, 20_190_102),   // none
            (20_180_105, 20_180_105),   // single day
        ] {
            let q = range_query(lo, hi);
            let naive = q.run_naive(&table).unwrap();
            let push = q.run_pushdown(&table).unwrap();
            assert_eq!(naive.agg, push.agg, "range {lo}..{hi}");
        }
    }

    #[test]
    fn pushdown_materializes_fewer_rows() {
        let table = orders_table(CompressionPolicy::Auto);
        let q = range_query(20_180_110, 20_180_115);
        let naive = q.run_naive(&table).unwrap();
        let push = q.run_pushdown(&table).unwrap();
        assert!(
            push.stats.rows_materialized * 2 < naive.stats.rows_materialized,
            "pushdown {} vs naive {}",
            push.stats.rows_materialized,
            naive.stats.rows_materialized
        );
        assert!(push.stats.pushdown.zonemap_hits > 0);
    }

    #[test]
    fn all_predicate_never_materializes() {
        let table = orders_table(CompressionPolicy::Auto);
        let q = Query::new("date", Predicate::All, "qty");
        let push = q.run_pushdown(&table).unwrap();
        assert_eq!(push.stats.rows_materialized, 0);
        let naive = q.run_naive(&table).unwrap();
        assert_eq!(naive.agg, push.agg);
    }

    #[test]
    fn empty_selection_sums_to_zero() {
        let table = orders_table(CompressionPolicy::Auto);
        let q = range_query(1, 2);
        let out = q.run_pushdown(&table).unwrap();
        assert_eq!(out.agg.count, 0);
        assert_eq!(out.agg.sum, 0);
        assert_eq!(out.stats.rows_materialized, 0);
    }

    #[test]
    fn works_on_uncompressed_tables_too() {
        let table = orders_table(CompressionPolicy::None);
        let q = range_query(20_180_110, 20_180_120);
        let naive = q.run_naive(&table).unwrap();
        let push = q.run_pushdown(&table).unwrap();
        assert_eq!(naive.agg, push.agg);
    }

    #[test]
    fn unknown_columns_error() {
        let table = orders_table(CompressionPolicy::None);
        assert!(Query::new("nope", Predicate::All, "qty").run_naive(&table).is_err());
        assert!(Query::new("date", Predicate::All, "nope").run_pushdown(&table).is_err());
    }

    #[test]
    fn eq_predicate_on_single_day() {
        let table = orders_table(CompressionPolicy::Auto);
        let q = Query::new("date", Predicate::Eq(20_180_105), "qty");
        let naive = q.run_naive(&table).unwrap();
        let push = q.run_pushdown(&table).unwrap();
        assert_eq!(naive.agg, push.agg);
        assert_eq!(naive.agg.count, 100);
    }
}
