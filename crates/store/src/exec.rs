//! The classic filtered-aggregate query, as a thin adapter over the
//! planner.
//!
//! [`Query`] predates the logical-plan API: one filter plus one
//! aggregate column (the canonical analytic scan shape, "total quantity
//! shipped in this date range"). It survives as a convenience wrapper —
//! [`Query::run_naive`] and [`Query::run_pushdown`] compile to the same
//! [`crate::QueryBuilder`] plan in naive and pushdown mode respectively,
//! so the E7/E8 benches keep measuring exactly the separation the
//! planner's tiers produce. New code should use
//! [`crate::QueryBuilder`] directly.

use crate::agg::AggResult;
use crate::predicate::Predicate;
use crate::query::{Agg, QueryBuilder, SinkState};
use crate::table::Table;
use crate::Result;

pub use crate::query::QueryStats;

/// A filtered aggregate over one table.
#[derive(Debug, Clone)]
pub struct Query {
    /// Column the predicate applies to.
    pub filter_column: String,
    /// The predicate.
    pub predicate: Predicate,
    /// Column to aggregate.
    pub agg_column: String,
}

/// The answer plus execution accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutput {
    /// The aggregate over the selected rows.
    pub agg: AggResult,
    /// Execution counters.
    pub stats: QueryStats,
}

impl Query {
    /// Construct a filtered-aggregate query.
    pub fn new(filter_column: &str, predicate: Predicate, agg_column: &str) -> Self {
        Query {
            filter_column: filter_column.to_string(),
            predicate,
            agg_column: agg_column.to_string(),
        }
    }

    /// The equivalent logical plan.
    pub fn builder<'t>(&self, table: &'t Table) -> QueryBuilder<'t> {
        QueryBuilder::scan(table)
            .filter(&self.filter_column, self.predicate.clone())
            .aggregate(&[Agg::Sum(&self.agg_column)])
    }

    /// Decompress-everything baseline.
    pub fn run_naive(&self, table: &Table) -> Result<QueryOutput> {
        self.run_mode(table, true)
    }

    /// Compression-aware execution through every pushdown tier.
    pub fn run_pushdown(&self, table: &Table) -> Result<QueryOutput> {
        self.run_mode(table, false)
    }

    fn run_mode(&self, table: &Table, naive: bool) -> Result<QueryOutput> {
        let builder = self.builder(table);
        let plan = if naive {
            builder.compile_naive()?
        } else {
            builder.compile()?
        };
        let (state, stats) = plan.run()?;
        Ok(QueryOutput {
            agg: take_agg(state),
            stats,
        })
    }

    /// Parallel pushdown execution (see [`crate::par`]).
    pub(crate) fn run_parallel(&self, table: &Table, threads: usize) -> Result<QueryOutput> {
        let plan = self.builder(table).compile()?;
        let (state, stats) = plan.run_parallel(threads)?;
        Ok(QueryOutput {
            agg: take_agg(state),
            stats,
        })
    }
}

/// Extract the single tracked column's full [`AggResult`] from a
/// finished aggregate sink.
fn take_agg(state: SinkState) -> AggResult {
    match state {
        SinkState::Aggregate { acc } => acc.per_col[0],
        _ => unreachable!("filtered-aggregate plan has an aggregate sink"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use crate::segment::CompressionPolicy;
    use lcdc_core::{ColumnData, DType};

    fn orders_table(policy: CompressionPolicy) -> Table {
        // 100 days x 100 orders; quantity cycles 1..=50.
        let schema = TableSchema::new(&[("date", DType::U64), ("qty", DType::U64)]);
        let date = ColumnData::U64((0..10_000u64).map(|i| 20_180_101 + i / 100).collect());
        let qty = ColumnData::U64((0..10_000u64).map(|i| 1 + i % 50).collect());
        Table::build(schema, &[date, qty], &[policy.clone(), policy], 1000).unwrap()
    }

    fn range_query(lo: u64, hi: u64) -> Query {
        Query::new(
            "date",
            Predicate::Range {
                lo: lo as i128,
                hi: hi as i128,
            },
            "qty",
        )
    }

    #[test]
    fn naive_and_pushdown_agree() {
        let table = orders_table(CompressionPolicy::Auto);
        for (lo, hi) in [
            (20_180_101, 20_180_200), // all
            (20_180_110, 20_180_115), // narrow
            (20_190_101, 20_190_102), // none
            (20_180_105, 20_180_105), // single day
        ] {
            let q = range_query(lo, hi);
            let naive = q.run_naive(&table).unwrap();
            let push = q.run_pushdown(&table).unwrap();
            assert_eq!(naive.agg, push.agg, "range {lo}..{hi}");
        }
    }

    #[test]
    fn pushdown_materializes_fewer_rows() {
        let table = orders_table(CompressionPolicy::Auto);
        let q = range_query(20_180_110, 20_180_115);
        let naive = q.run_naive(&table).unwrap();
        let push = q.run_pushdown(&table).unwrap();
        // Naive counts each row once, even though it decompresses both
        // the filter and the aggregate column of every segment: rows
        // materialised is a row count, not a (column, row) count.
        assert_eq!(naive.stats.rows_materialized, table.num_rows());
        assert!(
            push.stats.rows_materialized * 2 < naive.stats.rows_materialized,
            "pushdown {} vs naive {}",
            push.stats.rows_materialized,
            naive.stats.rows_materialized
        );
        assert!(push.stats.pushdown.zonemap_hits > 0);
    }

    #[test]
    fn all_predicate_with_run_structured_agg_never_materializes() {
        // Filter All never touches the filter column; the date column's
        // run structure lets the sum run entirely on the compressed form.
        let schema = TableSchema::new(&[("date", DType::U64), ("qty", DType::U64)]);
        let date = ColumnData::U64((0..10_000u64).map(|i| 20_180_101 + i / 100).collect());
        let qty = ColumnData::U64((0..10_000u64).map(|i| 1 + i % 50).collect());
        let table = Table::build(
            schema,
            &[date, qty],
            &[
                CompressionPolicy::Fixed("rle[values=delta[deltas=ns],lengths=ns]".into()),
                CompressionPolicy::Auto,
            ],
            1000,
        )
        .unwrap();
        let q = Query::new("qty", Predicate::All, "date");
        let push = q.run_pushdown(&table).unwrap();
        assert_eq!(push.stats.rows_materialized, 0, "{:?}", push.stats);
        assert!(push.stats.segments_structural > 0);
        let naive = q.run_naive(&table).unwrap();
        assert_eq!(naive.agg, push.agg);
    }

    #[test]
    fn empty_selection_sums_to_zero() {
        let table = orders_table(CompressionPolicy::Auto);
        let q = range_query(1, 2);
        let out = q.run_pushdown(&table).unwrap();
        assert_eq!(out.agg.count, 0);
        assert_eq!(out.agg.sum, 0);
        assert_eq!(out.stats.rows_materialized, 0);
        assert_eq!(out.stats.segments_pruned, table.num_segments());
    }

    #[test]
    fn works_on_uncompressed_tables_too() {
        let table = orders_table(CompressionPolicy::None);
        let q = range_query(20_180_110, 20_180_120);
        let naive = q.run_naive(&table).unwrap();
        let push = q.run_pushdown(&table).unwrap();
        assert_eq!(naive.agg, push.agg);
    }

    #[test]
    fn unknown_columns_error() {
        let table = orders_table(CompressionPolicy::None);
        assert!(Query::new("nope", Predicate::All, "qty")
            .run_naive(&table)
            .is_err());
        assert!(Query::new("date", Predicate::All, "nope")
            .run_pushdown(&table)
            .is_err());
    }

    #[test]
    fn eq_predicate_on_single_day() {
        let table = orders_table(CompressionPolicy::Auto);
        let q = Query::new("date", Predicate::Eq(20_180_105), "qty");
        let naive = q.run_naive(&table).unwrap();
        let push = q.run_pushdown(&table).unwrap();
        assert_eq!(naive.agg, push.agg);
        assert_eq!(naive.agg.count, 100);
    }
}
