//! Run-aware sorting over compressed columns.
//!
//! Sorting is the third classic scan-shaped operator (after selection
//! and aggregation) that benefits from the paper's "no clear distinction
//! between decompression and query execution": an RLE/RPE segment's
//! *partial* decompression hands the sorter `(value, run length)` pairs,
//! so the comparison work is O(R log R) over runs rather than
//! O(n log n) over rows — the expansion back to rows is a linear write.
//! For other schemes the segment is decompressed and run-encoded first,
//! which still wins across segments whenever values repeat.

use crate::table::Table;
use crate::{Result, StoreError};
use lcdc_core::schemes::{rle, rpe};
use lcdc_core::ColumnData;

/// Execution counters for [`sort_column_compressed`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SortStats {
    /// Total rows in the column.
    pub rows: usize,
    /// Runs that entered the comparison sort (the work actually done).
    pub runs_sorted: usize,
    /// Segments whose runs came straight off the compressed form
    /// (partial decompression; no row materialisation).
    pub segments_run_aware: usize,
}

/// Baseline: materialise the column and sort rows.
pub fn sort_column_naive(table: &Table, column: &str) -> Result<ColumnData> {
    let col = table.materialize(column)?;
    let mut numeric = col.to_numeric();
    numeric.sort_unstable();
    ColumnData::from_numeric(col.dtype(), &numeric).map_err(StoreError::Core)
}

/// Run-aware sort: collect `(value, total length)` pairs — straight off
/// the compressed form for RLE/RPE segments — sort the pairs, expand.
pub fn sort_column_compressed(table: &Table, column: &str) -> Result<(ColumnData, SortStats)> {
    let dtype = table.schema().dtype_of(column)?;
    let segments = table.column_segments(column)?;
    let mut stats = SortStats::default();
    let mut runs: Vec<(i128, u64)> = Vec::new();
    for seg in &segments {
        stats.rows += seg.num_rows();
        collect_runs(seg, &mut runs, &mut stats)?;
    }
    // Sort pairs, then coalesce equal values across runs and segments.
    runs.sort_unstable_by_key(|&(v, _)| v);
    stats.runs_sorted = runs.len();
    let mut numeric: Vec<i128> = Vec::with_capacity(stats.rows);
    for &(v, len) in &runs {
        numeric.extend(std::iter::repeat_n(v, len as usize));
    }
    let out = ColumnData::from_numeric(dtype, &numeric).map_err(StoreError::Core)?;
    Ok((out, stats))
}

/// Push one segment's `(value, length)` runs, using partial
/// decompression where the scheme exposes runs directly.
fn collect_runs(
    seg: &crate::segment::Segment,
    runs: &mut Vec<(i128, u64)>,
    stats: &mut SortStats,
) -> Result<()> {
    let scheme_id = seg.compressed.scheme_id.as_str();
    if scheme_id == "rle" || scheme_id.starts_with("rle[") {
        stats.segments_run_aware += 1;
        let scheme = seg.scheme()?;
        let values = scheme.decompress_part(&seg.compressed, rle::ROLE_VALUES)?;
        let lengths = scheme.decompress_part(&seg.compressed, rle::ROLE_LENGTHS)?;
        let lengths = lengths.to_transport();
        for (i, &len) in lengths.iter().enumerate() {
            runs.push((numeric_at(&values, i)?, len));
        }
        return Ok(());
    }
    if scheme_id == "rpe" || scheme_id.starts_with("rpe[") {
        stats.segments_run_aware += 1;
        let scheme = seg.scheme()?;
        let values = scheme.decompress_part(&seg.compressed, rpe::ROLE_VALUES)?;
        let positions = scheme.decompress_part(&seg.compressed, rpe::ROLE_POSITIONS)?;
        let positions = positions.to_transport();
        let mut start = 0u64;
        for (i, &end) in positions.iter().enumerate() {
            if end < start {
                return Err(StoreError::Shape(format!(
                    "run position {end} precedes {start}"
                )));
            }
            runs.push((numeric_at(&values, i)?, end - start));
            start = end;
        }
        return Ok(());
    }
    // Generic path: decompress, run-encode the rows.
    let col = seg.decompress()?;
    let numeric = col.to_numeric();
    let mut i = 0;
    while i < numeric.len() {
        let mut j = i + 1;
        while j < numeric.len() && numeric[j] == numeric[i] {
            j += 1;
        }
        runs.push((numeric[i], (j - i) as u64));
        i = j;
    }
    Ok(())
}

fn numeric_at(col: &ColumnData, i: usize) -> Result<i128> {
    col.get_numeric(i)
        .ok_or_else(|| StoreError::Shape(format!("run value {i} out of range")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::CompressionPolicy;
    use lcdc_core::DType;

    fn runs_table(policy: CompressionPolicy) -> Table {
        // Unsorted values with heavy runs, spanning several segments.
        let col = ColumnData::I64((0..4000i64).map(|i| ((i / 40) * 7919 % 101) - 50).collect());
        let schema = crate::schema::TableSchema::new(&[("v", lcdc_core::DType::I64)]);
        Table::build(schema, &[col], &[policy], 512).unwrap()
    }

    #[test]
    fn run_aware_matches_naive_on_rle() {
        let t = runs_table(CompressionPolicy::Fixed(
            "rle[values=ns_zz,lengths=ns]".into(),
        ));
        let naive = sort_column_naive(&t, "v").unwrap();
        let (fast, stats) = sort_column_compressed(&t, "v").unwrap();
        assert_eq!(fast, naive);
        assert_eq!(stats.segments_run_aware, t.num_segments());
        assert!(stats.runs_sorted < stats.rows / 10, "{stats:?}");
    }

    #[test]
    fn run_aware_matches_naive_on_rpe() {
        let t = runs_table(CompressionPolicy::Fixed("rpe".into()));
        let naive = sort_column_naive(&t, "v").unwrap();
        let (fast, stats) = sort_column_compressed(&t, "v").unwrap();
        assert_eq!(fast, naive);
        assert!(stats.segments_run_aware > 0);
    }

    #[test]
    fn generic_path_on_for_segments() {
        let t = runs_table(CompressionPolicy::Fixed("for(l=128)[offsets=ns_zz]".into()));
        let naive = sort_column_naive(&t, "v").unwrap();
        let (fast, stats) = sort_column_compressed(&t, "v").unwrap();
        assert_eq!(fast, naive);
        assert_eq!(stats.segments_run_aware, 0);
    }

    #[test]
    fn auto_policy_mixed_segments() {
        let t = runs_table(CompressionPolicy::Auto);
        let naive = sort_column_naive(&t, "v").unwrap();
        let (fast, _) = sort_column_compressed(&t, "v").unwrap();
        assert_eq!(fast, naive);
    }

    #[test]
    fn empty_table() {
        let schema = crate::schema::TableSchema::new(&[("v", DType::U32)]);
        let t = Table::build(
            schema,
            &[ColumnData::empty(DType::U32)],
            &[CompressionPolicy::None],
            64,
        )
        .unwrap();
        let (sorted, stats) = sort_column_compressed(&t, "v").unwrap();
        assert!(sorted.is_empty());
        assert_eq!(stats.rows, 0);
    }

    #[test]
    fn missing_column_errors() {
        let t = runs_table(CompressionPolicy::None);
        assert!(sort_column_compressed(&t, "nope").is_err());
        assert!(sort_column_naive(&t, "nope").is_err());
    }
}
