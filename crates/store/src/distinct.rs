//! DISTINCT / COUNT(DISTINCT), as a thin adapter over the planner.
//!
//! Several schemes *store* the distinct structure outright: a DICT
//! segment's dictionary is its distinct set, an RLE/RPE segment's run
//! values bound it (adjacent duplicates already collapsed), a SPARSE
//! segment contributes its base plus its exception values, CONST exactly
//! one value. The planner's distinct sink collects from the right *part
//! column* wherever one exists — another dividend of the paper's
//! "compressed form = plain columns" view. These free functions keep the
//! original signatures; new code should use
//! [`crate::QueryBuilder::distinct`], which also composes with filters.

use crate::query::QueryBuilder;
use crate::table::Table;
use crate::Result;

/// Execution counters for [`distinct_compressed`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DistinctStats {
    /// Segments answered from part columns (no row materialisation).
    pub segments_structural: usize,
    /// Segments that had to decompress rows.
    pub segments_decompressed: usize,
    /// Values fed to the hash set (rows for decompressed segments, part
    /// entries for structural ones).
    pub values_hashed: usize,
}

/// Baseline: materialise the column, hash every row.
pub fn distinct_naive(table: &Table, column: &str) -> Result<Vec<i128>> {
    let result = QueryBuilder::scan(table).distinct(column).execute_naive()?;
    Ok(result.distinct().expect("distinct plan").to_vec())
}

/// Distinct values off the compressed forms, sorted ascending.
pub fn distinct_compressed(table: &Table, column: &str) -> Result<(Vec<i128>, DistinctStats)> {
    let result = QueryBuilder::scan(table).distinct(column).execute()?;
    let stats = DistinctStats {
        segments_structural: result.stats.segments_structural,
        segments_decompressed: result.stats.segments
            - result.stats.segments_pruned
            - result.stats.segments_structural,
        values_hashed: result.stats.values_processed,
    };
    Ok((result.distinct().expect("distinct plan").to_vec(), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::TableSchema;
    use crate::segment::CompressionPolicy;
    use lcdc_core::{ColumnData, DType};

    fn table(policy: &str) -> Table {
        // 40 distinct values over 8000 rows, run-heavy.
        let col = ColumnData::I64((0..8000i64).map(|i| ((i / 50) * 31 % 40) - 20).collect());
        let schema = TableSchema::new(&[("v", DType::I64)]);
        Table::build(
            schema,
            &[col],
            &[CompressionPolicy::Fixed(policy.into())],
            1024,
        )
        .unwrap()
    }

    #[test]
    fn structural_matches_naive_per_scheme() {
        for policy in [
            "dict[codes=ns]",
            "rle[values=ns_zz,lengths=ns]",
            "rpe",
            "sparse[exc_positions=ns,exc_values=ns_zz]",
        ] {
            let t = table(policy);
            let naive = distinct_naive(&t, "v").unwrap();
            let (fast, stats) = distinct_compressed(&t, "v").unwrap();
            assert_eq!(fast, naive, "{policy}");
            assert_eq!(stats.segments_decompressed, 0, "{policy}");
            assert!(
                stats.values_hashed < 8000,
                "{policy} hashed {} values",
                stats.values_hashed
            );
        }
    }

    #[test]
    fn dict_hashes_exactly_the_dictionary() {
        let t = table("dict[codes=ns]");
        let (fast, stats) = distinct_compressed(&t, "v").unwrap();
        assert_eq!(fast.len(), 40);
        // Each of the 8 segments contributes its (<=40)-entry dictionary.
        assert!(stats.values_hashed <= 8 * 40);
    }

    #[test]
    fn const_segments() {
        let col = ColumnData::U32(vec![9; 3000]);
        let schema = TableSchema::new(&[("v", DType::U32)]);
        let t = Table::build(
            schema,
            &[col],
            &[CompressionPolicy::Fixed("const".into())],
            1000,
        )
        .unwrap();
        let (fast, stats) = distinct_compressed(&t, "v").unwrap();
        assert_eq!(fast, vec![9]);
        assert_eq!(stats.values_hashed, 3); // one per segment
    }

    #[test]
    fn generic_fallback_on_for() {
        let t = table("for(l=128)[offsets=ns_zz]");
        let naive = distinct_naive(&t, "v").unwrap();
        let (fast, stats) = distinct_compressed(&t, "v").unwrap();
        assert_eq!(fast, naive);
        assert_eq!(stats.segments_structural, 0);
        assert!(stats.segments_decompressed > 0);
    }

    #[test]
    fn auto_policy_mixed() {
        let t = table("rle[values=ns_zz,lengths=ns]");
        let naive = distinct_naive(&t, "v").unwrap();
        let (fast, _) = distinct_compressed(&t, "v").unwrap();
        assert_eq!(fast, naive);
    }

    #[test]
    fn missing_column_errors() {
        let t = table("rpe");
        assert!(distinct_compressed(&t, "nope").is_err());
        assert!(distinct_naive(&t, "nope").is_err());
    }
}
