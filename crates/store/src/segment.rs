//! Compressed column segments.
//!
//! A segment is the unit of compression choice and of scan pruning: it
//! carries its compressed form, the scheme expression that produced it,
//! and a zone map (numeric min/max) — which for FOR-family schemes is
//! exactly the model metadata the paper says can "speed up selections".

use crate::{Result, StoreError};
use lcdc_core::chooser;
use lcdc_core::expr::parse_scheme;
use lcdc_core::{ColumnData, Compressed, Scheme};

/// How a table compresses its segments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressionPolicy {
    /// Leave everything plain (`id`) — the uncompressed baseline.
    None,
    /// One fixed scheme expression for every segment.
    Fixed(String),
    /// Per-segment choice by the core chooser ([`chooser::choose_best`]).
    Auto,
}

/// One compressed segment of one column.
#[derive(Debug, Clone)]
pub struct Segment {
    /// The compressed rows.
    pub compressed: Compressed,
    /// The scheme expression that produced `compressed` (parseable).
    pub expr: String,
    /// Numeric minimum over the segment (zone map).
    pub min: i128,
    /// Numeric maximum over the segment (zone map).
    pub max: i128,
}

impl Segment {
    /// Compress `rows` under `policy`.
    pub fn build(rows: &ColumnData, policy: &CompressionPolicy) -> Result<Segment> {
        let (min, max) = rows.min_max_numeric().unwrap_or((0, -1));
        let (expr, compressed) = match policy {
            CompressionPolicy::None => ("id".to_string(), parse_scheme("id")?.compress(rows)?),
            CompressionPolicy::Fixed(text) => (text.clone(), parse_scheme(text)?.compress(rows)?),
            CompressionPolicy::Auto => {
                let choice = chooser::choose_best(rows)?;
                (choice.expr, choice.compressed)
            }
        };
        Ok(Segment {
            compressed,
            expr,
            min,
            max,
        })
    }

    /// Number of rows in the segment.
    pub fn num_rows(&self) -> usize {
        self.compressed.n
    }

    /// Compressed size in bytes.
    pub fn compressed_bytes(&self) -> usize {
        self.compressed.compressed_bytes()
    }

    /// Rebuild the scheme object for this segment.
    pub fn scheme(&self) -> Result<Box<dyn Scheme>> {
        Ok(parse_scheme(&self.expr)?)
    }

    /// The base name of the segment's scheme — `"dict"` for
    /// `dict[codes=ns]`, `"for"` for `for(l=128)[offsets=ns]` — the
    /// single tag every scheme-keyed tier dispatch (predicate pushdown,
    /// code-space group-by, structural distinct) switches on.
    pub fn scheme_base(&self) -> &str {
        let id = self.compressed.scheme_id.as_str();
        id.split(['(', '[']).next().unwrap_or(id)
    }

    /// Fully decompress the segment.
    pub fn decompress(&self) -> Result<ColumnData> {
        Ok(self.scheme()?.decompress(&self.compressed)?)
    }

    /// Extract `(run values, exclusive run end positions)` from an
    /// RLE/RPE segment via partial decompression; `None` for other
    /// schemes. The single home of the RLE-family part layout — the
    /// predicate run tier, the run-weighted aggregation, and the
    /// planner's group-by sink all build on it.
    pub fn run_structure(&self) -> Result<Option<(ColumnData, Vec<u64>)>> {
        use lcdc_core::schemes::{rle, rpe};
        let scheme_id = self.compressed.scheme_id.as_str();
        if scheme_id == "rle" || scheme_id.starts_with("rle[") {
            let scheme = self.scheme()?;
            let values = scheme.decompress_part(&self.compressed, rle::ROLE_VALUES)?;
            let lengths = scheme.decompress_part(&self.compressed, rle::ROLE_LENGTHS)?;
            let ends = lcdc_colops::prefix_sum_inclusive(&lengths.to_transport());
            return Ok(Some((values, ends)));
        }
        if scheme_id == "rpe" || scheme_id.starts_with("rpe[") {
            let scheme = self.scheme()?;
            let values = scheme.decompress_part(&self.compressed, rpe::ROLE_VALUES)?;
            let positions = scheme.decompress_part(&self.compressed, rpe::ROLE_POSITIONS)?;
            return Ok(Some((values, positions.to_transport())));
        }
        Ok(None)
    }

    /// Internal consistency check used by table assembly.
    pub fn check_rows(&self, expected: usize) -> Result<()> {
        if self.num_rows() == expected {
            Ok(())
        } else {
            Err(StoreError::Shape(format!(
                "segment holds {} rows, expected {expected}",
                self.num_rows()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> ColumnData {
        ColumnData::U64((0..500u64).map(|i| 1000 + i % 40).collect())
    }

    #[test]
    fn fixed_policy_round_trips() {
        let s = Segment::build(
            &rows(),
            &CompressionPolicy::Fixed("for(l=128)[offsets=ns]".into()),
        )
        .unwrap();
        assert_eq!(s.decompress().unwrap(), rows());
        assert_eq!(s.num_rows(), 500);
        assert!(s.compressed_bytes() < rows().uncompressed_bytes());
    }

    #[test]
    fn auto_policy_picks_something_small() {
        let s = Segment::build(&rows(), &CompressionPolicy::Auto).unwrap();
        assert!(
            s.compressed_bytes() * 4 < rows().uncompressed_bytes(),
            "{}",
            s.expr
        );
        assert_eq!(s.decompress().unwrap(), rows());
    }

    #[test]
    fn none_policy_is_id() {
        let s = Segment::build(&rows(), &CompressionPolicy::None).unwrap();
        assert_eq!(s.expr, "id");
        assert_eq!(s.compressed_bytes(), rows().uncompressed_bytes());
    }

    #[test]
    fn zone_map_decides_from_min_max() {
        // The zone map lives on the segment; the decision logic is
        // predicate-shaped (`Predicate::zone_decides`).
        use crate::predicate::Predicate;
        let s = Segment::build(&rows(), &CompressionPolicy::Auto).unwrap();
        assert_eq!((s.min, s.max), (1000, 1039));
        let range = |lo, hi| Predicate::Range { lo, hi };
        assert_eq!(range(0, 999).zone_decides(s.min, s.max), Some(false));
        assert_eq!(range(1040, 99999).zone_decides(s.min, s.max), Some(false));
        assert_eq!(range(1039, 1039).zone_decides(s.min, s.max), None);
        assert_eq!(range(1000, 1039).zone_decides(s.min, s.max), Some(true));
        assert_eq!(range(1001, 1039).zone_decides(s.min, s.max), None);
    }

    #[test]
    fn bad_fixed_expression_fails() {
        assert!(Segment::build(&rows(), &CompressionPolicy::Fixed("zstd".into())).is_err());
    }

    #[test]
    fn check_rows_detects_mismatch() {
        let s = Segment::build(&rows(), &CompressionPolicy::None).unwrap();
        assert!(s.check_rows(500).is_ok());
        assert!(s.check_rows(501).is_err());
    }
}
