//! Aggregation, naive and compression-aware.
//!
//! The compression-aware paths execute *on the compressed form*:
//!
//! * RLE/RPE: `SUM = Σ value·run_length`, `MIN/MAX` over run values —
//!   one operation per run instead of per row;
//! * FOR: `SUM = Σ refs·segment_size + Σ offsets` — the reference
//!   replication and the elementwise add of Algorithm 2 are never
//!   materialised.
//!
//! Both are instances of the paper's Lessons 1: once decompression is a
//! DAG of query operators, the aggregation can be algebraically pushed
//! through it.

use crate::segment::Segment;
use crate::Result;
use lcdc_colops::Bitmap;
use lcdc_core::schemes::for_;
use lcdc_core::ColumnData;

/// Supported aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggKind {
    /// Sum of values.
    Sum,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
    /// Row count.
    Count,
}

/// An aggregate's running state / final value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AggResult {
    /// Sum (valid for `Sum`).
    pub sum: i128,
    /// Minimum (valid for `Min`; `None` over zero rows).
    pub min: Option<i128>,
    /// Maximum (valid for `Max`; `None` over zero rows).
    pub max: Option<i128>,
    /// Rows aggregated.
    pub count: usize,
}

impl AggResult {
    /// Fold one value in.
    pub fn push(&mut self, v: i128) {
        self.sum += v;
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
        self.count += 1;
    }

    /// Fold `v` in `weight` times (run-granularity path).
    pub fn push_weighted(&mut self, v: i128, weight: usize) {
        if weight == 0 {
            return;
        }
        self.sum += v * weight as i128;
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
        self.count += weight;
    }

    /// Merge another partial result in.
    pub fn merge(&mut self, other: &AggResult) {
        self.sum += other.sum;
        self.min = match (self.min, other.min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.max = match (self.max, other.max) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
        self.count += other.count;
    }
}

/// Aggregate a plain column (the naive path), optionally under a
/// selection bitmap.
pub fn aggregate_plain(col: &ColumnData, selection: Option<&Bitmap>) -> AggResult {
    let mut acc = AggResult::default();
    match selection {
        None => {
            for i in 0..col.len() {
                acc.push(col.get_numeric(i).expect("in range"));
            }
        }
        Some(bitmap) => {
            for i in bitmap.iter_ones() {
                acc.push(col.get_numeric(i).expect("in range"));
            }
        }
    }
    acc
}

/// Fold run values weighted by their lengths — the run-granularity
/// aggregation shared by [`aggregate_segment`] and the planner's
/// aggregate sink. `ends` are exclusive run end positions over `n`
/// rows, as produced by [`Segment::run_structure`].
pub fn aggregate_runs(values: &ColumnData, ends: &[u64], n: usize) -> AggResult {
    let mut acc = AggResult::default();
    let mut start = 0usize;
    for run in 0..values.len() {
        let end = (ends.get(run).copied().unwrap_or(n as u64) as usize).min(n);
        acc.push_weighted(values.get_numeric(run).expect("in range"), end - start);
        start = end;
    }
    acc
}

/// Aggregate a compressed segment without materialising it, when its
/// scheme permits; falls back to decompress-then-fold. Selections force
/// the fallback (run-selection interaction is handled a level up by
/// masking materialised columns).
pub fn aggregate_segment(segment: &Segment, selection: Option<&Bitmap>) -> Result<AggResult> {
    if let Some(bitmap) = selection {
        return Ok(aggregate_plain(&segment.decompress()?, Some(bitmap)));
    }
    if let Some((values, ends)) = segment.run_structure()? {
        return Ok(aggregate_runs(&values, &ends, segment.num_rows()));
    }
    let scheme_id = segment.compressed.scheme_id.as_str();
    if scheme_id.starts_with("for(") {
        // SUM distributes over Algorithm 2's final Elementwise(+):
        // sum = Σ_seg refs[seg]·|seg| + Σ offsets. MIN/MAX need the
        // per-segment offset extrema; computed on the offsets part alone.
        let scheme = segment.scheme()?;
        let seg_len = segment.compressed.params.require("l")? as usize;
        let refs = scheme.decompress_part(&segment.compressed, for_::ROLE_REFS)?;
        let offsets = scheme.decompress_part(&segment.compressed, for_::ROLE_OFFSETS)?;
        let n = segment.num_rows();
        let mut acc = AggResult::default();
        for seg in 0..refs.len() {
            let base = refs.get_numeric(seg).expect("in range");
            let lo = seg * seg_len;
            let hi = ((seg + 1) * seg_len).min(n);
            let mut seg_min = i128::MAX;
            let mut seg_max = i128::MIN;
            let mut seg_sum = 0i128;
            for i in lo..hi {
                let off = offsets.get_numeric(i).expect("in range");
                seg_sum += off;
                seg_min = seg_min.min(off);
                seg_max = seg_max.max(off);
            }
            if hi > lo {
                acc.sum += base * (hi - lo) as i128 + seg_sum;
                acc.min = Some(acc.min.map_or(base + seg_min, |m| m.min(base + seg_min)));
                acc.max = Some(acc.max.map_or(base + seg_max, |m| m.max(base + seg_max)));
                acc.count += hi - lo;
            }
        }
        return Ok(acc);
    }
    Ok(aggregate_plain(&segment.decompress()?, None))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::CompressionPolicy;

    fn check_against_plain(col: ColumnData, expr: &str) {
        let segment = Segment::build(&col, &CompressionPolicy::Fixed(expr.to_string())).unwrap();
        let fast = aggregate_segment(&segment, None).unwrap();
        let naive = aggregate_plain(&col, None);
        assert_eq!(fast, naive, "{expr}");
    }

    #[test]
    fn rle_aggregation_matches() {
        check_against_plain(
            ColumnData::U64(vec![7, 7, 7, 9, 9, 4, 4, 4, 4, 2]),
            "rle[values=ns,lengths=ns]",
        );
    }

    #[test]
    fn rpe_aggregation_matches() {
        check_against_plain(
            ColumnData::I64(vec![-7, -7, 9, 9, 9, -4]),
            "rpe[values=id,positions=ns]",
        );
    }

    #[test]
    fn for_aggregation_matches() {
        check_against_plain(
            ColumnData::U64((0..500u64).map(|i| 1000 * (i / 128) + i % 17).collect()),
            "for(l=128)[offsets=ns]",
        );
    }

    #[test]
    fn fallback_matches() {
        check_against_plain(ColumnData::U32((0..100).collect()), "ns");
    }

    #[test]
    fn selection_masks_rows() {
        let col = ColumnData::U64(vec![10, 20, 30, 40]);
        let segment = Segment::build(&col, &CompressionPolicy::None).unwrap();
        let mask = Bitmap::from_bools(&[true, false, false, true]);
        let r = aggregate_segment(&segment, Some(&mask)).unwrap();
        assert_eq!(r.sum, 50);
        assert_eq!(r.count, 2);
        assert_eq!(r.min, Some(10));
        assert_eq!(r.max, Some(40));
    }

    #[test]
    fn empty_aggregate() {
        let r = aggregate_plain(&ColumnData::U32(vec![]), None);
        assert_eq!(r.count, 0);
        assert_eq!(r.min, None);
        assert_eq!(r.sum, 0);
    }

    #[test]
    fn merge_partials() {
        let mut a = AggResult::default();
        a.push(5);
        let mut b = AggResult::default();
        b.push(-3);
        b.push(10);
        a.merge(&b);
        assert_eq!(a.sum, 12);
        assert_eq!(a.min, Some(-3));
        assert_eq!(a.max, Some(10));
        assert_eq!(a.count, 3);
    }

    #[test]
    fn weighted_push_zero_weight_is_noop() {
        let mut a = AggResult::default();
        a.push_weighted(100, 0);
        assert_eq!(a, AggResult::default());
    }
}
