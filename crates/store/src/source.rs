//! Segment sources: where a column's segments live and how they are
//! fetched.
//!
//! The planner never holds a `&[Segment]` anymore — it plans against
//! [`SegmentMeta`] (zone map, row count, scheme tag: everything a
//! pushdown-tier decision needs, resident by construction) and fetches
//! payloads one segment at a time through [`SegmentSource::segment`]
//! only when a tier actually has to touch bytes. That seam is what lets
//! one physical plan run unchanged over:
//!
//! * [`ResidentSource`] — today's fully in-memory segments;
//! * [`FileSource`] — lazy per-segment loads from the on-disk column
//!   file (see [`crate::file`]), behind a small LRU cache, so a
//!   zone-map-pruned segment's frame is *never read from disk*.
//!
//! Sources are `Send + Sync`: the parallel executor shares one source
//! across workers, and the LRU cache takes an internal lock only on the
//! fetch path. Fetches are *single-flight* — concurrent misses on one
//! frame coalesce into one read — which lets the executor's background
//! prefetcher ([`SegmentSource::prefetch`]) warm the cache ahead of the
//! scan without ever duplicating I/O.

use crate::fault::FaultPlan;
use crate::segment::Segment;
use crate::{Result, StoreError};
use lcdc_core::DType;
use std::collections::HashSet;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Per-segment metadata the planner can consult without loading the
/// segment payload: the zone map, the row count, the compressed size,
/// and the scheme expression that produced the frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentMeta {
    /// Rows in the segment.
    pub rows: usize,
    /// Numeric minimum over the segment (zone map).
    pub min: i128,
    /// Numeric maximum over the segment (zone map).
    pub max: i128,
    /// Compressed payload size in bytes.
    pub bytes: usize,
    /// The scheme expression the segment was compressed under.
    pub expr: String,
}

impl SegmentMeta {
    /// Metadata of an in-memory segment.
    pub fn of(segment: &Segment) -> SegmentMeta {
        SegmentMeta {
            rows: segment.num_rows(),
            min: segment.min,
            max: segment.max,
            bytes: segment.compressed_bytes(),
            expr: segment.expr.clone(),
        }
    }
}

/// One column's segments, wherever they live.
///
/// Metadata access is always cheap and in-memory; [`Self::segment`] is
/// the only call that may touch the backing store.
pub trait SegmentSource: std::fmt::Debug + Send + Sync {
    /// Number of segments.
    fn num_segments(&self) -> usize;

    /// Planner-visible metadata of one segment (no payload access).
    fn meta(&self, idx: usize) -> &SegmentMeta;

    /// The segment payload, fetched (and possibly cached) on demand.
    fn segment(&self, idx: usize) -> Result<Arc<Segment>>;

    /// Payload fetches that actually hit the backing store so far — 0
    /// forever for resident sources, cache *misses* for lazy ones.
    fn io_reads(&self) -> usize {
        0
    }

    /// Hint that `idx` will be fetched soon: warm whatever cache the
    /// source keeps. Returns `true` only when the hint did real work
    /// (the frame was fetched from the backing store by this call).
    /// Best-effort — I/O errors are swallowed here and resurface on the
    /// real [`SegmentSource::segment`] fetch. The default (resident
    /// sources) is a no-op.
    fn prefetch(&self, _idx: usize) -> bool {
        false
    }

    /// Drain the `(prefetch hits, prefetch wasted)` counters accumulated
    /// since the last drain: hits are fetches served from a frame a
    /// [`SegmentSource::prefetch`] call loaded, wasted are frames
    /// prefetch loaded that no fetch ever consumed — whether they were
    /// evicted before the scan reached them (counted once per frame at
    /// eviction, however many times the frame is re-warmed) or simply
    /// left warm and untouched at the end. The executor drains once per
    /// query, once per distinct source; concurrent queries over one
    /// source share the counters (they describe the source, not a
    /// single plan).
    fn take_prefetch_counters(&self) -> (usize, usize) {
        (0, 0)
    }

    /// A non-draining view of the prefetch ledger since the last drain:
    /// `(hits so far, frames evicted before use so far)`. The adaptive
    /// prefetcher samples this mid-query to tune its depth — unlike
    /// [`SegmentSource::take_prefetch_counters`], frames still warm in
    /// the cache are *not* counted wasted here, because the scan may
    /// yet consume them.
    fn prefetch_ledger(&self) -> (usize, usize) {
        (0, 0)
    }

    /// How many decoded segments this source can keep resident at once,
    /// or `None` when fetches are free (fully resident sources). The
    /// executor clamps its prefetch window *below* this bound so the
    /// prefetcher can never evict a frame before the scan consumes it
    /// (see [`crate::ExecOptions::prefetch`]).
    fn cache_capacity(&self) -> Option<usize> {
        None
    }

    /// Arm a [`FaultPlan`] on this source: subsequent backing-store
    /// reads run through the plan's `io_read`/`io_stall` rules. The
    /// default is a no-op — resident sources never touch a backing
    /// store, so there is nothing to fail.
    fn inject_faults(&self, _plan: &Arc<FaultPlan>) {}
}

/// All segments held in memory — the source behind [`crate::Table::build`].
#[derive(Debug)]
pub struct ResidentSource {
    segments: Vec<Arc<Segment>>,
    metas: Vec<SegmentMeta>,
}

impl ResidentSource {
    /// Wrap already-compressed in-memory segments.
    pub fn new(segments: Vec<Segment>) -> ResidentSource {
        ResidentSource::from_arcs(segments.into_iter().map(Arc::new).collect())
    }

    /// Wrap shared segment handles without copying payloads — the
    /// zero-copy path [`crate::catalog::shard_table`] uses to split a
    /// table along segment boundaries.
    pub fn from_arcs(segments: Vec<Arc<Segment>>) -> ResidentSource {
        let metas = segments.iter().map(|s| SegmentMeta::of(s)).collect();
        ResidentSource { segments, metas }
    }
}

impl SegmentSource for ResidentSource {
    fn num_segments(&self) -> usize {
        self.segments.len()
    }

    fn meta(&self, idx: usize) -> &SegmentMeta {
        &self.metas[idx]
    }

    fn segment(&self, idx: usize) -> Result<Arc<Segment>> {
        Ok(Arc::clone(&self.segments[idx]))
    }
}

/// Where one segment's record sits inside its column file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameLocation {
    /// Byte offset of the record (header + frame) in the column file.
    pub offset: u64,
    /// Total record length in bytes.
    pub len: u64,
}

/// Lazily loads segments from a `.col` file written by
/// [`crate::file::save_table`], one frame per request, behind a small
/// LRU cache. Zone maps and scheme tags come from the table manifest,
/// so planning never touches the file.
pub struct FileSource {
    path: PathBuf,
    column: String,
    dtype: DType,
    metas: Vec<SegmentMeta>,
    locations: Vec<FrameLocation>,
    cache_capacity: usize,
    cache: Mutex<LruCache<usize, Arc<Segment>>>,
    /// Opened on the first fetch, then reused — cache misses pay a
    /// positioned read, not an open+seek+read+close cycle. Unix-only:
    /// other targets lack positioned reads and reopen per miss.
    #[cfg(unix)]
    handle: Mutex<Option<Arc<fs::File>>>,
    io_reads: AtomicUsize,
    /// Single-flight guard: frame indices currently being loaded.
    /// Fetchers of an in-flight frame wait on the condvar instead of
    /// issuing a duplicate read — that keeps `io_reads` identical with
    /// and without a prefetcher racing the scan.
    inflight: Mutex<HashSet<usize>>,
    loaded: Condvar,
    /// Frames loaded by [`SegmentSource::prefetch`] and not yet consumed
    /// by a fetch; drained by `take_prefetch_counters`.
    prefetched: Mutex<HashSet<usize>>,
    /// Frames a prefetch warmed that the cache evicted *before* any
    /// fetch consumed them — the definitive waste. A set, not a
    /// counter: a frame re-warmed after such an eviction (a retry) and
    /// evicted again still counts one wasted frame, and a retry that
    /// finally gets consumed keeps its one recorded eviction (the read
    /// it wasted really happened) alongside its hit.
    wasted: Mutex<HashSet<usize>>,
    prefetch_hits: AtomicUsize,
    /// Armed once (before serving) by [`SegmentSource::inject_faults`];
    /// the read path pays one pointer load when no plan is set.
    faults: OnceLock<Arc<FaultPlan>>,
}

impl std::fmt::Debug for FileSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileSource")
            .field("path", &self.path)
            .field("column", &self.column)
            .field("segments", &self.metas.len())
            .field("io_reads", &self.io_reads())
            .finish()
    }
}

impl FileSource {
    /// A lazy source over one persisted column. `metas` and `locations`
    /// come from the table manifest; `cache_capacity` bounds how many
    /// decoded segments stay resident (minimum 1).
    pub fn new(
        path: PathBuf,
        column: &str,
        dtype: DType,
        metas: Vec<SegmentMeta>,
        locations: Vec<FrameLocation>,
        cache_capacity: usize,
    ) -> Result<FileSource> {
        if metas.len() != locations.len() {
            return Err(StoreError::Shape(format!(
                "column {column}: {} segment metas, {} frame locations",
                metas.len(),
                locations.len()
            )));
        }
        // Every frame must fit the file — checked up front with
        // overflow-safe arithmetic, so no later fetch can attempt a
        // manifest-length-sized allocation past the file's end.
        let file_len = fs::metadata(&path)?.len();
        for (idx, loc) in locations.iter().enumerate() {
            if loc
                .offset
                .checked_add(loc.len)
                .is_none_or(|end| end > file_len)
            {
                return Err(StoreError::CorruptFile(format!(
                    "{column}: segment {idx} extends past end of file"
                )));
            }
        }
        Ok(FileSource {
            path,
            column: column.to_string(),
            dtype,
            metas,
            locations,
            cache_capacity: cache_capacity.max(1),
            cache: Mutex::new(LruCache::new(cache_capacity.max(1))),
            #[cfg(unix)]
            handle: Mutex::new(None),
            io_reads: AtomicUsize::new(0),
            inflight: Mutex::new(HashSet::new()),
            loaded: Condvar::new(),
            prefetched: Mutex::new(HashSet::new()),
            wasted: Mutex::new(HashSet::new()),
            prefetch_hits: AtomicUsize::new(0),
            faults: OnceLock::new(),
        })
    }

    /// Serve `idx` from the cache if present, counting a prefetch hit
    /// when the cached frame came from a prefetch and was not yet
    /// consumed. Consuming a *prefetched* frame deliberately does not
    /// bump its recency: warmed frames then age out of the cache in
    /// warm order, consumed-first — if the hit bumped instead, a few
    /// consumed frames would sit at the recent end and the next
    /// eviction would take the oldest *unconsumed* warmed frame, the
    /// exact one the scan needs next. Scan-initiated fetches (never
    /// warmed) keep normal LRU recency.
    fn cached(&self, idx: usize) -> Option<Arc<Segment>> {
        // The cache guard drops at the end of each statement: the
        // prefetched lock is never taken while holding it (the load
        // path acquires them in the opposite order).
        let hit = self.cache.lock().expect("cache lock").peek(&idx)?;
        if self
            .prefetched
            .lock()
            .expect("prefetched lock")
            .remove(&idx)
        {
            // ordering: statistics counter; drained via swap and read
            // after the consuming scan joined its workers.
            self.prefetch_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            // lint: allow(locks) — the cache guard from the probe above
            // was already dropped; this is a sequential re-acquisition
            // for the LRU touch, never nested inside `prefetched`.
            self.cache.lock().expect("cache lock").touch(&idx);
        }
        Some(hit)
    }

    /// Release the single-flight claim on `idx` and wake waiters.
    fn release(&self, idx: usize) {
        self.inflight.lock().expect("inflight lock").remove(&idx);
        self.loaded.notify_all();
    }

    /// Load `idx` under a held single-flight claim, publishing to the
    /// cache on success. Always releases the claim. With
    /// `mark_prefetched`, the frame joins the `prefetched` set *before*
    /// it becomes visible in the cache — a concurrent fetch can never
    /// observe the frame without its mark, so the hits/wasted ledger
    /// stays exact even when prefetch and scan race on one frame.
    fn load_claimed(&self, idx: usize, mark_prefetched: bool) -> Result<Arc<Segment>> {
        let result = self.load(idx);
        let out = match result {
            Ok(segment) => {
                let loaded = Arc::new(segment);
                // ordering: statistics counter, read by tests after the
                // loading threads are joined.
                self.io_reads.fetch_add(1, Ordering::Relaxed);
                if mark_prefetched {
                    self.prefetched.lock().expect("prefetched lock").insert(idx);
                }
                // The mark-then-publish sequence is deliberate (see the
                // doc comment); the prefetched guard is already dropped,
                // so the two locks never nest.
                let evicted = self
                    .cache
                    .lock() // lint: allow(locks) — sequential after prefetched, never nested
                    .expect("cache lock")
                    .put(idx, Arc::clone(&loaded));
                // A warmed frame pushed out before any fetch consumed
                // it is waste, settled here at eviction time — once per
                // frame, no matter how many retries re-warm it. (The
                // cache guard is already released; lock order stays
                // cache → prefetched → wasted everywhere.)
                if let Some((evicted_idx, _)) = evicted {
                    if self
                        .prefetched
                        .lock()
                        .expect("prefetched lock")
                        .remove(&evicted_idx)
                    {
                        self.wasted.lock().expect("wasted lock").insert(evicted_idx);
                    }
                }
                Ok(loaded)
            }
            Err(e) => Err(e),
        };
        self.release(idx);
        out
    }

    /// The shared column-file handle, opened on first use.
    #[cfg(unix)]
    fn file(&self) -> Result<Arc<fs::File>> {
        let mut guard = self.handle.lock().expect("handle lock");
        if let Some(file) = &*guard {
            return Ok(Arc::clone(file));
        }
        let file = Arc::new(fs::File::open(&self.path)?);
        *guard = Some(Arc::clone(&file));
        Ok(file)
    }

    /// Read one frame's record bytes. Positioned reads on Unix keep
    /// concurrent misses seek-free on one shared handle; elsewhere each
    /// read reopens and seeks. Only a short read is reported as
    /// truncation — transient I/O failures stay `StoreError::Io`.
    fn read_record(&self, idx: usize, loc: FrameLocation) -> Result<Vec<u8>> {
        // The chaos seam: an armed plan may stall this read or fail it
        // with a typed injected error before any bytes move.
        if let Some(plan) = self.faults.get() {
            plan.on_io_read(&self.column)?;
        }
        let mut record = vec![0u8; loc.len as usize];
        let read_failed = |e: std::io::Error| {
            if e.kind() == std::io::ErrorKind::UnexpectedEof {
                StoreError::CorruptFile(format!(
                    "{}: segment {idx} truncated (wanted {} bytes at offset {})",
                    self.column, loc.len, loc.offset
                ))
            } else {
                StoreError::Io(e)
            }
        };
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            self.file()?
                .read_exact_at(&mut record, loc.offset)
                .map_err(read_failed)?;
        }
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let mut file = fs::File::open(&self.path)?;
            file.seek(SeekFrom::Start(loc.offset))?;
            file.read_exact(&mut record).map_err(read_failed)?;
        }
        Ok(record)
    }

    /// Read and decode one frame from disk, verifying its checksum and
    /// dtype against the schema.
    fn load(&self, idx: usize) -> Result<Segment> {
        let loc = self.locations[idx];
        let record = self.read_record(idx, loc)?;
        let segment = crate::file::decode_segment_record(&record, &self.column)?;
        if segment.compressed.dtype != self.dtype {
            return Err(StoreError::Shape(format!(
                "column {} segment {idx} is {:?}, schema says {:?}",
                self.column, segment.compressed.dtype, self.dtype
            )));
        }
        let meta = &self.metas[idx];
        if segment.num_rows() != meta.rows {
            return Err(StoreError::CorruptFile(format!(
                "column {} segment {idx} holds {} rows, manifest says {}",
                self.column,
                segment.num_rows(),
                meta.rows
            )));
        }
        // The planner already pruned on the manifest's zone map; if the
        // frame header disagrees, one of the two is corrupt — refuse
        // rather than mix inconsistent metadata into one answer.
        if (segment.min, segment.max) != (meta.min, meta.max) || segment.expr != meta.expr {
            return Err(StoreError::CorruptFile(format!(
                "column {} segment {idx}: frame metadata disagrees with manifest",
                self.column
            )));
        }
        Ok(segment)
    }
}

impl SegmentSource for FileSource {
    fn num_segments(&self) -> usize {
        self.metas.len()
    }

    fn meta(&self, idx: usize) -> &SegmentMeta {
        &self.metas[idx]
    }

    fn segment(&self, idx: usize) -> Result<Arc<Segment>> {
        loop {
            if let Some(hit) = self.cached(idx) {
                return Ok(hit);
            }
            // Miss: either claim the load or wait for whoever holds it
            // (I/O happens outside every lock; waiters re-check the
            // cache on wake, so a loader's failure just hands the claim
            // to the next fetcher).
            let mut inflight = self.inflight.lock().expect("inflight lock");
            if inflight.insert(idx) {
                drop(inflight);
                // Re-probe before reading: the previous claim holder
                // may have published the frame between our cache miss
                // and winning this claim — loading again would break
                // the one-read-per-frame invariant.
                if let Some(hit) = self.cached(idx) {
                    self.release(idx);
                    return Ok(hit);
                }
                return self.load_claimed(idx, false);
            }
            let _waited = self.loaded.wait(inflight).expect("inflight lock poisoned");
        }
    }

    fn io_reads(&self) -> usize {
        // ordering: statistics read; callers only compare totals after
        // the threads that loaded have been joined.
        self.io_reads.load(Ordering::Relaxed)
    }

    fn prefetch(&self, idx: usize) -> bool {
        if idx >= self.metas.len() || self.cache.lock().expect("cache lock").contains(&idx) {
            return false;
        }
        {
            let mut inflight = self.inflight.lock().expect("inflight lock");
            if !inflight.insert(idx) {
                // Someone (the scan, most likely) is already loading it;
                // adding a second read would defeat the overlap.
                return false;
            }
        }
        // Re-probe before reading (same race as in `segment`): a claim
        // holder may have published the frame since the probe above.
        // lint: allow(locks) — the inflight guard was dropped at the
        // end of the claim block; cache is re-probed sequentially, not
        // nested under inflight.
        if self.cache.lock().expect("cache lock").contains(&idx) {
            self.release(idx);
            return false;
        }
        // The prefetched mark is set by `load_claimed` before the frame
        // is published, so even a fetch racing this load counts as a
        // hit, never as waste. A failed load warms nothing and stays
        // silent — the scan's own fetch will surface the error.
        self.load_claimed(idx, true).is_ok()
    }

    fn take_prefetch_counters(&self) -> (usize, usize) {
        // ordering: drain of a statistics counter; exactness per frame
        // comes from the prefetched-mark protocol, not the atomic.
        let hits = self.prefetch_hits.swap(0, Ordering::Relaxed);
        // Wasted = frames evicted before use plus frames still warm and
        // never consumed, as a *union*: a frame evicted, re-warmed, and
        // left pending is one wasted frame, not two. Locks are taken
        // one at a time, never nested.
        let mut union: HashSet<usize> = self
            .prefetched
            .lock()
            .expect("prefetched lock")
            .drain()
            .collect();
        union.extend(self.wasted.lock().expect("wasted lock").drain());
        (hits, union.len())
    }

    fn prefetch_ledger(&self) -> (usize, usize) {
        (
            // ordering: advisory sample for the prefetcher's
            // self-tuning loop; staleness only delays a depth change.
            self.prefetch_hits.load(Ordering::Relaxed),
            self.wasted.lock().expect("wasted lock").len(),
        )
    }

    fn cache_capacity(&self) -> Option<usize> {
        Some(self.cache_capacity)
    }

    fn inject_faults(&self, plan: &Arc<FaultPlan>) {
        // First plan wins; re-arming is a startup-configuration error,
        // not a runtime hazard, so it is simply ignored.
        let _ = self.faults.set(Arc::clone(plan));
    }
}

/// An existing source's segments followed by appended resident
/// segments — the zero-rewrite append path behind
/// [`crate::Table::append`]. The base keeps whatever backend it had
/// (a lazily-backed column stays lazy; only the appended tail is
/// resident), and repeated appends nest: each one wraps the previous
/// table's source, so no segment payload is ever copied or re-encoded.
#[derive(Debug)]
pub struct ChainedSource {
    base: Arc<dyn SegmentSource>,
    tail: ResidentSource,
}

impl ChainedSource {
    /// Chain `tail` segments after every segment of `base`.
    pub fn new(base: Arc<dyn SegmentSource>, tail: Vec<Segment>) -> ChainedSource {
        ChainedSource {
            base,
            tail: ResidentSource::new(tail),
        }
    }
}

impl SegmentSource for ChainedSource {
    fn num_segments(&self) -> usize {
        self.base.num_segments() + self.tail.num_segments()
    }

    fn meta(&self, idx: usize) -> &SegmentMeta {
        let n = self.base.num_segments();
        if idx < n {
            self.base.meta(idx)
        } else {
            self.tail.meta(idx - n)
        }
    }

    fn segment(&self, idx: usize) -> Result<Arc<Segment>> {
        let n = self.base.num_segments();
        if idx < n {
            self.base.segment(idx)
        } else {
            self.tail.segment(idx - n)
        }
    }

    fn io_reads(&self) -> usize {
        self.base.io_reads()
    }

    fn prefetch(&self, idx: usize) -> bool {
        idx < self.base.num_segments() && self.base.prefetch(idx)
    }

    fn take_prefetch_counters(&self) -> (usize, usize) {
        self.base.take_prefetch_counters()
    }

    fn prefetch_ledger(&self) -> (usize, usize) {
        self.base.prefetch_ledger()
    }

    fn cache_capacity(&self) -> Option<usize> {
        self.base.cache_capacity()
    }

    fn inject_faults(&self, plan: &Arc<FaultPlan>) {
        // Only the base can touch a backing store; the resident tail
        // has no reads to fail.
        self.base.inject_faults(plan);
    }
}

/// Tiny exact LRU over `(key, value)` pairs — most-recently-used at
/// the back. Capacities are small (tens to hundreds), so a `Vec` scan
/// beats a linked hash map. Shared by the per-column segment cache
/// (`usize -> Arc<Segment>`) and the catalog's result cache.
#[derive(Debug)]
pub(crate) struct LruCache<K: PartialEq, V: Clone> {
    capacity: usize,
    entries: Vec<(K, V)>,
}

impl<K: PartialEq, V: Clone> LruCache<K, V> {
    /// An empty cache holding at most `capacity` entries (0 caches
    /// nothing).
    pub(crate) fn new(capacity: usize) -> LruCache<K, V> {
        LruCache {
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Whether `key` is cached, *without* touching recency — probe used
    /// by the prefetcher, which must not distort the scan's LRU order.
    pub(crate) fn contains(&self, key: &K) -> bool {
        self.entries.iter().any(|(k, _)| k == key)
    }

    /// The cached value for `key`, if any, *without* touching recency.
    pub(crate) fn peek(&self, key: &K) -> Option<V> {
        self.entries
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.clone())
    }

    /// Mark `key` most recent if present (the bump half of
    /// [`Self::get`], for callers that decided on a [`Self::peek`]).
    pub(crate) fn touch(&mut self, key: &K) {
        if let Some(pos) = self.entries.iter().position(|(k, _)| k == key) {
            let entry = self.entries.remove(pos);
            self.entries.push(entry);
        }
    }

    /// The cached value for `key`, if any, marking it most recent.
    pub(crate) fn get(&mut self, key: &K) -> Option<V> {
        let pos = self.entries.iter().position(|(k, _)| k == key)?;
        let entry = self.entries.remove(pos);
        let value = entry.1.clone();
        self.entries.push(entry);
        Some(value)
    }

    /// Insert (or refresh) `key`, evicting the least recent entry at
    /// capacity. Returns the entry evicted to make room (`None` when
    /// there was room, when the put only refreshed an existing key, or
    /// when a zero-capacity cache dropped the insert outright) so the
    /// segment cache can move the victim's prefetch mark to the wasted
    /// ledger. Note the `None`-on-refresh case: byte-budget accounting
    /// cannot be settled from this return alone (a same-key replacement
    /// swaps payloads invisibly), which is why the result cache recounts
    /// via [`Self::values`] / evicts via [`Self::pop_lru`] instead.
    pub(crate) fn put(&mut self, key: K, value: V) -> Option<(K, V)> {
        if self.capacity == 0 {
            return None;
        }
        let mut evicted = None;
        if let Some(pos) = self.entries.iter().position(|(k, _)| k == &key) {
            self.entries.remove(pos);
        } else if self.entries.len() == self.capacity {
            evicted = Some(self.entries.remove(0));
        }
        self.entries.push((key, value));
        evicted
    }

    /// Iterate the cached values, least recent first (byte-budget
    /// recounts in the result cache).
    pub(crate) fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Drop and return the least recent entry, if any (byte-budget
    /// eviction in the result cache).
    pub(crate) fn pop_lru(&mut self) -> Option<(K, V)> {
        if self.entries.is_empty() {
            None
        } else {
            Some(self.entries.remove(0))
        }
    }

    /// Drop every entry whose key fails `keep`.
    pub(crate) fn retain(&mut self, keep: impl Fn(&K) -> bool) {
        self.entries.retain(|(k, _)| keep(k));
    }

    /// Remove one entry, if present.
    pub(crate) fn remove(&mut self, key: &K) {
        self.entries.retain(|(k, _)| k != key);
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::CompressionPolicy;
    use lcdc_core::ColumnData;

    fn segments() -> Vec<Segment> {
        (0..4)
            .map(|s| {
                let col = ColumnData::U64((0..100u64).map(|i| s * 1000 + i).collect());
                Segment::build(&col, &CompressionPolicy::Auto).unwrap()
            })
            .collect()
    }

    #[test]
    fn resident_source_round_trips() {
        let segs = segments();
        let want: Vec<ColumnData> = segs.iter().map(|s| s.decompress().unwrap()).collect();
        let src = ResidentSource::new(segs);
        assert_eq!(src.num_segments(), 4);
        assert_eq!(src.io_reads(), 0);
        for (i, plain) in want.iter().enumerate() {
            assert_eq!(src.meta(i).rows, 100);
            assert_eq!(src.meta(i).min, i as i128 * 1000);
            assert_eq!(&src.segment(i).unwrap().decompress().unwrap(), plain);
        }
        assert_eq!(src.io_reads(), 0, "resident fetches are never I/O");
    }

    #[test]
    fn meta_of_mirrors_segment() {
        let col = ColumnData::U64(vec![5, 9, 7, 6]);
        let seg = Segment::build(&col, &CompressionPolicy::Auto).unwrap();
        let m = SegmentMeta::of(&seg);
        assert_eq!(m.rows, 4);
        assert_eq!((m.min, m.max), (5, 9));
        assert_eq!(m.bytes, seg.compressed_bytes());
        assert_eq!(m.expr, seg.expr);
    }

    #[test]
    fn prefetch_warms_hits_and_counts_waste() {
        let dir = std::env::temp_dir().join(format!("lcdc_src_prefetch_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let schema = crate::schema::TableSchema::new(&[("v", lcdc_core::DType::U64)]);
        let v = ColumnData::U64((0..1000u64).collect());
        let table =
            crate::table::Table::build(schema, &[v], &[CompressionPolicy::Auto], 100).unwrap();
        crate::file::save_table(&table, &dir).unwrap();
        let lazy = crate::file::open_table_lazy(&dir, 8).unwrap();
        let source = lazy.source("v").unwrap();

        // Prefetch two frames: both are real reads.
        assert!(source.prefetch(0));
        assert!(source.prefetch(1));
        assert!(!source.prefetch(1), "already cached: no second read");
        assert!(!source.prefetch(99), "out of range is a no-op");
        assert_eq!(source.io_reads(), 2);

        // Consuming one is a hit; fetching an unprefetched frame is not.
        source.segment(0).unwrap();
        source.segment(5).unwrap();
        assert_eq!(source.io_reads(), 3, "frame 0 came from the cache");
        let (hits, wasted) = source.take_prefetch_counters();
        assert_eq!((hits, wasted), (1, 1), "frame 1 was warmed for nothing");
        // Drained: the next drain starts from zero.
        assert_eq!(source.take_prefetch_counters(), (0, 0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn evicted_before_use_is_wasted_once_even_across_retries() {
        let dir = std::env::temp_dir().join(format!("lcdc_src_evict_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let schema = crate::schema::TableSchema::new(&[("v", lcdc_core::DType::U64)]);
        let v = ColumnData::U64((0..1000u64).collect());
        let table =
            crate::table::Table::build(schema, &[v], &[CompressionPolicy::Auto], 100).unwrap();
        crate::file::save_table(&table, &dir).unwrap();
        // Two-frame cache: the third warm evicts the first.
        let lazy = crate::file::open_table_lazy(&dir, 2).unwrap();
        let source = lazy.source("v").unwrap();

        assert!(source.prefetch(0));
        assert!(source.prefetch(1));
        assert!(source.prefetch(2), "evicts frame 0 before any use");
        assert_eq!(source.prefetch_ledger(), (0, 1), "one eviction so far");
        // Retry frame 0 (evicts 1), then actually consume it: the
        // retry's read is a hit, the first read stays exactly one
        // recorded waste — not zero (the eviction happened), not two.
        assert!(source.prefetch(0));
        source.segment(0).unwrap();
        assert_eq!(
            source.prefetch_ledger(),
            (1, 2),
            "frames 0 and 1 each evicted once"
        );
        let (hits, wasted) = source.take_prefetch_counters();
        assert_eq!(hits, 1);
        // Wasted union: {0, 1} evicted-before-use + {2} warmed and never
        // consumed; frame 0's hit does not erase its wasted first read.
        assert_eq!(wasted, 3);
        assert_eq!(source.take_prefetch_counters(), (0, 0), "drained");
        assert_eq!(source.prefetch_ledger(), (0, 0), "ledger drained too");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resident_prefetch_is_a_no_op() {
        let src = ResidentSource::new(segments());
        assert!(!src.prefetch(0));
        assert_eq!(src.take_prefetch_counters(), (0, 0));
    }

    #[test]
    fn chained_source_splices_base_and_tail() {
        let dir = std::env::temp_dir().join(format!("lcdc_src_chain_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let schema = crate::schema::TableSchema::new(&[("v", lcdc_core::DType::U64)]);
        let v = ColumnData::U64((0..400u64).collect());
        let table =
            crate::table::Table::build(schema, &[v], &[CompressionPolicy::Auto], 100).unwrap();
        crate::file::save_table(&table, &dir).unwrap();
        let lazy = crate::file::open_table_lazy(&dir, 2).unwrap();
        // Appending to a lazy table chains a resident tail after the
        // FileSource base.
        let grown = lazy.append(&[ColumnData::U64(vec![400, 401])]).unwrap();
        let chained = grown.source("v").unwrap();
        assert_eq!(chained.num_segments(), 5);
        assert_eq!(chained.meta(4).rows, 2);
        assert_eq!((chained.meta(4).min, chained.meta(4).max), (400, 401));
        // Base fetches go through the lazy file source and count I/O...
        assert_eq!(chained.io_reads(), 0);
        assert_eq!(
            chained.segment(0).unwrap().decompress().unwrap(),
            ColumnData::U64((0..100).collect())
        );
        assert_eq!(chained.io_reads(), 1);
        // ...tail fetches are resident and free.
        assert_eq!(
            chained.segment(4).unwrap().decompress().unwrap(),
            ColumnData::U64(vec![400, 401])
        );
        assert_eq!(chained.io_reads(), 1);
        // Prefetch routes to the base only; capacity is the base's.
        assert!(!chained.prefetch(4), "resident tail: nothing to warm");
        assert!(chained.prefetch(1));
        assert_eq!(chained.cache_capacity(), Some(2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lru_evicts_least_recent() {
        let segs = segments();
        let arcs: Vec<Arc<Segment>> = segs.into_iter().map(Arc::new).collect();
        let mut lru = LruCache::new(2);
        lru.put(0usize, Arc::clone(&arcs[0]));
        lru.put(1, Arc::clone(&arcs[1]));
        assert!(lru.get(&0).is_some()); // 0 now most recent
        lru.put(2, Arc::clone(&arcs[2])); // evicts 1
        assert!(lru.get(&1).is_none());
        assert!(lru.get(&0).is_some());
        assert!(lru.get(&2).is_some());
        lru.put(0, Arc::clone(&arcs[3])); // overwrite, no growth
        assert_eq!(lru.len(), 2);
        lru.remove(&0);
        assert!(lru.get(&0).is_none());
        lru.retain(|_| false);
        assert_eq!(lru.len(), 0);
    }
}
