//! The catalog: named tables, horizontal shards, versions, and a
//! plan-keyed result cache.
//!
//! A [`Catalog`] is the multi-table face of the store:
//!
//! * **Registration** — tables are registered under names, singly or as
//!   a [`ShardedTable`] (N tables with one schema). Every mutation —
//!   register, replace, [`Catalog::add_shard`], drop — stamps the entry
//!   with a fresh value of one catalog-wide monotonic version counter.
//! * **Scan fan-in** — a [`crate::QuerySpec`] executed against a
//!   sharded table runs the same compiled plan over every shard (shards
//!   in parallel, each shard's segments optionally parallel too) and
//!   merges the per-shard sink states and [`QueryStats`] associatively
//!   — the same merge the intra-table parallel executor uses, one
//!   level up.
//! * **Result caching** — results are cached under
//!   `(table name, plan fingerprint)` and validated against the entry's
//!   version: a version bump silently invalidates every cached result
//!   for that table. A hit is visible as
//!   [`QueryStats::result_cache_hits`] `== 1` (a hit's other counters
//!   are zero — nothing executed).
//!
//! Tables may mix backends freely: resident shards, lazily-backed
//! shards ([`crate::file::open_table_lazy`]), or both.

use crate::query::{QueryResult, QuerySpec, QueryStats, SinkState};
use crate::schema::TableSchema;
use crate::table::Table;
use crate::{Result, StoreError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Default number of cached query results per catalog.
pub const DEFAULT_RESULT_CACHE: usize = 128;

/// N tables sharing one schema, queried as one. Shards are typically
/// row-disjoint horizontal partitions (see [`shard_table`]), but the
/// catalog only requires schema agreement — each shard answers for its
/// own rows and the fan-in merges.
#[derive(Debug, Clone)]
pub struct ShardedTable {
    schema: TableSchema,
    shards: Vec<Arc<Table>>,
    num_rows: usize,
}

impl ShardedTable {
    /// Assemble from at least one shard; all shards must share a schema.
    pub fn new(shards: Vec<Table>) -> Result<ShardedTable> {
        let mut iter = shards.into_iter();
        let first = iter
            .next()
            .ok_or_else(|| StoreError::Shape("a sharded table needs at least one shard".into()))?;
        let schema = first.schema().clone();
        let mut arcs = vec![Arc::new(first)];
        for (i, shard) in iter.enumerate() {
            if shard.schema() != &schema {
                return Err(StoreError::Shape(format!(
                    "shard {} schema differs from shard 0",
                    i + 1
                )));
            }
            arcs.push(Arc::new(shard));
        }
        let num_rows = arcs.iter().map(|s| s.num_rows()).sum();
        Ok(ShardedTable {
            schema,
            shards: arcs,
            num_rows,
        })
    }

    /// The shared schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// The shards, in registration order.
    pub fn shards(&self) -> &[Arc<Table>] {
        &self.shards
    }

    /// Total rows across shards.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Payload fetches that hit a backing store so far, across shards.
    pub fn io_reads(&self) -> usize {
        self.shards.iter().map(|s| s.io_reads()).sum()
    }

    /// Run `spec` over every shard and merge — shards in parallel when
    /// `threads > 1`. Each worker takes whole shards; once `threads`
    /// reaches a whole multiple of the shard count the surplus
    /// parallelises *within* shards (`threads / shards` workers each —
    /// never oversubscribed). `QueryStats` are the sum over shards,
    /// exactly as parallel partials merge within one table.
    pub fn execute_parallel(&self, spec: &QuerySpec, threads: usize) -> Result<QueryResult> {
        let threads = threads.max(1);
        let workers = threads.clamp(1, self.shards.len());
        let inner_threads = (threads / workers).max(1);

        let (state, stats) = if workers == 1 {
            // Sequential fan-in runs inline — no thread spawn on the
            // hot single-threaded query path.
            run_shards(&self.shards, spec, inner_threads)?
                .ok_or_else(|| StoreError::Shape("a sharded table needs a shard".into()))?
        } else {
            let chunk = self.shards.len().div_ceil(workers);
            let partials: Vec<Result<Option<(SinkState, QueryStats)>>> =
                std::thread::scope(|scope| {
                    let mut handles = Vec::with_capacity(workers);
                    for piece in self.shards.chunks(chunk) {
                        handles.push(scope.spawn(move || run_shards(piece, spec, inner_threads)));
                    }
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("shard worker panicked"))
                        .collect()
                });
            let mut merged: Option<(SinkState, QueryStats)> = None;
            for partial in partials {
                merged = merge_partial(merged, partial?);
            }
            merged.expect("at least one shard")
        };
        // All shards share a schema, so any shard's compiled plan
        // shapes the result identically.
        let plan = spec.compile_mode(&self.shards[0], false)?;
        QueryResult::from_state(&plan, state, stats)
    }

    /// Sequential [`Self::execute_parallel`].
    pub fn execute(&self, spec: &QuerySpec) -> Result<QueryResult> {
        self.execute_parallel(spec, 1)
    }
}

/// Run `spec` over a slice of shards, merging sink states and stats.
/// `None` only for an empty slice.
fn run_shards(
    shards: &[Arc<Table>],
    spec: &QuerySpec,
    inner_threads: usize,
) -> Result<Option<(SinkState, QueryStats)>> {
    let mut merged: Option<(SinkState, QueryStats)> = None;
    for shard in shards {
        let plan = spec.compile_mode(shard, false)?;
        let partial = if inner_threads > 1 {
            plan.run_parallel(inner_threads)?
        } else {
            plan.run()?
        };
        merged = merge_partial(merged, Some(partial));
    }
    Ok(merged)
}

/// Associatively fold one partial `(sink state, stats)` into another.
fn merge_partial(
    acc: Option<(SinkState, QueryStats)>,
    partial: Option<(SinkState, QueryStats)>,
) -> Option<(SinkState, QueryStats)> {
    match (acc, partial) {
        (acc, None) => acc,
        (None, partial) => partial,
        (Some((mut state, mut stats)), Some((s, st))) => {
            state.merge(s);
            stats.absorb(&st);
            Some((state, stats))
        }
    }
}

/// Split a table into `shards` row-disjoint tables along contiguous
/// segment ranges (segments are never split, so shard sizes differ by
/// at most one segment). Shards *share* the original's segment payloads
/// (`Arc` handles, zero copies). The inverse of registering the pieces
/// as one [`ShardedTable`]: queries over the shards answer exactly like
/// queries over `table`.
pub fn shard_table(table: &Table, shards: usize) -> Result<Vec<Table>> {
    let num_segments = table.num_segments();
    let shards = shards.clamp(1, num_segments.max(1));
    // Balanced split: the first `num_segments % shards` shards take one
    // extra segment, so exactly `shards` shards come back and sizes
    // differ by at most one.
    let base = num_segments / shards;
    let extra = num_segments % shards;
    // Fetch every column's segments once (loads lazily-backed tables).
    let mut columns: Vec<Vec<Arc<crate::segment::Segment>>> =
        Vec::with_capacity(table.schema().width());
    for col in &table.schema().columns {
        columns.push(table.column_segments(&col.name)?);
    }
    let mut out = Vec::with_capacity(shards);
    let mut start = 0usize;
    for shard_idx in 0..shards {
        let end = start + base + usize::from(shard_idx < extra);
        let sources: Vec<Arc<dyn crate::source::SegmentSource>> = columns
            .iter()
            .map(|col| {
                Arc::new(crate::source::ResidentSource::from_arcs(
                    col[start..end].to_vec(),
                )) as Arc<dyn crate::source::SegmentSource>
            })
            .collect();
        let rows: usize = columns
            .first()
            .map_or(0, |col| col[start..end].iter().map(|s| s.num_rows()).sum());
        out.push(Table::from_sources(
            table.schema().clone(),
            sources,
            rows,
            table.seg_rows(),
        )?);
        start = end;
    }
    Ok(out)
}

/// A catalog entry's table, single or sharded.
#[derive(Debug, Clone)]
pub enum CatalogTable {
    /// One table.
    Single(Arc<Table>),
    /// A horizontally sharded table.
    Sharded(Arc<ShardedTable>),
}

impl CatalogTable {
    /// The schema.
    pub fn schema(&self) -> &TableSchema {
        match self {
            CatalogTable::Single(t) => t.schema(),
            CatalogTable::Sharded(s) => s.schema(),
        }
    }

    /// Total rows.
    pub fn num_rows(&self) -> usize {
        match self {
            CatalogTable::Single(t) => t.num_rows(),
            CatalogTable::Sharded(s) => s.num_rows(),
        }
    }

    /// Number of shards (1 for a single table).
    pub fn shard_count(&self) -> usize {
        match self {
            CatalogTable::Single(_) => 1,
            CatalogTable::Sharded(s) => s.shards().len(),
        }
    }

    /// Payload fetches that hit a backing store so far.
    pub fn io_reads(&self) -> usize {
        match self {
            CatalogTable::Single(t) => t.io_reads(),
            CatalogTable::Sharded(s) => s.io_reads(),
        }
    }

    fn execute_parallel(&self, spec: &QuerySpec, threads: usize) -> Result<QueryResult> {
        match self {
            CatalogTable::Single(t) => {
                let plan = spec.compile_mode(t, false)?;
                let (state, stats) = if threads > 1 {
                    plan.run_parallel(threads)?
                } else {
                    plan.run()?
                };
                QueryResult::from_state(&plan, state, stats)
            }
            CatalogTable::Sharded(s) => s.execute_parallel(spec, threads),
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    table: CatalogTable,
    version: u64,
}

#[derive(Debug, Clone)]
struct CachedResult {
    version: u64,
    /// The exact plan that produced `result`. The fingerprint indexes
    /// the cache, but 64-bit FNV is not collision-free — a hit is only
    /// served after this spec compares equal to the query's.
    spec: QuerySpec,
    result: QueryResult,
}

/// Result cache over the shared [`crate::source`] LRU, keyed
/// `(table name, plan fingerprint)` and validated on hit against both
/// the entry's table version and its full spec. Entries are behind an
/// `Arc`, so a probe is an `Arc` bump — the (possibly large) rows are
/// cloned only for validated hits.
#[derive(Debug)]
struct ResultCache {
    lru: crate::source::LruCache<(String, u64), Arc<CachedResult>>,
}

impl ResultCache {
    /// A validated entry, handed back as an `Arc` so the caller clones
    /// the (possibly large) rows *after* releasing the cache lock.
    fn get(
        &mut self,
        key: &(String, u64),
        spec: &QuerySpec,
        version: u64,
    ) -> Option<Arc<CachedResult>> {
        let cached = self.lru.get(key)?;
        if cached.version != version {
            // Stale: the table mutated since this was cached.
            self.lru.remove(key);
            return None;
        }
        if &cached.spec != spec {
            // Fingerprint collision between distinct plans: never serve
            // another query's rows (the newer plan will overwrite).
            return None;
        }
        Some(cached)
    }

    fn put(&mut self, key: (String, u64), entry: Arc<CachedResult>) {
        self.lru.put(key, entry);
    }

    fn purge_table(&mut self, name: &str) {
        self.lru.retain(|(table, _)| table != name);
    }
}

/// Named tables with versions and a result cache. All methods take
/// `&self`: the catalog is internally synchronised and meant to be
/// shared (`Arc<Catalog>`) across query threads.
#[derive(Debug)]
pub struct Catalog {
    tables: RwLock<HashMap<String, Entry>>,
    cache: Mutex<ResultCache>,
    cache_capacity: usize,
    next_version: AtomicU64,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::new()
    }
}

impl Catalog {
    /// An empty catalog with the default result-cache capacity.
    pub fn new() -> Catalog {
        Catalog::with_cache_capacity(DEFAULT_RESULT_CACHE)
    }

    /// An empty catalog caching at most `capacity` query results
    /// (0 disables result caching).
    pub fn with_cache_capacity(capacity: usize) -> Catalog {
        Catalog {
            tables: RwLock::new(HashMap::new()),
            cache_capacity: capacity,
            cache: Mutex::new(ResultCache {
                lru: crate::source::LruCache::new(capacity),
            }),
            next_version: AtomicU64::new(1),
        }
    }

    fn bump(&self) -> u64 {
        self.next_version.fetch_add(1, Ordering::Relaxed)
    }

    /// Register (or replace) a single table under `name`. Returns the
    /// entry's new version.
    pub fn register(&self, name: &str, table: Table) -> u64 {
        self.install(name, CatalogTable::Single(Arc::new(table)))
    }

    /// Register (or replace) a sharded table under `name`. Returns the
    /// entry's new version.
    pub fn register_sharded(&self, name: &str, shards: Vec<Table>) -> Result<u64> {
        let sharded = ShardedTable::new(shards)?;
        Ok(self.install(name, CatalogTable::Sharded(Arc::new(sharded))))
    }

    fn install(&self, name: &str, table: CatalogTable) -> u64 {
        let version = self.bump();
        self.tables
            .write()
            .expect("catalog lock")
            .insert(name.to_string(), Entry { table, version });
        self.cache.lock().expect("cache lock").purge_table(name);
        version
    }

    /// Append one shard to `name` (a single table becomes a two-shard
    /// table). The mutation bumps the version, so every cached result
    /// for `name` stops being served. Returns the new version.
    pub fn add_shard(&self, name: &str, shard: Table) -> Result<u64> {
        let mut tables = self.tables.write().expect("catalog lock");
        let entry = tables
            .get_mut(name)
            .ok_or_else(|| StoreError::NoSuchTable(name.to_string()))?;
        let mut shards: Vec<Arc<Table>> = match &entry.table {
            CatalogTable::Single(t) => vec![Arc::clone(t)],
            CatalogTable::Sharded(s) => s.shards().to_vec(),
        };
        let schema = shards[0].schema().clone();
        if shard.schema() != &schema {
            return Err(StoreError::Shape(format!(
                "new shard's schema differs from table {name}"
            )));
        }
        shards.push(Arc::new(shard));
        let num_rows = shards.iter().map(|s| s.num_rows()).sum();
        entry.table = CatalogTable::Sharded(Arc::new(ShardedTable {
            schema,
            shards,
            num_rows,
        }));
        entry.version = self.bump();
        let version = entry.version;
        drop(tables);
        self.cache.lock().expect("cache lock").purge_table(name);
        Ok(version)
    }

    /// Remove a table. Returns whether it existed.
    pub fn drop_table(&self, name: &str) -> bool {
        let existed = self
            .tables
            .write()
            .expect("catalog lock")
            .remove(name)
            .is_some();
        if existed {
            self.cache.lock().expect("cache lock").purge_table(name);
        }
        existed
    }

    /// The registered table and its version, if present.
    pub fn get(&self, name: &str) -> Option<(CatalogTable, u64)> {
        self.tables
            .read()
            .expect("catalog lock")
            .get(name)
            .map(|e| (e.table.clone(), e.version))
    }

    /// A table's current version, if present.
    pub fn version(&self, name: &str) -> Option<u64> {
        self.get(name).map(|(_, v)| v)
    }

    /// Registered table names, sorted.
    pub fn tables(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .tables
            .read()
            .expect("catalog lock")
            .keys()
            .cloned()
            .collect();
        names.sort_unstable();
        names
    }

    /// Execute `spec` against the named table, serving from the result
    /// cache when an identical plan already ran against the same table
    /// version. A cache hit returns the cached rows with fresh stats
    /// whose only nonzero counter is `result_cache_hits == 1`.
    pub fn execute(&self, name: &str, spec: &QuerySpec) -> Result<QueryResult> {
        self.execute_parallel(name, spec, 1)
    }

    /// [`Self::execute`] with `threads` workers (shards fan out first;
    /// leftover parallelism goes intra-shard).
    pub fn execute_parallel(
        &self,
        name: &str,
        spec: &QuerySpec,
        threads: usize,
    ) -> Result<QueryResult> {
        let (table, version) = self
            .get(name)
            .ok_or_else(|| StoreError::NoSuchTable(name.to_string()))?;
        let key = (name.to_string(), spec.fingerprint());
        // Hold the cache lock only for validation; clone the (possibly
        // large) rows after releasing it so other queries never wait
        // behind the copy.
        let hit = self
            .cache
            .lock()
            .expect("cache lock")
            .get(&key, spec, version);
        if let Some(cached) = hit {
            return Ok(QueryResult {
                rows: cached.result.rows.clone(),
                stats: QueryStats {
                    result_cache_hits: 1,
                    ..QueryStats::default()
                },
            });
        }
        let result = table.execute_parallel(spec, threads)?;
        if self.cache_capacity > 0 {
            // Clones happen outside the lock too.
            let entry = Arc::new(CachedResult {
                version,
                spec: spec.clone(),
                result: result.clone(),
            });
            self.cache.lock().expect("cache lock").put(key, entry);
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::query::{Agg, QueryBuilder};
    use crate::segment::CompressionPolicy;
    use lcdc_core::{ColumnData, DType};

    fn orders(n: u64, day_offset: u64) -> Table {
        let schema = TableSchema::new(&[("day", DType::U64), ("qty", DType::U64)]);
        let day = ColumnData::U64((0..n).map(|i| day_offset + i / 100).collect());
        let qty = ColumnData::U64((0..n).map(|i| 1 + i % 50).collect());
        Table::build(
            schema,
            &[day, qty],
            &[CompressionPolicy::Auto, CompressionPolicy::Auto],
            256,
        )
        .unwrap()
    }

    fn spec() -> QuerySpec {
        QuerySpec::new()
            .filter("day", Predicate::Range { lo: 5, hi: 14 })
            .aggregate(&[Agg::Sum("qty"), Agg::Count])
    }

    #[test]
    fn sharded_execution_equals_single_table() {
        let table = orders(6000, 1);
        let want = spec().bind(&table).execute().unwrap();
        for shards in [1usize, 2, 3, 7, 100] {
            let pieces = shard_table(&table, shards).unwrap();
            assert_eq!(pieces.len(), shards.min(table.num_segments()));
            let sizes: Vec<usize> = pieces.iter().map(Table::num_segments).collect();
            let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "unbalanced split {sizes:?}");
            let sharded = ShardedTable::new(pieces).unwrap();
            assert_eq!(sharded.num_rows(), table.num_rows());
            for threads in [1usize, 4] {
                let got = sharded.execute_parallel(&spec(), threads).unwrap();
                assert_eq!(got.rows, want.rows, "{shards} shards x{threads}");
                assert_eq!(got.stats.segments, want.stats.segments, "{shards} shards");
            }
        }
    }

    #[test]
    fn every_sink_survives_sharding() {
        let table = orders(5000, 1);
        let pieces = shard_table(&table, 4).unwrap();
        let sharded = ShardedTable::new(pieces).unwrap();
        let specs = [
            QuerySpec::new()
                .group_by("day")
                .aggregate(&[Agg::Sum("qty")]),
            QuerySpec::new().top_k("qty", 7),
            QuerySpec::new().distinct("day"),
            QuerySpec::new()
                .filter_any(&[
                    ("day", Predicate::Range { lo: 2, hi: 9 }),
                    ("qty", Predicate::Eq(50)),
                ])
                .aggregate(&[Agg::Count]),
        ];
        for (i, s) in specs.iter().enumerate() {
            let single = s.bind(&table).execute().unwrap();
            let fanned = sharded.execute(s).unwrap();
            assert_eq!(fanned.rows, single.rows, "spec {i}");
        }
    }

    #[test]
    fn catalog_serves_repeat_queries_from_cache() {
        let catalog = Catalog::new();
        catalog.register("orders", orders(4000, 1));
        let first = catalog.execute("orders", &spec()).unwrap();
        assert_eq!(first.stats.result_cache_hits, 0);
        assert!(first.stats.segments > 0);
        let second = catalog.execute("orders", &spec()).unwrap();
        assert_eq!(second.rows, first.rows);
        assert_eq!(second.stats.result_cache_hits, 1, "{:?}", second.stats);
        assert_eq!(second.stats.segments, 0, "a hit executes nothing");
        // A different plan is a different key.
        let other = QuerySpec::new().top_k("qty", 3);
        assert_eq!(
            catalog
                .execute("orders", &other)
                .unwrap()
                .stats
                .result_cache_hits,
            0
        );
    }

    #[test]
    fn version_bump_invalidates_cached_results() {
        let catalog = Catalog::new();
        let v1 = catalog.register("orders", orders(4000, 1));
        let first = catalog.execute("orders", &spec()).unwrap();
        // Mutation: a new shard arrives with more rows in range.
        let v2 = catalog.add_shard("orders", orders(2000, 1)).unwrap();
        assert!(v2 > v1, "versions are monotonic");
        let after = catalog.execute("orders", &spec()).unwrap();
        assert_eq!(after.stats.result_cache_hits, 0, "stale result not served");
        assert_ne!(after.rows, first.rows, "new shard contributes rows");
        // And the new result caches under the new version.
        assert_eq!(
            catalog
                .execute("orders", &spec())
                .unwrap()
                .stats
                .result_cache_hits,
            1
        );
    }

    #[test]
    fn replacing_a_table_invalidates_too() {
        let catalog = Catalog::new();
        catalog.register("t", orders(3000, 1));
        let a = catalog.execute("t", &spec()).unwrap();
        catalog.register("t", orders(3000, 1000)); // different days
        let b = catalog.execute("t", &spec()).unwrap();
        assert_eq!(b.stats.result_cache_hits, 0);
        assert_ne!(a.rows, b.rows);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let catalog = Catalog::with_cache_capacity(0);
        catalog.register("t", orders(2000, 1));
        catalog.execute("t", &spec()).unwrap();
        assert_eq!(
            catalog
                .execute("t", &spec())
                .unwrap()
                .stats
                .result_cache_hits,
            0
        );
    }

    #[test]
    fn schema_mismatch_rejected() {
        let catalog = Catalog::new();
        catalog.register("t", orders(1000, 1));
        let other_schema = Table::build(
            TableSchema::new(&[("x", DType::U32)]),
            &[ColumnData::U32(vec![1, 2, 3])],
            &[CompressionPolicy::None],
            64,
        )
        .unwrap();
        assert!(catalog.add_shard("t", other_schema).is_err());
        assert!(ShardedTable::new(vec![]).is_err());
    }

    #[test]
    fn drop_and_introspection() {
        let catalog = Catalog::new();
        catalog.register("a", orders(1000, 1));
        catalog
            .register_sharded("b", shard_table(&orders(2000, 1), 2).unwrap())
            .unwrap();
        assert_eq!(catalog.tables(), vec!["a".to_string(), "b".to_string()]);
        let (b, _) = catalog.get("b").unwrap();
        assert_eq!(b.shard_count(), 2);
        assert_eq!(b.num_rows(), 2000);
        assert!(catalog.drop_table("a"));
        assert!(!catalog.drop_table("a"));
        assert!(catalog.execute("a", &spec()).is_err());
    }

    #[test]
    fn sharded_matches_builder_stats_shape() {
        // Sharding must not change *what* is measured: the summed
        // QueryStats over disjoint shards equals the single-table run.
        let table = orders(4000, 1);
        let sharded = ShardedTable::new(shard_table(&table, 4).unwrap()).unwrap();
        let single = QueryBuilder::scan(&table)
            .filter("day", Predicate::Range { lo: 5, hi: 14 })
            .aggregate(&[Agg::Sum("qty"), Agg::Count])
            .execute()
            .unwrap();
        let fanned = sharded.execute(&spec()).unwrap();
        assert_eq!(fanned.stats, single.stats);
    }
}
