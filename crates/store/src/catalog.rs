//! The catalog: named tables, horizontal shards, versions, and a
//! plan-keyed result cache.
//!
//! A [`Catalog`] is the multi-table face of the store:
//!
//! * **Registration** — tables are registered under names, singly or as
//!   a [`ShardedTable`] (N tables with one schema). Every mutation —
//!   register, replace, [`Catalog::add_shard`], drop — stamps the entry
//!   with a fresh value of one catalog-wide monotonic version counter.
//! * **Scan fan-in** — a [`crate::QuerySpec`] executed against a
//!   sharded table first *prunes whole shards* whose per-column key
//!   ranges the spec's bounds exclude (no source touched, visible as
//!   [`QueryStats::shards_pruned`]), then runs the same compiled plan
//!   over every surviving shard through **one shared morsel pool** —
//!   all shards' segments in a single work queue, all workers pulling
//!   from it — and merges the per-shard sink states and [`QueryStats`]
//!   associatively: the same merge the intra-table parallel executor
//!   uses, one level up.
//! * **Result caching** — results are cached under
//!   `(table name, plan fingerprint)` and validated against the entry's
//!   version: a version bump silently invalidates every cached result
//!   for that table. A hit is visible as
//!   [`QueryStats::result_cache_hits`] `== 1` (a hit's other counters
//!   are zero — nothing executed).
//!
//! Tables may mix backends freely: resident shards, lazily-backed
//! shards ([`crate::file::open_table_lazy`]), or both.

use crate::query::{run_plans, ExecOptions, QueryResult, QuerySpec, QueryStats, SinkState};
use crate::schema::TableSchema;
use crate::table::Table;
use crate::{Result, StoreError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Default number of cached query results per catalog.
pub const DEFAULT_RESULT_CACHE: usize = 128;

/// N tables sharing one schema, queried as one. Shards are typically
/// row-disjoint horizontal partitions (see [`shard_table`]), but the
/// catalog only requires schema agreement — each shard answers for its
/// own rows and the fan-in merges.
#[derive(Debug, Clone)]
pub struct ShardedTable {
    schema: TableSchema,
    shards: Vec<Arc<Table>>,
    num_rows: usize,
}

impl ShardedTable {
    /// Assemble from at least one shard; all shards must share a schema.
    pub fn new(shards: Vec<Table>) -> Result<ShardedTable> {
        let mut iter = shards.into_iter();
        let first = iter
            .next()
            .ok_or_else(|| StoreError::Shape("a sharded table needs at least one shard".into()))?;
        let schema = first.schema().clone();
        let mut arcs = vec![Arc::new(first)];
        for (i, shard) in iter.enumerate() {
            if shard.schema() != &schema {
                return Err(StoreError::Shape(format!(
                    "shard {} schema differs from shard 0",
                    i + 1
                )));
            }
            arcs.push(Arc::new(shard));
        }
        let num_rows = arcs.iter().map(|s| s.num_rows()).sum();
        Ok(ShardedTable {
            schema,
            shards: arcs,
            num_rows,
        })
    }

    /// The shared schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// The shards, in registration order.
    pub fn shards(&self) -> &[Arc<Table>] {
        &self.shards
    }

    /// Total rows across shards.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Payload fetches that hit a backing store so far, across shards.
    pub fn io_reads(&self) -> usize {
        self.shards.iter().map(|s| s.io_reads()).sum()
    }

    /// Run `spec` over the shards with one shared worker pool: every
    /// live shard's segments become morsels in a single queue that all
    /// `threads` workers pull from, so a slow shard borrows the idle
    /// shards' workers instead of tail-blocking its own. Before any
    /// source is touched, **shard pruning** intersects the spec's
    /// bounds with each shard's per-column key range (resident segment
    /// metadata): a shard the bounds exclude contributes its segment
    /// count to `segments` / `segments_pruned` (and bumps
    /// [`QueryStats::shards_pruned`]) but is never visited or read —
    /// nor compiled, except shard 0 when *every* shard is pruned, which
    /// compiles once purely to shape the empty result.
    /// `QueryStats` are otherwise the sum over shards, exactly
    /// as parallel partials merge within one table.
    pub fn execute_parallel(&self, spec: &QuerySpec, threads: usize) -> Result<QueryResult> {
        self.execute_opts(spec, &ExecOptions::threads(threads))
    }

    /// [`Self::execute_parallel`] with explicit [`ExecOptions`]
    /// (worker count plus prefetch depth for lazily-backed shards).
    pub fn execute_opts(&self, spec: &QuerySpec, opts: &ExecOptions) -> Result<QueryResult> {
        let mut pruned = QueryStats::default();
        let mut live: Vec<&Arc<Table>> = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            if shard_excluded(shard, spec) {
                pruned.shards_pruned += 1;
                pruned.segments += shard.num_segments();
                pruned.segments_pruned += shard.num_segments();
            } else {
                live.push(shard);
            }
        }
        // Shards share a schema, so any shard's compiled plan shapes
        // the result: the first live plan does double duty, and only an
        // all-pruned fan-in compiles (against shard 0, purely for the
        // sink shape) without executing.
        let (shape, state, mut stats) = if live.is_empty() {
            let shape = spec.compile_mode(&self.shards[0], false)?;
            let state = SinkState::for_sink(&shape.sink);
            (shape, state, QueryStats::default())
        } else {
            let plans = live
                .iter()
                .map(|shard| spec.compile_mode(shard, false))
                .collect::<Result<Vec<_>>>()?;
            let (state, stats) = run_plans(&plans, opts)?;
            let shape = plans.into_iter().next().expect("live is non-empty");
            (shape, state, stats)
        };
        stats.absorb(&pruned);
        QueryResult::from_state(&shape, state, stats)
    }

    /// Sequential [`Self::execute_parallel`].
    pub fn execute(&self, spec: &QuerySpec) -> Result<QueryResult> {
        self.execute_parallel(spec, 1)
    }
}

/// Whether `spec`'s bounds prove `shard` holds no matching row, from
/// the shard's per-column `[min, max]` alone — a table-level zone map.
/// A CNF excludes the shard when any clause does; a (possibly
/// disjunctive) clause excludes it only when *every* leaf is disjoint
/// from its column's shard range. Unknown columns never prune here —
/// compilation reports them properly.
fn shard_excluded(shard: &Table, spec: &QuerySpec) -> bool {
    spec.clauses.iter().any(|clause| {
        !clause.is_empty()
            && clause.iter().all(|(column, predicate)| {
                shard
                    .schema()
                    .index_of(column)
                    .and_then(|idx| shard.column_range(idx))
                    .map(|(lo, hi)| predicate.zone_decides(lo, hi) == Some(false))
                    .unwrap_or(false)
            })
    })
}

/// Split a table into `shards` row-disjoint tables along contiguous
/// segment ranges (segments are never split, so shard sizes differ by
/// at most one segment). Shards *share* the original's segment payloads
/// (`Arc` handles, zero copies). The inverse of registering the pieces
/// as one [`ShardedTable`]: queries over the shards answer exactly like
/// queries over `table`.
pub fn shard_table(table: &Table, shards: usize) -> Result<Vec<Table>> {
    let num_segments = table.num_segments();
    let shards = shards.clamp(1, num_segments.max(1));
    // Balanced split: the first `num_segments % shards` shards take one
    // extra segment, so exactly `shards` shards come back and sizes
    // differ by at most one.
    let base = num_segments / shards;
    let extra = num_segments % shards;
    // Fetch every column's segments once (loads lazily-backed tables).
    let mut columns: Vec<Vec<Arc<crate::segment::Segment>>> =
        Vec::with_capacity(table.schema().width());
    for col in &table.schema().columns {
        columns.push(table.column_segments(&col.name)?);
    }
    let mut out = Vec::with_capacity(shards);
    let mut start = 0usize;
    for shard_idx in 0..shards {
        let end = start + base + usize::from(shard_idx < extra);
        let sources: Vec<Arc<dyn crate::source::SegmentSource>> = columns
            .iter()
            .map(|col| {
                Arc::new(crate::source::ResidentSource::from_arcs(
                    col[start..end].to_vec(),
                )) as Arc<dyn crate::source::SegmentSource>
            })
            .collect();
        let rows: usize = columns
            .first()
            .map_or(0, |col| col[start..end].iter().map(|s| s.num_rows()).sum());
        out.push(Table::from_sources(
            table.schema().clone(),
            sources,
            rows,
            table.seg_rows(),
        )?);
        start = end;
    }
    Ok(out)
}

/// A catalog entry's table, single or sharded.
#[derive(Debug, Clone)]
pub enum CatalogTable {
    /// One table.
    Single(Arc<Table>),
    /// A horizontally sharded table.
    Sharded(Arc<ShardedTable>),
}

impl CatalogTable {
    /// The schema.
    pub fn schema(&self) -> &TableSchema {
        match self {
            CatalogTable::Single(t) => t.schema(),
            CatalogTable::Sharded(s) => s.schema(),
        }
    }

    /// Total rows.
    pub fn num_rows(&self) -> usize {
        match self {
            CatalogTable::Single(t) => t.num_rows(),
            CatalogTable::Sharded(s) => s.num_rows(),
        }
    }

    /// Number of shards (1 for a single table).
    pub fn shard_count(&self) -> usize {
        match self {
            CatalogTable::Single(_) => 1,
            CatalogTable::Sharded(s) => s.shards().len(),
        }
    }

    /// Payload fetches that hit a backing store so far.
    pub fn io_reads(&self) -> usize {
        match self {
            CatalogTable::Single(t) => t.io_reads(),
            CatalogTable::Sharded(s) => s.io_reads(),
        }
    }

    fn execute_opts(&self, spec: &QuerySpec, opts: &ExecOptions) -> Result<QueryResult> {
        match self {
            CatalogTable::Single(t) => {
                let plan = spec.compile_mode(t, false)?;
                let (state, stats) = run_plans(std::slice::from_ref(&plan), opts)?;
                QueryResult::from_state(&plan, state, stats)
            }
            CatalogTable::Sharded(s) => s.execute_opts(spec, opts),
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    table: CatalogTable,
    version: u64,
}

#[derive(Debug, Clone)]
struct CachedResult {
    version: u64,
    /// The exact plan that produced `result`. The fingerprint indexes
    /// the cache, but 64-bit FNV is not collision-free — a hit is only
    /// served after this spec compares equal to the query's.
    spec: QuerySpec,
    result: QueryResult,
}

/// Result cache over the shared [`crate::source`] LRU, keyed
/// `(table name, plan fingerprint)` and validated on hit against both
/// the entry's table version and its full spec. Entries are behind an
/// `Arc`, so a probe is an `Arc` bump — the (possibly large) rows are
/// cloned only for validated hits.
#[derive(Debug)]
struct ResultCache {
    lru: crate::source::LruCache<(String, u64), Arc<CachedResult>>,
}

impl ResultCache {
    /// A validated entry, handed back as an `Arc` so the caller clones
    /// the (possibly large) rows *after* releasing the cache lock.
    fn get(
        &mut self,
        key: &(String, u64),
        spec: &QuerySpec,
        version: u64,
    ) -> Option<Arc<CachedResult>> {
        let cached = self.lru.get(key)?;
        if cached.version != version {
            // Stale: the table mutated since this was cached.
            self.lru.remove(key);
            return None;
        }
        if &cached.spec != spec {
            // Fingerprint collision between distinct plans: never serve
            // another query's rows (the newer plan will overwrite).
            return None;
        }
        Some(cached)
    }

    fn put(&mut self, key: (String, u64), entry: Arc<CachedResult>) {
        self.lru.put(key, entry);
    }

    fn purge_table(&mut self, name: &str) {
        self.lru.retain(|(table, _)| table != name);
    }
}

/// Named tables with versions and a result cache. All methods take
/// `&self`: the catalog is internally synchronised and meant to be
/// shared (`Arc<Catalog>`) across query threads.
#[derive(Debug)]
pub struct Catalog {
    tables: RwLock<HashMap<String, Entry>>,
    cache: Mutex<ResultCache>,
    cache_capacity: usize,
    next_version: AtomicU64,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::new()
    }
}

impl Catalog {
    /// An empty catalog with the default result-cache capacity.
    pub fn new() -> Catalog {
        Catalog::with_cache_capacity(DEFAULT_RESULT_CACHE)
    }

    /// An empty catalog caching at most `capacity` query results
    /// (0 disables result caching).
    pub fn with_cache_capacity(capacity: usize) -> Catalog {
        Catalog {
            tables: RwLock::new(HashMap::new()),
            cache_capacity: capacity,
            cache: Mutex::new(ResultCache {
                lru: crate::source::LruCache::new(capacity),
            }),
            next_version: AtomicU64::new(1),
        }
    }

    fn bump(&self) -> u64 {
        self.next_version.fetch_add(1, Ordering::Relaxed)
    }

    /// Register (or replace) a single table under `name`. Returns the
    /// entry's new version.
    pub fn register(&self, name: &str, table: Table) -> u64 {
        self.install(name, CatalogTable::Single(Arc::new(table)))
    }

    /// Register (or replace) a sharded table under `name`. Returns the
    /// entry's new version.
    pub fn register_sharded(&self, name: &str, shards: Vec<Table>) -> Result<u64> {
        let sharded = ShardedTable::new(shards)?;
        Ok(self.install(name, CatalogTable::Sharded(Arc::new(sharded))))
    }

    fn install(&self, name: &str, table: CatalogTable) -> u64 {
        let version = self.bump();
        self.tables
            .write()
            .expect("catalog lock")
            .insert(name.to_string(), Entry { table, version });
        self.cache.lock().expect("cache lock").purge_table(name);
        version
    }

    /// Append one shard to `name` (a single table becomes a two-shard
    /// table). The mutation bumps the version, so every cached result
    /// for `name` stops being served. Returns the new version.
    pub fn add_shard(&self, name: &str, shard: Table) -> Result<u64> {
        let mut tables = self.tables.write().expect("catalog lock");
        let entry = tables
            .get_mut(name)
            .ok_or_else(|| StoreError::NoSuchTable(name.to_string()))?;
        let mut shards: Vec<Arc<Table>> = match &entry.table {
            CatalogTable::Single(t) => vec![Arc::clone(t)],
            CatalogTable::Sharded(s) => s.shards().to_vec(),
        };
        let schema = shards[0].schema().clone();
        if shard.schema() != &schema {
            return Err(StoreError::Shape(format!(
                "new shard's schema differs from table {name}"
            )));
        }
        shards.push(Arc::new(shard));
        let num_rows = shards.iter().map(|s| s.num_rows()).sum();
        entry.table = CatalogTable::Sharded(Arc::new(ShardedTable {
            schema,
            shards,
            num_rows,
        }));
        entry.version = self.bump();
        let version = entry.version;
        drop(tables);
        self.cache.lock().expect("cache lock").purge_table(name);
        Ok(version)
    }

    /// Remove a table. Returns whether it existed.
    pub fn drop_table(&self, name: &str) -> bool {
        let existed = self
            .tables
            .write()
            .expect("catalog lock")
            .remove(name)
            .is_some();
        if existed {
            self.cache.lock().expect("cache lock").purge_table(name);
        }
        existed
    }

    /// The registered table and its version, if present.
    pub fn get(&self, name: &str) -> Option<(CatalogTable, u64)> {
        self.tables
            .read()
            .expect("catalog lock")
            .get(name)
            .map(|e| (e.table.clone(), e.version))
    }

    /// A table's current version, if present.
    pub fn version(&self, name: &str) -> Option<u64> {
        self.get(name).map(|(_, v)| v)
    }

    /// Registered table names, sorted.
    pub fn tables(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .tables
            .read()
            .expect("catalog lock")
            .keys()
            .cloned()
            .collect();
        names.sort_unstable();
        names
    }

    /// Execute `spec` against the named table, serving from the result
    /// cache when an identical plan already ran against the same table
    /// version. A cache hit returns the cached rows with fresh stats
    /// whose only nonzero counter is `result_cache_hits == 1`.
    pub fn execute(&self, name: &str, spec: &QuerySpec) -> Result<QueryResult> {
        self.execute_parallel(name, spec, 1)
    }

    /// [`Self::execute`] with `threads` workers pulling from one shared
    /// morsel queue across all shards.
    pub fn execute_parallel(
        &self,
        name: &str,
        spec: &QuerySpec,
        threads: usize,
    ) -> Result<QueryResult> {
        self.execute_opts(name, spec, &ExecOptions::threads(threads))
    }

    /// [`Self::execute`] under explicit [`ExecOptions`] — worker count
    /// plus prefetch depth for lazily-backed shards.
    pub fn execute_opts(
        &self,
        name: &str,
        spec: &QuerySpec,
        opts: &ExecOptions,
    ) -> Result<QueryResult> {
        let (table, version) = self
            .get(name)
            .ok_or_else(|| StoreError::NoSuchTable(name.to_string()))?;
        let key = (name.to_string(), spec.fingerprint());
        // Hold the cache lock only for validation; clone the (possibly
        // large) rows after releasing it so other queries never wait
        // behind the copy.
        let hit = self
            .cache
            .lock()
            .expect("cache lock")
            .get(&key, spec, version);
        if let Some(cached) = hit {
            return Ok(QueryResult {
                rows: cached.result.rows.clone(),
                stats: QueryStats {
                    result_cache_hits: 1,
                    ..QueryStats::default()
                },
            });
        }
        let result = table.execute_opts(spec, opts)?;
        if self.cache_capacity > 0 {
            // Clones happen outside the lock too.
            let entry = Arc::new(CachedResult {
                version,
                spec: spec.clone(),
                result: result.clone(),
            });
            self.cache.lock().expect("cache lock").put(key, entry);
        }
        Ok(result)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::query::{Agg, QueryBuilder};
    use crate::segment::CompressionPolicy;
    use lcdc_core::{ColumnData, DType};

    fn orders(n: u64, day_offset: u64) -> Table {
        let schema = TableSchema::new(&[("day", DType::U64), ("qty", DType::U64)]);
        let day = ColumnData::U64((0..n).map(|i| day_offset + i / 100).collect());
        let qty = ColumnData::U64((0..n).map(|i| 1 + i % 50).collect());
        Table::build(
            schema,
            &[day, qty],
            &[CompressionPolicy::Auto, CompressionPolicy::Auto],
            256,
        )
        .unwrap()
    }

    fn spec() -> QuerySpec {
        QuerySpec::new()
            .filter("day", Predicate::Range { lo: 5, hi: 14 })
            .aggregate(&[Agg::Sum("qty"), Agg::Count])
    }

    #[test]
    fn sharded_execution_equals_single_table() {
        let table = orders(6000, 1);
        let want = spec().bind(&table).execute().unwrap();
        for shards in [1usize, 2, 3, 7, 100] {
            let pieces = shard_table(&table, shards).unwrap();
            assert_eq!(pieces.len(), shards.min(table.num_segments()));
            let sizes: Vec<usize> = pieces.iter().map(Table::num_segments).collect();
            let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "unbalanced split {sizes:?}");
            let sharded = ShardedTable::new(pieces).unwrap();
            assert_eq!(sharded.num_rows(), table.num_rows());
            for threads in [1usize, 4] {
                let got = sharded.execute_parallel(&spec(), threads).unwrap();
                assert_eq!(got.rows, want.rows, "{shards} shards x{threads}");
                assert_eq!(got.stats.segments, want.stats.segments, "{shards} shards");
            }
        }
    }

    #[test]
    fn every_sink_survives_sharding() {
        let table = orders(5000, 1);
        let pieces = shard_table(&table, 4).unwrap();
        let sharded = ShardedTable::new(pieces).unwrap();
        let specs = [
            QuerySpec::new()
                .group_by("day")
                .aggregate(&[Agg::Sum("qty")]),
            QuerySpec::new().top_k("qty", 7),
            QuerySpec::new().distinct("day"),
            QuerySpec::new()
                .filter_any(&[
                    ("day", Predicate::Range { lo: 2, hi: 9 }),
                    ("qty", Predicate::Eq(50)),
                ])
                .aggregate(&[Agg::Count]),
        ];
        for (i, s) in specs.iter().enumerate() {
            let single = s.bind(&table).execute().unwrap();
            let fanned = sharded.execute(s).unwrap();
            assert_eq!(fanned.rows, single.rows, "spec {i}");
        }
    }

    #[test]
    fn catalog_serves_repeat_queries_from_cache() {
        let catalog = Catalog::new();
        catalog.register("orders", orders(4000, 1));
        let first = catalog.execute("orders", &spec()).unwrap();
        assert_eq!(first.stats.result_cache_hits, 0);
        assert!(first.stats.segments > 0);
        let second = catalog.execute("orders", &spec()).unwrap();
        assert_eq!(second.rows, first.rows);
        assert_eq!(second.stats.result_cache_hits, 1, "{:?}", second.stats);
        assert_eq!(second.stats.segments, 0, "a hit executes nothing");
        // A different plan is a different key.
        let other = QuerySpec::new().top_k("qty", 3);
        assert_eq!(
            catalog
                .execute("orders", &other)
                .unwrap()
                .stats
                .result_cache_hits,
            0
        );
    }

    #[test]
    fn version_bump_invalidates_cached_results() {
        let catalog = Catalog::new();
        let v1 = catalog.register("orders", orders(4000, 1));
        let first = catalog.execute("orders", &spec()).unwrap();
        // Mutation: a new shard arrives with more rows in range.
        let v2 = catalog.add_shard("orders", orders(2000, 1)).unwrap();
        assert!(v2 > v1, "versions are monotonic");
        let after = catalog.execute("orders", &spec()).unwrap();
        assert_eq!(after.stats.result_cache_hits, 0, "stale result not served");
        assert_ne!(after.rows, first.rows, "new shard contributes rows");
        // And the new result caches under the new version.
        assert_eq!(
            catalog
                .execute("orders", &spec())
                .unwrap()
                .stats
                .result_cache_hits,
            1
        );
    }

    #[test]
    fn replacing_a_table_invalidates_too() {
        let catalog = Catalog::new();
        catalog.register("t", orders(3000, 1));
        let a = catalog.execute("t", &spec()).unwrap();
        catalog.register("t", orders(3000, 1000)); // different days
        let b = catalog.execute("t", &spec()).unwrap();
        assert_eq!(b.stats.result_cache_hits, 0);
        assert_ne!(a.rows, b.rows);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let catalog = Catalog::with_cache_capacity(0);
        catalog.register("t", orders(2000, 1));
        catalog.execute("t", &spec()).unwrap();
        assert_eq!(
            catalog
                .execute("t", &spec())
                .unwrap()
                .stats
                .result_cache_hits,
            0
        );
    }

    #[test]
    fn schema_mismatch_rejected() {
        let catalog = Catalog::new();
        catalog.register("t", orders(1000, 1));
        let other_schema = Table::build(
            TableSchema::new(&[("x", DType::U32)]),
            &[ColumnData::U32(vec![1, 2, 3])],
            &[CompressionPolicy::None],
            64,
        )
        .unwrap();
        assert!(catalog.add_shard("t", other_schema).is_err());
        assert!(ShardedTable::new(vec![]).is_err());
    }

    #[test]
    fn drop_and_introspection() {
        let catalog = Catalog::new();
        catalog.register("a", orders(1000, 1));
        catalog
            .register_sharded("b", shard_table(&orders(2000, 1), 2).unwrap())
            .unwrap();
        assert_eq!(catalog.tables(), vec!["a".to_string(), "b".to_string()]);
        let (b, _) = catalog.get("b").unwrap();
        assert_eq!(b.shard_count(), 2);
        assert_eq!(b.num_rows(), 2000);
        assert!(catalog.drop_table("a"));
        assert!(!catalog.drop_table("a"));
        assert!(catalog.execute("a", &spec()).is_err());
    }

    #[test]
    fn sharded_matches_builder_stats_shape() {
        // Sharding must not change *what* is measured: segment and row
        // accounting summed over disjoint shards equals the
        // single-table run. (Pushdown tier counters may be *lower*:
        // shard pruning answers whole shards from table-level ranges
        // without consulting each segment's zone map.)
        let table = orders(4000, 1);
        let sharded = ShardedTable::new(shard_table(&table, 4).unwrap()).unwrap();
        let single = QueryBuilder::scan(&table)
            .filter("day", Predicate::Range { lo: 5, hi: 14 })
            .aggregate(&[Agg::Sum("qty"), Agg::Count])
            .execute()
            .unwrap();
        let fanned = sharded.execute(&spec()).unwrap();
        assert_eq!(fanned.rows, single.rows);
        assert_eq!(fanned.stats.segments, single.stats.segments);
        assert_eq!(fanned.stats.segments_pruned, single.stats.segments_pruned);
        assert_eq!(fanned.stats.segments_loaded, single.stats.segments_loaded);
        assert_eq!(
            fanned.stats.rows_materialized,
            single.stats.rows_materialized
        );
        assert_eq!(fanned.stats.values_processed, single.stats.values_processed);
        assert!(
            fanned.stats.pushdown.zonemap_hits <= single.stats.pushdown.zonemap_hits,
            "shard pruning replaces per-segment zone checks, never adds them"
        );
    }

    #[test]
    fn out_of_range_shards_are_pruned_before_any_source_access() {
        // Days 1..=20 in shard 0, 1001..=1020 in shard 1.
        let near = orders(2000, 1);
        let far = orders(2000, 1001);
        let sharded = ShardedTable::new(vec![near, far]).unwrap();
        let per_shard_segments = sharded.shards()[0].num_segments();

        // Bounds inside shard 0's range exclude shard 1 wholesale.
        let got = sharded.execute(&spec()).unwrap();
        assert_eq!(got.stats.shards_pruned, 1, "{:?}", got.stats);
        // The pruned shard's segments count as visited-and-pruned, so
        // fan-in accounting still covers the whole table...
        assert_eq!(
            got.stats.segments,
            sharded.shards().iter().map(|s| s.num_segments()).sum()
        );
        assert!(got.stats.segments_pruned >= per_shard_segments);
        // ...and the answer only reflects shard 0.
        let want = spec().bind(&sharded.shards()[0]).execute().unwrap();
        assert_eq!(got.rows, want.rows);

        // A disjunctive clause prunes only when *every* leaf misses.
        let half_in = QuerySpec::new()
            .filter_any(&[
                ("day", Predicate::Range { lo: 5, hi: 14 }),
                ("day", Predicate::Range { lo: 1005, hi: 1014 }),
            ])
            .aggregate(&[Agg::Count]);
        let both = sharded.execute(&half_in).unwrap();
        assert_eq!(both.stats.shards_pruned, 0, "{:?}", both.stats);

        // Bounds that miss every shard prune everything; the answer is
        // a well-formed zero row.
        let nowhere = QuerySpec::new()
            .filter("day", Predicate::Range { lo: 5000, hi: 6000 })
            .aggregate(&[Agg::Sum("qty"), Agg::Count]);
        let empty = sharded.execute(&nowhere).unwrap();
        assert_eq!(empty.stats.shards_pruned, 2);
        assert_eq!(empty.stats.segments_loaded, 0);
        assert_eq!(empty.aggregates().unwrap(), &[Some(0), Some(0)]);
    }
}
