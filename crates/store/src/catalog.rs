//! The catalog: named tables, horizontal shards, versions, and a
//! plan-keyed result cache.
//!
//! A [`Catalog`] is the multi-table face of the store:
//!
//! * **Registration** — tables are registered under names, singly or as
//!   a [`ShardedTable`] (N tables with one schema). Every mutation —
//!   register, replace, [`Catalog::add_shard`], drop — stamps the entry
//!   with a fresh value of one catalog-wide monotonic version counter.
//! * **Scan fan-in** — a [`crate::QuerySpec`] executed against a
//!   sharded table first *prunes whole shards* whose per-column key
//!   ranges the spec's bounds exclude (no source touched, visible as
//!   [`QueryStats::shards_pruned`]), then runs the same compiled plan
//!   over every surviving shard through **one shared morsel pool** —
//!   all shards' segments in a single work queue, all workers pulling
//!   from it — and merges the per-shard sink states and [`QueryStats`]
//!   associatively: the same merge the intra-table parallel executor
//!   uses, one level up.
//! * **Result caching** — results are cached under
//!   `(table name, plan fingerprint)` and validated against the entry's
//!   version: a version bump silently invalidates every cached result
//!   for that table. A hit is visible as
//!   [`QueryStats::result_cache_hits`] `== 1` (a hit's other counters
//!   are zero — nothing executed).
//!
//! * **Ingest** — [`Catalog::ingest`] is the write path: a row batch is
//!   encoded into fresh compressed segments (per-column scheme choice,
//!   zone maps and scheme tags exactly like built data), routed to the
//!   owning shard by key range when the table was registered with a
//!   routing key ([`Catalog::register_sharded_keyed`] /
//!   [`ShardedTable::with_key`]; a batch spanning ranges is split), and
//!   published atomically under **one** version bump — in-flight
//!   queries keep their pre-ingest snapshot, every cached result for
//!   the table stops being served, and the next identical query
//!   re-executes over the new rows.
//!
//! Tables may mix backends freely: resident shards, lazily-backed
//! shards ([`crate::file::open_table_lazy`]), or both.

use crate::query::{
    run_plans, ExecOptions, JoinRight, QueryResult, QuerySpec, QueryStats, SinkState,
};
use crate::schema::TableSchema;
use crate::table::Table;
use crate::{Result, StoreError};
use lcdc_core::ColumnData;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Default number of cached query results per catalog.
pub const DEFAULT_RESULT_CACHE: usize = 128;

/// Default byte budget for cached result payloads per catalog (32 MiB).
/// Result sizes vary wildly between sinks — one high-cardinality
/// group-by can outweigh thousands of single-row aggregates — so the
/// cache is bounded by what the entries *hold*, not how many there are
/// (see [`Catalog::with_cache_budget`]).
pub const DEFAULT_RESULT_CACHE_BYTES: usize = 32 << 20;

/// Write-time placement for a sharded table: the routing key column
/// and the ordered key boundaries between shards. Shard `i` owns every
/// key `<=` `uppers[i]` (and above shard `i-1`'s bound); the last
/// shard owns everything past the last bound — so a key exactly *on* a
/// boundary lands in the lower shard, and keys outside every observed
/// range still have exactly one owner. Derived from the shards'
/// per-column key ranges at registration
/// ([`ShardedTable::with_key`]), which must ascend without overlapping
/// (touching at a boundary value is fine): the same table-level zone
/// maps read-time shard pruning intersects, now steering writes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardRouting {
    key: String,
    /// One boundary per adjacent shard pair (`shards - 1` entries).
    uppers: Vec<i128>,
}

impl ShardRouting {
    /// The routing key column.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The key boundaries between adjacent shards.
    pub fn uppers(&self) -> &[i128] {
        &self.uppers
    }

    /// The shard owning `key`: the first whose upper bound is not
    /// below it, else the last.
    pub fn shard_of(&self, key: i128) -> usize {
        self.uppers.partition_point(|&upper| upper < key)
    }
}

/// N tables sharing one schema, queried as one. Shards are typically
/// row-disjoint horizontal partitions (see [`shard_table`]), but the
/// catalog only requires schema agreement — each shard answers for its
/// own rows and the fan-in merges. Registering with a routing key
/// ([`ShardedTable::with_key`]) additionally gives the table write-time
/// placement: ingested batches are split along the shard key ranges.
#[derive(Debug, Clone)]
pub struct ShardedTable {
    schema: TableSchema,
    shards: Vec<Arc<Table>>,
    num_rows: usize,
    routing: Option<ShardRouting>,
}

impl ShardedTable {
    /// Assemble from at least one shard; all shards must share a schema.
    pub fn new(shards: Vec<Table>) -> Result<ShardedTable> {
        let mut iter = shards.into_iter();
        let first = iter
            .next()
            .ok_or_else(|| StoreError::Shape("a sharded table needs at least one shard".into()))?;
        let schema = first.schema().clone();
        let mut arcs = vec![Arc::new(first)];
        for (i, shard) in iter.enumerate() {
            if shard.schema() != &schema {
                return Err(StoreError::Shape(format!(
                    "shard {} schema differs from shard 0",
                    i + 1
                )));
            }
            arcs.push(Arc::new(shard));
        }
        let num_rows = arcs.iter().map(|s| s.num_rows()).sum();
        Ok(ShardedTable {
            schema,
            shards: arcs,
            num_rows,
            routing: None,
        })
    }

    /// Assemble like [`ShardedTable::new`] *and* derive write-time
    /// routing from `key`: each shard's `[min, max]` over the key
    /// column (resident metadata) must ascend in shard order without
    /// overlapping (ranges may touch at a boundary value — the shared
    /// key routes to the lower shard), and the boundaries between them
    /// become the batch splitter [`Catalog::ingest`] routes by.
    pub fn with_key(shards: Vec<Table>, key: &str) -> Result<ShardedTable> {
        let mut sharded = ShardedTable::new(shards)?;
        sharded.routing = Some(derive_routing(&sharded.shards, key)?);
        Ok(sharded)
    }

    /// The write-time placement policy, if one was derived at assembly.
    pub fn routing(&self) -> Option<&ShardRouting> {
        self.routing.as_ref()
    }

    /// Split a row batch (columns aligned with the schema) into one
    /// per-shard batch along the routing key's shard boundaries. Parts
    /// come back in shard order; a shard the batch does not touch gets
    /// empty columns. Errors when the table has no routing key or the
    /// batch does not match the schema.
    pub fn partition_batch(&self, columns: &[ColumnData]) -> Result<Vec<Vec<ColumnData>>> {
        let routing = self.routing.as_ref().ok_or_else(|| {
            StoreError::Shape(
                "table has no routing key: register with ShardedTable::with_key \
                 (or Catalog::register_sharded_keyed) to route ingest batches"
                    .into(),
            )
        })?;
        if columns.len() != self.schema.width() {
            return Err(StoreError::Shape(format!(
                "ingest batch has {} columns, schema has {}",
                columns.len(),
                self.schema.width()
            )));
        }
        let rows = columns.first().map_or(0, ColumnData::len);
        for (i, col) in columns.iter().enumerate() {
            if col.len() != rows {
                return Err(StoreError::Shape(format!(
                    "ingest column {} has {} rows, expected {rows}",
                    self.schema.columns[i].name,
                    col.len()
                )));
            }
            if col.dtype() != self.schema.columns[i].dtype {
                return Err(StoreError::Shape(format!(
                    "ingest column {} is {:?}, schema says {:?}",
                    self.schema.columns[i].name,
                    col.dtype(),
                    self.schema.columns[i].dtype
                )));
            }
        }
        let key_idx = self
            .schema
            .index_of(&routing.key)
            .ok_or_else(|| StoreError::NoSuchColumn(routing.key.clone()))?;
        // One bucketing pass over the rows, gathering every column's
        // transport value into the owning shard's buckets — dtypes
        // survive the round-trip exactly, and the cost stays
        // O(rows x columns) no matter how many shards there are.
        let mut buckets: Vec<Vec<Vec<u64>>> =
            vec![vec![Vec::new(); columns.len()]; self.shards.len()];
        for row in 0..rows {
            let target = routing.shard_of(
                columns[key_idx]
                    .get_numeric(row)
                    .expect("row index in range"),
            );
            for (slot, col) in columns.iter().enumerate() {
                buckets[target][slot].push(col.get_transport(row).expect("row index in range"));
            }
        }
        Ok(buckets
            .into_iter()
            .map(|shard_cols| {
                shard_cols
                    .into_iter()
                    .zip(columns)
                    .map(|(picked, col)| ColumnData::from_transport(col.dtype(), picked))
                    .collect()
            })
            .collect())
    }

    /// The shared schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// The shards, in registration order.
    pub fn shards(&self) -> &[Arc<Table>] {
        &self.shards
    }

    /// Total rows across shards.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Payload fetches that hit a backing store so far, across shards.
    pub fn io_reads(&self) -> usize {
        self.shards.iter().map(|s| s.io_reads()).sum()
    }

    /// Run `spec` over the shards with one shared worker pool: every
    /// live shard's segments become morsels in a single queue that all
    /// `threads` workers pull from, so a slow shard borrows the idle
    /// shards' workers instead of tail-blocking its own. Before any
    /// source is touched, **shard pruning** intersects the spec's
    /// bounds with each shard's per-column key range (resident segment
    /// metadata): a shard the bounds exclude contributes its segment
    /// count to `segments` / `segments_pruned` (and bumps
    /// [`QueryStats::shards_pruned`]) but is never visited or read —
    /// nor compiled, except shard 0 when *every* shard is pruned, which
    /// compiles once purely to shape the empty result.
    /// `QueryStats` are otherwise the sum over shards, exactly
    /// as parallel partials merge within one table.
    pub fn execute_parallel(&self, spec: &QuerySpec, threads: usize) -> Result<QueryResult> {
        self.execute_opts(spec, &ExecOptions::threads(threads))
    }

    /// [`Self::execute_parallel`] with explicit [`ExecOptions`]
    /// (worker count plus prefetch depth for lazily-backed shards).
    pub fn execute_opts(&self, spec: &QuerySpec, opts: &ExecOptions) -> Result<QueryResult> {
        self.execute_opts_join(spec, opts, None)
    }

    /// [`Self::execute_opts`] with a join's right side already resolved
    /// — every live shard's plan carries the same shared right-side
    /// handle, so shard-to-shard join work interleaves in the one
    /// morsel queue like any other sink.
    pub(crate) fn execute_opts_join(
        &self,
        spec: &QuerySpec,
        opts: &ExecOptions,
        right: Option<&Arc<JoinRight>>,
    ) -> Result<QueryResult> {
        let mut pruned = QueryStats::default();
        let mut live: Vec<&Arc<Table>> = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            if shard_excluded(shard, spec) {
                pruned.shards_pruned += 1;
                pruned.segments += shard.num_segments();
                pruned.segments_pruned += shard.num_segments();
            } else {
                live.push(shard);
            }
        }
        // Shards share a schema, so any shard's compiled plan shapes
        // the result: the first live plan does double duty, and only an
        // all-pruned fan-in compiles (against shard 0, purely for the
        // sink shape) without executing.
        let (shape, state, mut stats) = if live.is_empty() {
            let shape = spec.compile_join(&self.shards[0], false, right)?;
            let state = SinkState::for_sink(&shape.sink);
            (shape, state, QueryStats::default())
        } else {
            let plans = live
                .iter()
                .map(|shard| spec.compile_join(shard, false, right))
                .collect::<Result<Vec<_>>>()?;
            let (state, stats) = run_plans(&plans, opts)?;
            let shape = plans.into_iter().next().expect("live is non-empty");
            (shape, state, stats)
        };
        stats.absorb(&pruned);
        QueryResult::from_state(&shape, state, stats)
    }

    /// Sequential [`Self::execute_parallel`].
    pub fn execute(&self, spec: &QuerySpec) -> Result<QueryResult> {
        self.execute_parallel(spec, 1)
    }

    /// A new sharded table with `columns` appended: split along the
    /// routing key's shard boundaries when the table has one
    /// ([`Self::partition_batch`]), appended whole to the *last* shard
    /// otherwise (log-style placement — the only shard whose key range
    /// growing upward cannot overlap a neighbour). Untouched shards
    /// share their `Arc` handles; nothing is re-encoded.
    pub fn append_batch(&self, columns: &[ColumnData]) -> Result<ShardedTable> {
        let rows = columns.first().map_or(0, ColumnData::len);
        let mut shards: Vec<Arc<Table>> = Vec::with_capacity(self.shards.len());
        if self.routing.is_some() {
            let parts = self.partition_batch(columns)?;
            for (shard, part) in self.shards.iter().zip(&parts) {
                if part.first().map_or(0, ColumnData::len) == 0 {
                    shards.push(Arc::clone(shard));
                } else {
                    shards.push(Arc::new(shard.append(part)?));
                }
            }
        } else {
            let (last, head) = self.shards.split_last().expect("at least one shard");
            shards.extend(head.iter().cloned());
            shards.push(Arc::new(last.append(columns)?));
        }
        Ok(ShardedTable {
            schema: self.schema.clone(),
            shards,
            num_rows: self.num_rows + rows,
            routing: self.routing.clone(),
        })
    }
}

/// Derive [`ShardRouting`] over `key` from the shards' per-column key
/// ranges: every shard must hold rows (an empty shard has no range to
/// own), and the ranges must ascend in shard order without
/// overlapping. Ranges that *touch* at a boundary value are accepted —
/// a table split on segment boundaries (see [`shard_table`]) routinely
/// has one key straddling the cut — and the shared key routes to the
/// lower shard, consistent with [`ShardRouting::shard_of`].
fn derive_routing(shards: &[Arc<Table>], key: &str) -> Result<ShardRouting> {
    let idx = shards[0]
        .schema()
        .index_of(key)
        .ok_or_else(|| StoreError::NoSuchColumn(key.to_string()))?;
    let mut ranges = Vec::with_capacity(shards.len());
    for (i, shard) in shards.iter().enumerate() {
        let range = shard.column_range(idx).ok_or_else(|| {
            StoreError::Shape(format!(
                "shard {i} holds no rows: cannot derive a key range to route by"
            ))
        })?;
        ranges.push(range);
    }
    for (i, window) in ranges.windows(2).enumerate() {
        let ((_, hi), (lo, _)) = (window[0], window[1]);
        if hi > lo {
            return Err(StoreError::Shape(format!(
                "shard {i} key range ends at {hi} but shard {} starts at {lo}: \
                 key ranges must ascend without overlapping to route writes",
                i + 1
            )));
        }
    }
    Ok(ShardRouting {
        key: key.to_string(),
        uppers: ranges[..ranges.len() - 1]
            .iter()
            .map(|&(_, hi)| hi)
            .collect(),
    })
}

/// Whether `spec`'s bounds prove `shard` holds no matching row, from
/// the shard's per-column `[min, max]` alone — a table-level zone map.
/// A CNF excludes the shard when any clause does; a (possibly
/// disjunctive) clause excludes it only when *every* leaf is disjoint
/// from its column's shard range. Unknown columns never prune here —
/// compilation reports them properly.
pub(crate) fn shard_excluded(shard: &Table, spec: &QuerySpec) -> bool {
    spec.clauses.iter().any(|clause| {
        !clause.is_empty()
            && clause.iter().all(|(column, predicate)| {
                shard
                    .schema()
                    .index_of(column)
                    .and_then(|idx| shard.column_range(idx))
                    .map(|(lo, hi)| predicate.zone_decides(lo, hi) == Some(false))
                    .unwrap_or(false)
            })
    })
}

/// Split a table into `shards` row-disjoint tables along contiguous
/// segment ranges (segments are never split, so shard sizes differ by
/// at most one segment). Shards *share* the original's segment payloads
/// (`Arc` handles, zero copies). The inverse of registering the pieces
/// as one [`ShardedTable`]: queries over the shards answer exactly like
/// queries over `table`.
pub fn shard_table(table: &Table, shards: usize) -> Result<Vec<Table>> {
    let num_segments = table.num_segments();
    let shards = shards.clamp(1, num_segments.max(1));
    // Balanced split: the first `num_segments % shards` shards take one
    // extra segment, so exactly `shards` shards come back and sizes
    // differ by at most one.
    let base = num_segments / shards;
    let extra = num_segments % shards;
    // Fetch every column's segments once (loads lazily-backed tables).
    let mut columns: Vec<Vec<Arc<crate::segment::Segment>>> =
        Vec::with_capacity(table.schema().width());
    for col in &table.schema().columns {
        columns.push(table.column_segments(&col.name)?);
    }
    let mut out = Vec::with_capacity(shards);
    let mut start = 0usize;
    for shard_idx in 0..shards {
        let end = start + base + usize::from(shard_idx < extra);
        let sources: Vec<Arc<dyn crate::source::SegmentSource>> = columns
            .iter()
            .map(|col| {
                Arc::new(crate::source::ResidentSource::from_arcs(
                    col[start..end].to_vec(),
                )) as Arc<dyn crate::source::SegmentSource>
            })
            .collect();
        let rows: usize = columns
            .first()
            .map_or(0, |col| col[start..end].iter().map(|s| s.num_rows()).sum());
        out.push(Table::from_sources(
            table.schema().clone(),
            sources,
            rows,
            table.seg_rows(),
        )?);
        start = end;
    }
    Ok(out)
}

/// A catalog entry's table, single or sharded.
#[derive(Debug, Clone)]
pub enum CatalogTable {
    /// One table.
    Single(Arc<Table>),
    /// A horizontally sharded table.
    Sharded(Arc<ShardedTable>),
}

impl CatalogTable {
    /// The schema.
    pub fn schema(&self) -> &TableSchema {
        match self {
            CatalogTable::Single(t) => t.schema(),
            CatalogTable::Sharded(s) => s.schema(),
        }
    }

    /// Total rows.
    pub fn num_rows(&self) -> usize {
        match self {
            CatalogTable::Single(t) => t.num_rows(),
            CatalogTable::Sharded(s) => s.num_rows(),
        }
    }

    /// Number of shards (1 for a single table).
    pub fn shard_count(&self) -> usize {
        match self {
            CatalogTable::Single(_) => 1,
            CatalogTable::Sharded(s) => s.shards().len(),
        }
    }

    /// Payload fetches that hit a backing store so far.
    pub fn io_reads(&self) -> usize {
        match self {
            CatalogTable::Single(t) => t.io_reads(),
            CatalogTable::Sharded(s) => s.io_reads(),
        }
    }

    /// Run `spec` against this snapshot with explicit [`ExecOptions`]
    /// — the execution half of [`Catalog::execute_versioned_with`]'s
    /// seam: the catalog hands a closure this handle, and the closure
    /// decides how to execute against it (here, or on a server's
    /// shared worker pool). A spec carrying a join must go through
    /// [`Self::execute_opts_join`] (the catalog resolves the right
    /// side); without one this is identical.
    pub fn execute_opts(&self, spec: &QuerySpec, opts: &ExecOptions) -> Result<QueryResult> {
        self.execute_opts_join(spec, opts, None)
    }

    /// [`Self::execute_opts`] with the join's right side resolved — the
    /// two-table entry point [`Catalog::execute_versioned_with`] hands
    /// its closure when the spec carries a [`crate::JoinSpec`].
    pub fn execute_opts_join(
        &self,
        spec: &QuerySpec,
        opts: &ExecOptions,
        join: Option<&ResolvedJoin>,
    ) -> Result<QueryResult> {
        let right = join.map(|j| &j.right);
        match self {
            CatalogTable::Single(t) => {
                let plan = spec.compile_join(t, false, right)?;
                let (state, stats) = run_plans(std::slice::from_ref(&plan), opts)?;
                QueryResult::from_state(&plan, state, stats)
            }
            CatalogTable::Sharded(s) => s.execute_opts_join(spec, opts, right),
        }
    }
}

/// A join's right side, resolved against the same catalog snapshot as
/// the left table: the right entry's shards (one for a single table)
/// plus the version the capture saw. The version is what the result
/// cache validates alongside the left table's, so a cached join stops
/// being served the moment *either* table mutates.
#[derive(Debug, Clone)]
pub struct ResolvedJoin {
    pub(crate) right: Arc<JoinRight>,
    version: u64,
}

impl ResolvedJoin {
    /// The right table's catalog version at resolution time.
    pub fn version(&self) -> u64 {
        self.version
    }
}

/// Resolve `on` against the right table and capture its shard handles.
fn resolve_join(table: &CatalogTable, on: &str, version: u64) -> Result<ResolvedJoin> {
    let key = table
        .schema()
        .index_of(on)
        .ok_or_else(|| StoreError::NoSuchColumn(on.to_string()))?;
    let shards = match table {
        CatalogTable::Single(t) => vec![Arc::clone(t)],
        CatalogTable::Sharded(s) => s.shards().to_vec(),
    };
    Ok(ResolvedJoin {
        right: Arc::new(JoinRight { shards, key }),
        version,
    })
}

#[derive(Debug, Clone)]
struct Entry {
    table: CatalogTable,
    version: u64,
}

#[derive(Debug, Clone)]
struct CachedResult {
    version: u64,
    /// The join's right-table version at execution, when the plan
    /// joined: a cached join must be validated against *both* tables,
    /// or an ingest into the right side would keep serving stale pairs
    /// (the left entry's version never moved).
    join_version: Option<u64>,
    /// The exact plan that produced `result`. The fingerprint indexes
    /// the cache, but 64-bit FNV is not collision-free — a hit is only
    /// served after this spec compares equal to the query's.
    spec: QuerySpec,
    result: QueryResult,
    /// The result's payload footprint, computed once at admission and
    /// charged against the cache's byte budget.
    bytes: usize,
}

/// Result cache over the shared [`crate::source`] LRU, keyed
/// `(table name, plan fingerprint)` and validated on hit against both
/// the entry's table version and its full spec. Entries are behind an
/// `Arc`, so a probe is an `Arc` bump — the (possibly large) rows are
/// cloned only for validated hits.
///
/// Bounded twice: by entry count (the LRU's capacity) and by **total
/// payload bytes** — result sizes vary wildly between aggregates,
/// top-k, and high-cardinality group-bys, so admission evicts least
/// recent entries until the new result fits the byte budget, and a
/// result larger than the whole budget is simply not cached.
#[derive(Debug)]
struct ResultCache {
    lru: crate::source::LruCache<(String, u64), Arc<CachedResult>>,
    /// Total payload bytes the cache may hold (0 disables caching).
    budget: usize,
    /// Payload bytes currently held.
    held: usize,
}

impl ResultCache {
    /// A validated entry, handed back as an `Arc` so the caller clones
    /// the (possibly large) rows *after* releasing the cache lock.
    fn get(
        &mut self,
        key: &(String, u64),
        spec: &QuerySpec,
        version: u64,
        join_version: Option<u64>,
    ) -> Option<Arc<CachedResult>> {
        let cached = self.lru.get(key)?;
        if cached.version != version || cached.join_version != join_version {
            // Stale: the table (or a join's right table) mutated since
            // this was cached.
            self.held = self.held.saturating_sub(cached.bytes);
            self.lru.remove(key);
            return None;
        }
        if &cached.spec != spec {
            // Fingerprint collision between distinct plans: never serve
            // another query's rows (the newer plan will overwrite).
            return None;
        }
        Some(cached)
    }

    fn put(&mut self, key: (String, u64), entry: Arc<CachedResult>) {
        if entry.bytes > self.budget {
            // Larger than the whole budget: caching it would evict
            // everything and still not fit.
            return;
        }
        // Evict least recent until the newcomer's payload fits.
        while self.held + entry.bytes > self.budget {
            match self.lru.pop_lru() {
                Some((_, dropped)) => self.held = self.held.saturating_sub(dropped.bytes),
                None => break,
            }
        }
        self.lru.put(key, entry);
        // Recount rather than increment: the LRU's own entry-count
        // bound may have evicted, and a same-key put replaces silently.
        // O(entries), with entries capped in the low hundreds.
        self.held = self.lru.values().map(|e| e.bytes).sum();
    }

    fn purge_table(&mut self, name: &str) {
        self.lru.retain(|(table, _)| table != name);
        self.held = self.lru.values().map(|e| e.bytes).sum();
    }
}

/// Named tables with versions and a result cache. All methods take
/// `&self`: the catalog is internally synchronised and meant to be
/// shared (`Arc<Catalog>`) across query threads.
///
/// ```
/// use lcdc_core::{ColumnData, DType};
/// use lcdc_store::{Agg, Catalog, CompressionPolicy, QuerySpec, Table, TableSchema};
///
/// let table = Table::build(
///     TableSchema::new(&[("qty", DType::U64)]),
///     &[ColumnData::U64((0..2000).map(|i| 1 + i % 50).collect())],
///     &[CompressionPolicy::Auto],
///     256,
/// )
/// .unwrap();
/// let catalog = Catalog::new();
/// catalog.register("orders", table);
///
/// let spec = QuerySpec::new().aggregate(&[Agg::Sum("qty")]);
/// let first = catalog.execute("orders", &spec).unwrap();
/// assert_eq!(first.stats.result_cache_hits, 0);
/// // The identical plan against the same table version is a cache hit:
/// // nothing executes, the rows come back verbatim.
/// let again = catalog.execute("orders", &spec).unwrap();
/// assert_eq!(again.stats.result_cache_hits, 1);
/// assert_eq!(again.rows, first.rows);
/// ```
#[derive(Debug)]
pub struct Catalog {
    tables: RwLock<HashMap<String, Entry>>,
    cache: Mutex<ResultCache>,
    cache_capacity: usize,
    cache_budget: usize,
    next_version: AtomicU64,
}

impl Default for Catalog {
    fn default() -> Self {
        Catalog::new()
    }
}

impl Catalog {
    /// An empty catalog with the default result-cache bounds
    /// ([`DEFAULT_RESULT_CACHE`] entries, [`DEFAULT_RESULT_CACHE_BYTES`]
    /// of payload).
    pub fn new() -> Catalog {
        Catalog::with_cache_bounds(DEFAULT_RESULT_CACHE, DEFAULT_RESULT_CACHE_BYTES)
    }

    /// An empty catalog caching at most `capacity` query results
    /// (0 disables result caching), under the default byte budget.
    pub fn with_cache_capacity(capacity: usize) -> Catalog {
        Catalog::with_cache_bounds(capacity, DEFAULT_RESULT_CACHE_BYTES)
    }

    /// An empty catalog whose result cache holds at most `budget` bytes
    /// of cached row payloads (0 disables result caching), under the
    /// default entry capacity. Admission evicts least recent results
    /// until the newcomer fits; a single result larger than the whole
    /// budget is never cached.
    pub fn with_cache_budget(budget: usize) -> Catalog {
        Catalog::with_cache_bounds(DEFAULT_RESULT_CACHE, budget)
    }

    /// An empty catalog with explicit entry and byte bounds on the
    /// result cache (either at 0 disables caching).
    pub fn with_cache_bounds(capacity: usize, budget: usize) -> Catalog {
        Catalog {
            tables: RwLock::new(HashMap::new()),
            cache_capacity: capacity,
            cache_budget: budget,
            cache: Mutex::new(ResultCache {
                lru: crate::source::LruCache::new(capacity),
                budget,
                held: 0,
            }),
            next_version: AtomicU64::new(1),
        }
    }

    /// The result cache's payload byte budget.
    pub fn cache_budget(&self) -> usize {
        self.cache_budget
    }

    fn bump(&self) -> u64 {
        // ordering: unique-ticket counter; the version becomes visible
        // to readers via the tables lock, not via this atomic.
        self.next_version.fetch_add(1, Ordering::Relaxed)
    }

    /// Register (or replace) a single table under `name`. Returns the
    /// entry's new version.
    pub fn register(&self, name: &str, table: Table) -> u64 {
        self.install(name, CatalogTable::Single(Arc::new(table)))
    }

    /// Register (or replace) a sharded table under `name`. Returns the
    /// entry's new version.
    pub fn register_sharded(&self, name: &str, shards: Vec<Table>) -> Result<u64> {
        let sharded = ShardedTable::new(shards)?;
        Ok(self.install(name, CatalogTable::Sharded(Arc::new(sharded))))
    }

    /// Register (or replace) a sharded table with a routing key
    /// ([`ShardedTable::with_key`]): reads prune shards by the key
    /// ranges, and [`Catalog::ingest`] batches split along them.
    /// Returns the entry's new version.
    pub fn register_sharded_keyed(&self, name: &str, shards: Vec<Table>, key: &str) -> Result<u64> {
        let sharded = ShardedTable::with_key(shards, key)?;
        Ok(self.install(name, CatalogTable::Sharded(Arc::new(sharded))))
    }

    /// Ingest a row batch into the named table — the write path.
    ///
    /// The batch (columns aligned with the table's schema, exactly as
    /// in [`Table::build`]) is encoded into fresh compressed segments
    /// through the per-column scheme chooser, routed to the owning
    /// shard(s) by key range when the table is sharded with a routing
    /// key (a batch spanning ranges is split; an unrouted sharded
    /// table appends log-style to its last shard), and published
    /// atomically under **one** version bump regardless of how many
    /// shards the batch touched. Queries that already fetched their
    /// snapshot keep reading the pre-ingest tables; every cached
    /// result for `name` stops being served the moment the bump lands,
    /// so a repeated query re-executes over the new rows. An empty
    /// batch is a no-op: nothing changes, nothing is invalidated, and
    /// the current version comes back.
    ///
    /// Encoding runs under the catalog's table lock, so concurrent
    /// catalog *mutations* serialize, and a query arriving mid-ingest
    /// waits on its initial snapshot fetch until the encode finishes.
    /// Queries that already fetched their snapshot are unaffected —
    /// they execute on cloned handles, outside every catalog lock.
    /// (Moving the encode outside the lock is a noted follow-on for
    /// when ingest concurrency matters.)
    ///
    /// Returns the entry's post-ingest version.
    ///
    /// ```
    /// use lcdc_core::{ColumnData, DType};
    /// use lcdc_store::{Agg, Catalog, CompressionPolicy, Predicate, QuerySpec, Table, TableSchema};
    ///
    /// let build = |days: std::ops::Range<u64>| {
    ///     Table::build(
    ///         TableSchema::new(&[("day", DType::U64)]),
    ///         &[ColumnData::U64(days.collect())],
    ///         &[CompressionPolicy::Auto],
    ///         64,
    ///     )
    ///     .unwrap()
    /// };
    /// let catalog = Catalog::new();
    /// let v1 = catalog
    ///     .register_sharded_keyed("orders", vec![build(0..100), build(100..200)], "day")
    ///     .unwrap();
    ///
    /// let spec = QuerySpec::new()
    ///     .filter("day", Predicate::Range { lo: 0, hi: 1000 })
    ///     .aggregate(&[Agg::Count]);
    /// assert_eq!(
    ///     catalog.execute("orders", &spec).unwrap().aggregates().unwrap(),
    ///     &[Some(200)]
    /// );
    ///
    /// // The batch spans both shard key ranges; the version bumps once
    /// // and the repeated query re-executes instead of serving the
    /// // cached 200.
    /// let v2 = catalog
    ///     .ingest("orders", &[ColumnData::U64(vec![50, 150])])
    ///     .unwrap();
    /// assert_eq!(v2, v1 + 1);
    /// let after = catalog.execute("orders", &spec).unwrap();
    /// assert_eq!(after.stats.result_cache_hits, 0);
    /// assert_eq!(after.aggregates().unwrap(), &[Some(202)]);
    /// ```
    pub fn ingest(&self, name: &str, columns: &[ColumnData]) -> Result<u64> {
        let mut tables = self.tables.write().expect("catalog lock");
        let entry = tables
            .get_mut(name)
            .ok_or_else(|| StoreError::NoSuchTable(name.to_string()))?;
        let schema = entry.table.schema();
        if columns.len() != schema.width() {
            return Err(StoreError::Shape(format!(
                "ingest batch has {} columns, table {name} has {}",
                columns.len(),
                schema.width()
            )));
        }
        // Validate shape *before* the empty-batch early return: a
        // ragged batch whose first column happens to be empty must be
        // an error, never a silent no-op that drops the other columns'
        // rows.
        let rows = columns.first().map_or(0, ColumnData::len);
        for (i, col) in columns.iter().enumerate() {
            if col.len() != rows {
                return Err(StoreError::Shape(format!(
                    "ingest column {} has {} rows, expected {rows}",
                    schema.columns[i].name,
                    col.len()
                )));
            }
            if col.dtype() != schema.columns[i].dtype {
                return Err(StoreError::Shape(format!(
                    "ingest column {} is {:?}, schema says {:?}",
                    schema.columns[i].name,
                    col.dtype(),
                    schema.columns[i].dtype
                )));
            }
        }
        if rows == 0 {
            return Ok(entry.version);
        }
        entry.table = match &entry.table {
            CatalogTable::Single(t) => CatalogTable::Single(Arc::new(t.append(columns)?)),
            CatalogTable::Sharded(s) => CatalogTable::Sharded(Arc::new(s.append_batch(columns)?)),
        };
        entry.version = self.bump();
        let version = entry.version;
        drop(tables);
        self.cache.lock().expect("cache lock").purge_table(name);
        Ok(version)
    }

    fn install(&self, name: &str, table: CatalogTable) -> u64 {
        let version = self.bump();
        self.tables
            .write()
            .expect("catalog lock")
            .insert(name.to_string(), Entry { table, version });
        self.cache.lock().expect("cache lock").purge_table(name);
        version
    }

    /// Append one shard to `name` (a single table becomes a two-shard
    /// table). The mutation bumps the version, so every cached result
    /// for `name` stops being served. Returns the new version.
    pub fn add_shard(&self, name: &str, shard: Table) -> Result<u64> {
        let mut tables = self.tables.write().expect("catalog lock");
        let entry = tables
            .get_mut(name)
            .ok_or_else(|| StoreError::NoSuchTable(name.to_string()))?;
        let mut shards: Vec<Arc<Table>> = match &entry.table {
            CatalogTable::Single(t) => vec![Arc::clone(t)],
            CatalogTable::Sharded(s) => s.shards().to_vec(),
        };
        let schema = shards[0].schema().clone();
        if shard.schema() != &schema {
            return Err(StoreError::Shape(format!(
                "new shard's schema differs from table {name}"
            )));
        }
        shards.push(Arc::new(shard));
        let num_rows = shards.iter().map(|s| s.num_rows()).sum();
        // A routed table stays routed: the grown shard list must still
        // carry disjoint ascending key ranges, or the mutation is
        // rejected before anything is published.
        let routing = match &entry.table {
            CatalogTable::Sharded(s) => match s.routing() {
                Some(r) => Some(derive_routing(&shards, r.key())?),
                None => None,
            },
            CatalogTable::Single(_) => None,
        };
        entry.table = CatalogTable::Sharded(Arc::new(ShardedTable {
            schema,
            shards,
            num_rows,
            routing,
        }));
        entry.version = self.bump();
        let version = entry.version;
        drop(tables);
        self.cache.lock().expect("cache lock").purge_table(name);
        Ok(version)
    }

    /// Remove a table. Returns whether it existed.
    pub fn drop_table(&self, name: &str) -> bool {
        let existed = self
            .tables
            .write()
            .expect("catalog lock")
            .remove(name)
            .is_some();
        if existed {
            self.cache.lock().expect("cache lock").purge_table(name);
        }
        existed
    }

    /// The registered table and its version, if present.
    pub fn get(&self, name: &str) -> Option<(CatalogTable, u64)> {
        self.tables
            .read()
            .expect("catalog lock")
            .get(name)
            .map(|e| (e.table.clone(), e.version))
    }

    /// A table's current version, if present.
    pub fn version(&self, name: &str) -> Option<u64> {
        self.get(name).map(|(_, v)| v)
    }

    /// Registered table names, sorted.
    pub fn tables(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .tables
            .read()
            .expect("catalog lock")
            .keys()
            .cloned()
            .collect();
        names.sort_unstable();
        names
    }

    /// Execute `spec` against the named table, serving from the result
    /// cache when an identical plan already ran against the same table
    /// version. A cache hit returns the cached rows with fresh stats
    /// whose only nonzero counter is `result_cache_hits == 1`.
    pub fn execute(&self, name: &str, spec: &QuerySpec) -> Result<QueryResult> {
        self.execute_parallel(name, spec, 1)
    }

    /// [`Self::execute`] with `threads` workers pulling from one shared
    /// morsel queue across all shards.
    pub fn execute_parallel(
        &self,
        name: &str,
        spec: &QuerySpec,
        threads: usize,
    ) -> Result<QueryResult> {
        self.execute_opts(name, spec, &ExecOptions::threads(threads))
    }

    /// [`Self::execute`] under explicit [`ExecOptions`] — worker count
    /// plus prefetch depth for lazily-backed shards.
    pub fn execute_opts(
        &self,
        name: &str,
        spec: &QuerySpec,
        opts: &ExecOptions,
    ) -> Result<QueryResult> {
        self.execute_versioned_with(name, spec, |table, join| {
            table.execute_opts_join(spec, opts, join)
        })
        .map(|(result, _)| result)
    }

    /// The cache-wrapping core of [`Self::execute_opts`], with the
    /// execution strategy injected and the **table version the answer
    /// was computed against** returned alongside the result — the
    /// snapshot tag a serving layer stamps on every wire response, so a
    /// client racing [`Self::ingest`] can tell exactly which version it
    /// read.
    ///
    /// `run` receives the snapshot [`CatalogTable`] captured *before*
    /// the cache probe — plus the join's right side when the spec
    /// carries one, resolved against the **same** snapshot (one pass
    /// under the tables lock, so a join never pairs a pre-ingest left
    /// with a post-ingest right) — and is only called on a miss; its
    /// result is admitted to the cache under that same captured
    /// version pair, so a concurrent ingest landing mid-execution can
    /// never cause the stale answer to be served against the new
    /// version. The injected strategy is how `lcdc serve` routes
    /// executions onto its shared worker pool while keeping this
    /// cache/version contract — the in-process path injects plain
    /// [`CatalogTable::execute_opts_join`]-style execution.
    pub fn execute_versioned_with<F>(
        &self,
        name: &str,
        spec: &QuerySpec,
        run: F,
    ) -> Result<(QueryResult, u64)>
    where
        F: FnOnce(&CatalogTable, Option<&ResolvedJoin>) -> Result<QueryResult>,
    {
        // Left entry and join right side come from one pass under the
        // tables read lock: the snapshot the closure executes against
        // is a consistent cut across both tables.
        let (table, version, join) = {
            let tables = self.tables.read().expect("catalog lock");
            let entry = tables
                .get(name)
                .ok_or_else(|| StoreError::NoSuchTable(name.to_string()))?;
            let join = match spec.join_spec() {
                Some(js) => {
                    let rentry = tables
                        .get(&js.table)
                        .ok_or_else(|| StoreError::NoSuchTable(js.table.clone()))?;
                    Some(resolve_join(&rentry.table, &js.on, rentry.version)?)
                }
                None => None,
            };
            (entry.table.clone(), entry.version, join)
        };
        let join_version = join.as_ref().map(ResolvedJoin::version);
        let key = (name.to_string(), spec.fingerprint());
        // Hold the cache lock only for validation; clone the (possibly
        // large) rows after releasing it so other queries never wait
        // behind the copy.
        let hit = self
            .cache
            .lock()
            .expect("cache lock")
            .get(&key, spec, version, join_version);
        if let Some(cached) = hit {
            return Ok((
                QueryResult {
                    rows: cached.result.rows.clone(),
                    stats: QueryStats {
                        result_cache_hits: 1,
                        ..QueryStats::default()
                    },
                },
                version,
            ));
        }
        let result = run(&table, join.as_ref())?;
        if self.cache_capacity > 0 && self.cache_budget > 0 {
            // Clones happen outside the lock too.
            let entry = Arc::new(CachedResult {
                version,
                join_version,
                spec: spec.clone(),
                bytes: result.payload_bytes(),
                result: result.clone(),
            });
            self.cache.lock().expect("cache lock").put(key, entry);
        }
        Ok((result, version))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::Predicate;
    use crate::query::{Agg, QueryBuilder};
    use crate::segment::CompressionPolicy;
    use lcdc_core::{ColumnData, DType};

    fn orders(n: u64, day_offset: u64) -> Table {
        let schema = TableSchema::new(&[("day", DType::U64), ("qty", DType::U64)]);
        let day = ColumnData::U64((0..n).map(|i| day_offset + i / 100).collect());
        let qty = ColumnData::U64((0..n).map(|i| 1 + i % 50).collect());
        Table::build(
            schema,
            &[day, qty],
            &[CompressionPolicy::Auto, CompressionPolicy::Auto],
            256,
        )
        .unwrap()
    }

    fn spec() -> QuerySpec {
        QuerySpec::new()
            .filter("day", Predicate::Range { lo: 5, hi: 14 })
            .aggregate(&[Agg::Sum("qty"), Agg::Count])
    }

    #[test]
    fn sharded_execution_equals_single_table() {
        let table = orders(6000, 1);
        let want = spec().bind(&table).execute().unwrap();
        for shards in [1usize, 2, 3, 7, 100] {
            let pieces = shard_table(&table, shards).unwrap();
            assert_eq!(pieces.len(), shards.min(table.num_segments()));
            let sizes: Vec<usize> = pieces.iter().map(Table::num_segments).collect();
            let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "unbalanced split {sizes:?}");
            let sharded = ShardedTable::new(pieces).unwrap();
            assert_eq!(sharded.num_rows(), table.num_rows());
            for threads in [1usize, 4] {
                let got = sharded.execute_parallel(&spec(), threads).unwrap();
                assert_eq!(got.rows, want.rows, "{shards} shards x{threads}");
                assert_eq!(got.stats.segments, want.stats.segments, "{shards} shards");
            }
        }
    }

    #[test]
    fn every_sink_survives_sharding() {
        let table = orders(5000, 1);
        let pieces = shard_table(&table, 4).unwrap();
        let sharded = ShardedTable::new(pieces).unwrap();
        let specs = [
            QuerySpec::new()
                .group_by("day")
                .aggregate(&[Agg::Sum("qty")]),
            QuerySpec::new().top_k("qty", 7),
            QuerySpec::new().distinct("day"),
            QuerySpec::new()
                .filter_any(&[
                    ("day", Predicate::Range { lo: 2, hi: 9 }),
                    ("qty", Predicate::Eq(50)),
                ])
                .aggregate(&[Agg::Count]),
        ];
        for (i, s) in specs.iter().enumerate() {
            let single = s.bind(&table).execute().unwrap();
            let fanned = sharded.execute(s).unwrap();
            assert_eq!(fanned.rows, single.rows, "spec {i}");
        }
    }

    #[test]
    fn catalog_serves_repeat_queries_from_cache() {
        let catalog = Catalog::new();
        catalog.register("orders", orders(4000, 1));
        let first = catalog.execute("orders", &spec()).unwrap();
        assert_eq!(first.stats.result_cache_hits, 0);
        assert!(first.stats.segments > 0);
        let second = catalog.execute("orders", &spec()).unwrap();
        assert_eq!(second.rows, first.rows);
        assert_eq!(second.stats.result_cache_hits, 1, "{:?}", second.stats);
        assert_eq!(second.stats.segments, 0, "a hit executes nothing");
        // A different plan is a different key.
        let other = QuerySpec::new().top_k("qty", 3);
        assert_eq!(
            catalog
                .execute("orders", &other)
                .unwrap()
                .stats
                .result_cache_hits,
            0
        );
    }

    #[test]
    fn version_bump_invalidates_cached_results() {
        let catalog = Catalog::new();
        let v1 = catalog.register("orders", orders(4000, 1));
        let first = catalog.execute("orders", &spec()).unwrap();
        // Mutation: a new shard arrives with more rows in range.
        let v2 = catalog.add_shard("orders", orders(2000, 1)).unwrap();
        assert!(v2 > v1, "versions are monotonic");
        let after = catalog.execute("orders", &spec()).unwrap();
        assert_eq!(after.stats.result_cache_hits, 0, "stale result not served");
        assert_ne!(after.rows, first.rows, "new shard contributes rows");
        // And the new result caches under the new version.
        assert_eq!(
            catalog
                .execute("orders", &spec())
                .unwrap()
                .stats
                .result_cache_hits,
            1
        );
    }

    #[test]
    fn replacing_a_table_invalidates_too() {
        let catalog = Catalog::new();
        catalog.register("t", orders(3000, 1));
        let a = catalog.execute("t", &spec()).unwrap();
        catalog.register("t", orders(3000, 1000)); // different days
        let b = catalog.execute("t", &spec()).unwrap();
        assert_eq!(b.stats.result_cache_hits, 0);
        assert_ne!(a.rows, b.rows);
    }

    #[test]
    fn byte_budget_bounds_cached_payload_not_entry_count() {
        // Each distinct top-k result holds k i128s = 16k bytes. A
        // budget of ~2.5 results must keep the two most recent and
        // evict the oldest, regardless of the (large) entry capacity.
        let catalog = Catalog::with_cache_budget(40 * 16);
        assert_eq!(catalog.cache_budget(), 640);
        catalog.register("t", orders(4000, 1));
        let specs: Vec<QuerySpec> = (14..=16)
            .map(|k| QuerySpec::new().top_k("qty", k))
            .collect();
        for spec in &specs {
            catalog.execute("t", spec).unwrap();
        }
        // 14+15+16 = 45 values > 40: the k=14 result was evicted to
        // admit k=16; the newer two still fit (15+16 = 31).
        assert_eq!(
            catalog
                .execute("t", &specs[0])
                .unwrap()
                .stats
                .result_cache_hits,
            0,
            "oldest result evicted by the byte budget"
        );
        // (Re-running spec[0] cached it again, evicting the now-oldest
        // k=15; k=16 survives as most recent before it.)
        assert_eq!(
            catalog
                .execute("t", &specs[2])
                .unwrap()
                .stats
                .result_cache_hits,
            1,
            "recent result retained under the budget"
        );

        // A result bigger than the whole budget is never admitted.
        let tiny = Catalog::with_cache_budget(8);
        tiny.register("t", orders(1000, 1));
        let spec = QuerySpec::new().top_k("qty", 10);
        tiny.execute("t", &spec).unwrap();
        assert_eq!(
            tiny.execute("t", &spec).unwrap().stats.result_cache_hits,
            0,
            "oversized result skipped caching"
        );

        // Budget 0 disables caching like capacity 0 does.
        let off = Catalog::with_cache_budget(0);
        off.register("t", orders(1000, 1));
        off.execute("t", &spec).unwrap();
        assert_eq!(off.execute("t", &spec).unwrap().stats.result_cache_hits, 0);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let catalog = Catalog::with_cache_capacity(0);
        catalog.register("t", orders(2000, 1));
        catalog.execute("t", &spec()).unwrap();
        assert_eq!(
            catalog
                .execute("t", &spec())
                .unwrap()
                .stats
                .result_cache_hits,
            0
        );
    }

    #[test]
    fn schema_mismatch_rejected() {
        let catalog = Catalog::new();
        catalog.register("t", orders(1000, 1));
        let other_schema = Table::build(
            TableSchema::new(&[("x", DType::U32)]),
            &[ColumnData::U32(vec![1, 2, 3])],
            &[CompressionPolicy::None],
            64,
        )
        .unwrap();
        assert!(catalog.add_shard("t", other_schema).is_err());
        assert!(ShardedTable::new(vec![]).is_err());
    }

    #[test]
    fn drop_and_introspection() {
        let catalog = Catalog::new();
        catalog.register("a", orders(1000, 1));
        catalog
            .register_sharded("b", shard_table(&orders(2000, 1), 2).unwrap())
            .unwrap();
        assert_eq!(catalog.tables(), vec!["a".to_string(), "b".to_string()]);
        let (b, _) = catalog.get("b").unwrap();
        assert_eq!(b.shard_count(), 2);
        assert_eq!(b.num_rows(), 2000);
        assert!(catalog.drop_table("a"));
        assert!(!catalog.drop_table("a"));
        assert!(catalog.execute("a", &spec()).is_err());
    }

    #[test]
    fn sharded_matches_builder_stats_shape() {
        // Sharding must not change *what* is measured: segment and row
        // accounting summed over disjoint shards equals the
        // single-table run. (Pushdown tier counters may be *lower*:
        // shard pruning answers whole shards from table-level ranges
        // without consulting each segment's zone map.)
        let table = orders(4000, 1);
        let sharded = ShardedTable::new(shard_table(&table, 4).unwrap()).unwrap();
        let single = QueryBuilder::scan(&table)
            .filter("day", Predicate::Range { lo: 5, hi: 14 })
            .aggregate(&[Agg::Sum("qty"), Agg::Count])
            .execute()
            .unwrap();
        let fanned = sharded.execute(&spec()).unwrap();
        assert_eq!(fanned.rows, single.rows);
        assert_eq!(fanned.stats.segments, single.stats.segments);
        assert_eq!(fanned.stats.segments_pruned, single.stats.segments_pruned);
        assert_eq!(fanned.stats.segments_loaded, single.stats.segments_loaded);
        assert_eq!(
            fanned.stats.rows_materialized,
            single.stats.rows_materialized
        );
        assert_eq!(fanned.stats.values_processed, single.stats.values_processed);
        assert!(
            fanned.stats.pushdown.zonemap_hits <= single.stats.pushdown.zonemap_hits,
            "shard pruning replaces per-segment zone checks, never adds them"
        );
    }

    #[test]
    fn routing_derivation_and_boundaries() {
        // Shard 0 holds days 1..=20, shard 1 holds days 1001..=1020.
        let sharded =
            ShardedTable::with_key(vec![orders(2000, 1), orders(2000, 1001)], "day").unwrap();
        let routing = sharded.routing().unwrap();
        assert_eq!(routing.key(), "day");
        assert_eq!(routing.uppers(), &[20]);
        // On-boundary keys belong to the lower shard; everything past
        // the last bound belongs to the last shard.
        assert_eq!(routing.shard_of(0), 0);
        assert_eq!(routing.shard_of(20), 0, "boundary key stays low");
        assert_eq!(routing.shard_of(21), 1);
        assert_eq!(routing.shard_of(99_999), 1);

        // Overlapping or unordered key ranges are rejected.
        assert!(ShardedTable::with_key(vec![orders(2000, 1), orders(2000, 10)], "day").is_err());
        assert!(ShardedTable::with_key(vec![orders(2000, 1001), orders(2000, 1)], "day").is_err());
        // Ranges touching at one boundary value are fine (a table split
        // on segment boundaries has a key straddling the cut): the
        // shared key routes low.
        let touching =
            ShardedTable::with_key(vec![orders(2000, 1), orders(2000, 20)], "day").unwrap();
        assert_eq!(touching.routing().unwrap().uppers(), &[20]);
        assert_eq!(touching.routing().unwrap().shard_of(20), 0);
        // Unknown key column is rejected.
        assert!(ShardedTable::with_key(vec![orders(2000, 1), orders(2000, 1001)], "nope").is_err());
        // An unkeyed assembly carries no routing.
        assert!(ShardedTable::new(vec![orders(2000, 1)])
            .unwrap()
            .routing()
            .is_none());
    }

    #[test]
    fn partition_batch_splits_along_key_ranges() {
        let sharded =
            ShardedTable::with_key(vec![orders(2000, 1), orders(2000, 1001)], "day").unwrap();
        let day = ColumnData::U64(vec![5, 1010, 20, 21, 1020]);
        let qty = ColumnData::U64(vec![1, 2, 3, 4, 5]);
        let parts = sharded.partition_batch(&[day, qty]).unwrap();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0][0], ColumnData::U64(vec![5, 20]));
        assert_eq!(parts[0][1], ColumnData::U64(vec![1, 3]));
        assert_eq!(parts[1][0], ColumnData::U64(vec![1010, 21, 1020]));
        assert_eq!(parts[1][1], ColumnData::U64(vec![2, 4, 5]));
        // Shape errors surface before any row moves.
        assert!(sharded
            .partition_batch(&[ColumnData::U64(vec![1])])
            .is_err());
        assert!(sharded
            .partition_batch(&[ColumnData::U64(vec![1]), ColumnData::I64(vec![1])])
            .is_err());
        // No routing key: partitioning refuses.
        let unkeyed = ShardedTable::new(vec![orders(2000, 1)]).unwrap();
        assert!(unkeyed
            .partition_batch(&[ColumnData::U64(vec![1]), ColumnData::U64(vec![1])])
            .is_err());
    }

    #[test]
    fn ingest_routes_bumps_once_and_invalidates() {
        let catalog = Catalog::new();
        let v1 = catalog
            .register_sharded_keyed("orders", vec![orders(2000, 1), orders(2000, 1001)], "day")
            .unwrap();
        let cached = catalog.execute("orders", &spec()).unwrap();
        assert_eq!(
            catalog
                .execute("orders", &spec())
                .unwrap()
                .stats
                .result_cache_hits,
            1
        );

        // The batch spans both shard ranges: days 5..=14 (shard 0, in
        // the queried window) and 1010 (shard 1).
        let day = ColumnData::U64(vec![5, 1010, 14]);
        let qty = ColumnData::U64(vec![100, 7, 100]);
        let v2 = catalog.ingest("orders", &[day, qty]).unwrap();
        assert_eq!(v2, v1 + 1, "one bump for a batch spanning two shards");

        let (table, _) = catalog.get("orders").unwrap();
        let CatalogTable::Sharded(sharded) = &table else {
            panic!("stays sharded")
        };
        assert_eq!(sharded.shards()[0].num_rows(), 2002);
        assert_eq!(sharded.shards()[1].num_rows(), 2001);
        assert!(sharded.routing().is_some(), "routing survives ingest");

        // The stale cached result is not served; the re-execution sees
        // the two new in-window rows.
        let after = catalog.execute("orders", &spec()).unwrap();
        assert_eq!(after.stats.result_cache_hits, 0);
        let before_vals = cached.aggregates().unwrap();
        let after_vals = after.aggregates().unwrap();
        assert_eq!(after_vals[1], before_vals[1].map(|c| c + 2));
        assert_eq!(after_vals[0], before_vals[0].map(|s| s + 200));
    }

    #[test]
    fn ingest_single_table_and_empty_batch() {
        let catalog = Catalog::new();
        let v1 = catalog.register("t", orders(1000, 1));
        // Empty batch: no bump, cache untouched.
        let first = catalog.execute("t", &spec()).unwrap();
        let same = catalog
            .ingest("t", &[ColumnData::U64(vec![]), ColumnData::U64(vec![])])
            .unwrap();
        assert_eq!(same, v1);
        assert_eq!(
            catalog
                .execute("t", &spec())
                .unwrap()
                .stats
                .result_cache_hits,
            1,
            "empty ingest keeps serving the cache"
        );
        // A real batch into a single (unsharded) table appends in place.
        let v2 = catalog
            .ingest("t", &[ColumnData::U64(vec![7]), ColumnData::U64(vec![9])])
            .unwrap();
        assert!(v2 > v1);
        let (table, _) = catalog.get("t").unwrap();
        assert!(matches!(table, CatalogTable::Single(_)), "stays single");
        assert_eq!(table.num_rows(), 1001);
        let after = catalog.execute("t", &spec()).unwrap();
        assert_eq!(after.stats.result_cache_hits, 0);
        assert_ne!(after.rows, first.rows);
        // Errors: unknown table, wrong width.
        assert!(catalog.ingest("nope", &[]).is_err());
        assert!(catalog.ingest("t", &[ColumnData::U64(vec![1])]).is_err());
        // A ragged batch whose *first* column is empty must error, not
        // silently drop the other columns' rows as an empty no-op.
        assert!(catalog
            .ingest("t", &[ColumnData::U64(vec![]), ColumnData::U64(vec![1, 2])])
            .is_err());
        // Wrong dtype is caught even for an all-empty batch.
        assert!(catalog
            .ingest("t", &[ColumnData::U64(vec![]), ColumnData::I64(vec![])])
            .is_err());
        assert_eq!(
            catalog.get("t").unwrap().0.num_rows(),
            1001,
            "rejected batches change nothing"
        );
    }

    #[test]
    fn unkeyed_sharded_ingest_appends_log_style() {
        let catalog = Catalog::new();
        catalog
            .register_sharded("t", vec![orders(1000, 1), orders(1000, 1)])
            .unwrap();
        catalog
            .ingest("t", &[ColumnData::U64(vec![50]), ColumnData::U64(vec![1])])
            .unwrap();
        let (table, _) = catalog.get("t").unwrap();
        let CatalogTable::Sharded(sharded) = &table else {
            panic!("stays sharded")
        };
        assert_eq!(sharded.shards()[0].num_rows(), 1000, "head untouched");
        assert_eq!(sharded.shards()[1].num_rows(), 1001, "tail takes the batch");
    }

    #[test]
    fn add_shard_preserves_or_rejects_routing() {
        let catalog = Catalog::new();
        catalog
            .register_sharded_keyed("t", vec![orders(2000, 1), orders(2000, 1001)], "day")
            .unwrap();
        // A shard extending the key order re-derives routing.
        catalog.add_shard("t", orders(2000, 5001)).unwrap();
        let (table, _) = catalog.get("t").unwrap();
        let CatalogTable::Sharded(sharded) = &table else {
            panic!("sharded")
        };
        assert_eq!(sharded.routing().unwrap().uppers(), &[20, 1020]);
        // A shard overlapping existing ranges is rejected outright.
        assert!(catalog.add_shard("t", orders(2000, 1)).is_err());
    }

    #[test]
    fn out_of_range_shards_are_pruned_before_any_source_access() {
        // Days 1..=20 in shard 0, 1001..=1020 in shard 1.
        let near = orders(2000, 1);
        let far = orders(2000, 1001);
        let sharded = ShardedTable::new(vec![near, far]).unwrap();
        let per_shard_segments = sharded.shards()[0].num_segments();

        // Bounds inside shard 0's range exclude shard 1 wholesale.
        let got = sharded.execute(&spec()).unwrap();
        assert_eq!(got.stats.shards_pruned, 1, "{:?}", got.stats);
        // The pruned shard's segments count as visited-and-pruned, so
        // fan-in accounting still covers the whole table...
        assert_eq!(
            got.stats.segments,
            sharded.shards().iter().map(|s| s.num_segments()).sum()
        );
        assert!(got.stats.segments_pruned >= per_shard_segments);
        // ...and the answer only reflects shard 0.
        let want = spec().bind(&sharded.shards()[0]).execute().unwrap();
        assert_eq!(got.rows, want.rows);

        // A disjunctive clause prunes only when *every* leaf misses.
        let half_in = QuerySpec::new()
            .filter_any(&[
                ("day", Predicate::Range { lo: 5, hi: 14 }),
                ("day", Predicate::Range { lo: 1005, hi: 1014 }),
            ])
            .aggregate(&[Agg::Count]);
        let both = sharded.execute(&half_in).unwrap();
        assert_eq!(both.stats.shards_pruned, 0, "{:?}", both.stats);

        // Bounds that miss every shard prune everything; the answer is
        // a well-formed zero row.
        let nowhere = QuerySpec::new()
            .filter("day", Predicate::Range { lo: 5000, hi: 6000 })
            .aggregate(&[Agg::Sum("qty"), Agg::Count]);
        let empty = sharded.execute(&nowhere).unwrap();
        assert_eq!(empty.stats.shards_pruned, 2);
        assert_eq!(empty.stats.segments_loaded, 0);
        assert_eq!(empty.aggregates().unwrap(), &[Some(0), Some(0)]);
    }
}
