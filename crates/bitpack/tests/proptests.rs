//! Property-based round-trip tests for the packing kernels.

use lcdc_bitpack::pack::Packed;
use lcdc_bitpack::width::{bits_needed_u64, max_width, width_percentile};
use lcdc_bitpack::zigzag::{zigzag_decode_i64, zigzag_encode_i64};
use lcdc_bitpack::BlockPacked;
use proptest::prelude::*;

fn values_at_width(width: u32, max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    let mask = if width == 0 {
        0
    } else if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    prop::collection::vec(any::<u64>().prop_map(move |v| v & mask), 0..max_len)
}

proptest! {
    #[test]
    fn flat_pack_round_trips(width in 0u32..=64, seed in any::<u64>()) {
        let mut rng = seed;
        let mask = if width == 0 { 0 } else if width == 64 { u64::MAX } else { (1u64 << width) - 1 };
        let values: Vec<u64> = (0..257).map(|_| {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            rng & mask
        }).collect();
        let packed = Packed::pack(&values, width).unwrap();
        prop_assert_eq!(packed.unpack(), values);
    }

    #[test]
    fn flat_pack_arbitrary_values(values in values_at_width(17, 500)) {
        let packed = Packed::pack(&values, 17).unwrap();
        prop_assert_eq!(packed.unpack(), values.clone());
        // Random access agrees with bulk unpack.
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(packed.get(i), Some(v));
        }
    }

    #[test]
    fn minimal_width_is_tight(values in prop::collection::vec(any::<u64>(), 1..200)) {
        let w = max_width(&values);
        // Everything fits at w...
        prop_assert!(Packed::pack(&values, w).is_ok());
        // ...and at least one value fails at w-1 (when w > 0).
        if w > 0 {
            prop_assert!(Packed::pack(&values, w - 1).is_err());
        }
    }

    #[test]
    fn block_pack_round_trips(values in prop::collection::vec(any::<u64>(), 0..700)) {
        let b = BlockPacked::pack(&values);
        b.validate().unwrap();
        prop_assert_eq!(b.unpack(), values.clone());
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(b.get(i), Some(v));
        }
    }

    #[test]
    fn block_never_beaten_by_flat_on_payload(values in prop::collection::vec(any::<u64>(), 1..700)) {
        // Per-block widths are at most the global width, so the per-block
        // *payload* (excluding the 1-byte/block header) never exceeds the
        // flat payload.
        let b = BlockPacked::pack(&values);
        let flat = Packed::pack(&values, max_width(&values)).unwrap();
        let block_payload = b.total_bytes() - b.num_blocks();
        // Rounding to whole words per block can cost up to 7 bytes/block.
        prop_assert!(block_payload <= flat.payload_bytes() + 8 * b.num_blocks());
    }

    #[test]
    fn zigzag_round_trips(v in any::<i64>()) {
        prop_assert_eq!(zigzag_decode_i64(zigzag_encode_i64(v)), v);
    }

    #[test]
    fn zigzag_is_monotone_in_magnitude(a in -1_000_000i64..1_000_000, b in -1_000_000i64..1_000_000) {
        if a.unsigned_abs() < b.unsigned_abs() {
            prop_assert!(zigzag_encode_i64(a) < 2 * zigzag_encode_i64(b).max(1));
        }
    }

    #[test]
    fn percentile_width_covers_fraction(values in prop::collection::vec(any::<u64>(), 1..300), num in 0u32..=100) {
        let fraction = num as f64 / 100.0;
        let w = width_percentile(&values, fraction);
        let fitting = values.iter().filter(|&&v| bits_needed_u64(v) <= w).count();
        prop_assert!(fitting as f64 >= fraction * values.len() as f64 - 1e-9);
    }
}
