//! Zigzag mapping between signed and unsigned integers.
//!
//! DELTA deltas and model residuals (paper §II-B: the frame need not be
//! below the data) are small in magnitude but signed. Zigzag interleaves
//! positive and negative values — `0, -1, 1, -2, 2, …` → `0, 1, 2, 3, 4, …`
//! — so that small-magnitude signed values become small unsigned values
//! and NS can pack them narrowly.

/// Map a signed value to its zigzag unsigned form.
#[inline]
pub fn zigzag_encode_i64(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode_i64`].
#[inline]
pub fn zigzag_decode_i64(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encode a slice of signed values into a fresh vector.
pub fn zigzag_encode_slice(values: &[i64]) -> Vec<u64> {
    values.iter().map(|&v| zigzag_encode_i64(v)).collect()
}

/// Decode a slice of zigzag values into a fresh vector.
pub fn zigzag_decode_slice(values: &[u64]) -> Vec<i64> {
    values.iter().map(|&v| zigzag_decode_i64(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_interleave() {
        assert_eq!(zigzag_encode_i64(0), 0);
        assert_eq!(zigzag_encode_i64(-1), 1);
        assert_eq!(zigzag_encode_i64(1), 2);
        assert_eq!(zigzag_encode_i64(-2), 3);
        assert_eq!(zigzag_encode_i64(2), 4);
    }

    #[test]
    fn extremes_round_trip() {
        for v in [i64::MIN, i64::MIN + 1, -1, 0, 1, i64::MAX - 1, i64::MAX] {
            assert_eq!(zigzag_decode_i64(zigzag_encode_i64(v)), v, "value {v}");
        }
    }

    #[test]
    fn slice_round_trip() {
        let values = vec![-5i64, 0, 3, i64::MIN, i64::MAX, 42, -42];
        let encoded = zigzag_encode_slice(&values);
        assert_eq!(zigzag_decode_slice(&encoded), values);
    }

    #[test]
    fn magnitude_is_preserved_in_width() {
        // |v| <= 2^(k-1) implies zigzag(v) < 2^k: width grows by exactly
        // one bit, which is what makes zigzag+NS effective for residuals.
        for k in 1..63 {
            let bound = 1i64 << (k - 1);
            for v in [-bound, bound - 1, bound] {
                let enc = zigzag_encode_i64(v);
                assert!(
                    crate::width::bits_needed_u64(enc) <= k + 1,
                    "v={v} k={k} enc={enc}"
                );
            }
        }
    }
}
