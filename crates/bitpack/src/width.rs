//! Bit-width measurement utilities.
//!
//! The NS scheme is parameterised by a width `w`; choosing `w` requires
//! scanning the data. These helpers compute exact maxima, histograms and
//! percentiles of per-value widths. Percentiles drive the *patched*
//! variants (paper §II-B, the L0-metric generalisation): pick a width that
//! covers, say, 99 % of values and store the rest as exceptions.

/// Number of bits needed to represent `v` exactly.
///
/// `bits_needed_u64(0) == 0`: a column of zeros packs into zero bits.
#[inline]
pub fn bits_needed_u64(v: u64) -> u32 {
    64 - v.leading_zeros()
}

/// The smallest width that represents every value in `values`.
///
/// Returns 0 for an empty slice or an all-zero slice.
pub fn max_width(values: &[u64]) -> u32 {
    // A single OR-reduction is cheaper than per-element `bits_needed`:
    // the width of the OR of all values equals the max width.
    let folded = values.iter().fold(0u64, |acc, &v| acc | v);
    bits_needed_u64(folded)
}

/// Histogram of per-value widths: `hist[w]` counts values needing exactly
/// `w` bits, for `w` in `0..=64`.
pub fn width_histogram(values: &[u64]) -> [usize; 65] {
    let mut hist = [0usize; 65];
    for &v in values {
        hist[bits_needed_u64(v) as usize] += 1;
    }
    hist
}

/// The smallest width `w` such that at least `fraction` of the values fit
/// in `w` bits. `fraction` is clamped to `0.0..=1.0`.
///
/// Returns 0 for an empty slice. This is the width-selection rule for
/// patched (exception-based) schemes.
pub fn width_percentile(values: &[u64], fraction: f64) -> u32 {
    if values.is_empty() {
        return 0;
    }
    let fraction = fraction.clamp(0.0, 1.0);
    let need = (fraction * values.len() as f64).ceil() as usize;
    let hist = width_histogram(values);
    let mut cum = 0usize;
    for (w, &count) in hist.iter().enumerate() {
        cum += count;
        if cum >= need {
            return w as u32;
        }
    }
    64
}

/// Total packed payload size, in bytes, of `n` values at `width` bits
/// (rounded up to whole 64-bit words, matching [`crate::pack::Packed`]).
pub fn packed_bytes(n: usize, width: u32) -> usize {
    let bits = n as u128 * width as u128;
    let words = bits.div_ceil(64) as usize;
    words * 8
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_needed_edges() {
        assert_eq!(bits_needed_u64(0), 0);
        assert_eq!(bits_needed_u64(1), 1);
        assert_eq!(bits_needed_u64(2), 2);
        assert_eq!(bits_needed_u64(3), 2);
        assert_eq!(bits_needed_u64(255), 8);
        assert_eq!(bits_needed_u64(256), 9);
        assert_eq!(bits_needed_u64(u64::MAX), 64);
        assert_eq!(bits_needed_u64(1 << 63), 64);
    }

    #[test]
    fn max_width_basic() {
        assert_eq!(max_width(&[]), 0);
        assert_eq!(max_width(&[0, 0, 0]), 0);
        assert_eq!(max_width(&[1, 2, 3]), 2);
        assert_eq!(max_width(&[7, 255, 3]), 8);
        assert_eq!(max_width(&[u64::MAX]), 64);
    }

    #[test]
    fn histogram_counts_every_value() {
        let values = [0u64, 1, 1, 3, 8, 255, 256];
        let hist = width_histogram(&values);
        assert_eq!(hist[0], 1);
        assert_eq!(hist[1], 2);
        assert_eq!(hist[2], 1);
        assert_eq!(hist[4], 1);
        assert_eq!(hist[8], 1);
        assert_eq!(hist[9], 1);
        assert_eq!(hist.iter().sum::<usize>(), values.len());
    }

    #[test]
    fn percentile_selects_covering_width() {
        // 90 small values, 10 large ones.
        let mut values = vec![3u64; 90];
        values.extend(std::iter::repeat_n(1_000_000u64, 10));
        assert_eq!(width_percentile(&values, 0.9), 2);
        assert_eq!(width_percentile(&values, 1.0), 20);
        assert_eq!(width_percentile(&[], 0.5), 0);
    }

    #[test]
    fn percentile_fraction_clamped() {
        let values = [1u64, 2, 4];
        assert_eq!(width_percentile(&values, -1.0), 0);
        assert_eq!(width_percentile(&values, 2.0), 3);
    }

    #[test]
    fn packed_bytes_rounding() {
        assert_eq!(packed_bytes(0, 13), 0);
        assert_eq!(packed_bytes(1, 13), 8);
        assert_eq!(packed_bytes(64, 1), 8);
        assert_eq!(packed_bytes(65, 1), 16);
        assert_eq!(packed_bytes(100, 0), 0);
    }
}
