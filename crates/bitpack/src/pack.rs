//! Flat bit packing: the whole column at one width.
//!
//! Values are laid out LSB-first in a dense stream of 64-bit words:
//! value `i` occupies bits `i*w .. (i+1)*w` of the stream. Width 0 packs
//! any number of zeros into zero words; width 64 is a plain copy.

use crate::{Error, Result};

/// A bit-packed buffer: `len` values of `width` bits each.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packed {
    words: Vec<u64>,
    width: u32,
    len: usize,
}

impl Packed {
    /// Pack `values` at `width` bits each.
    ///
    /// Errors with [`Error::ValueTooWide`] if any value needs more than
    /// `width` bits, and [`Error::WidthOutOfRange`] if `width > 64`.
    pub fn pack(values: &[u64], width: u32) -> Result<Self> {
        if width > 64 {
            return Err(Error::WidthOutOfRange(width));
        }
        if width == 0 {
            if let Some(index) = values.iter().position(|&v| v != 0) {
                return Err(Error::ValueTooWide {
                    index,
                    value: values[index],
                    width,
                });
            }
            return Ok(Packed {
                words: Vec::new(),
                width,
                len: values.len(),
            });
        }
        if width == 64 {
            return Ok(Packed {
                words: values.to_vec(),
                width,
                len: values.len(),
            });
        }
        let mask = (1u64 << width) - 1;
        if let Some(index) = values.iter().position(|&v| v & !mask != 0) {
            return Err(Error::ValueTooWide {
                index,
                value: values[index],
                width,
            });
        }
        let total_bits = values.len() as u128 * width as u128;
        let n_words = total_bits.div_ceil(64) as usize;
        let mut words = vec![0u64; n_words];
        let mut bit_pos = 0usize;
        for &v in values {
            let word = bit_pos >> 6;
            let offset = (bit_pos & 63) as u32;
            words[word] |= v << offset;
            if offset + width > 64 {
                words[word + 1] |= v >> (64 - offset);
            }
            bit_pos += width as usize;
        }
        Ok(Packed {
            words,
            width,
            len: values.len(),
        })
    }

    /// Reconstruct a `Packed` from raw parts (e.g. after deserialisation).
    ///
    /// Validates the word count against `len * width`.
    pub fn from_raw_parts(words: Vec<u64>, width: u32, len: usize) -> Result<Self> {
        if width > 64 {
            return Err(Error::WidthOutOfRange(width));
        }
        let expected = (len as u128 * width as u128).div_ceil(64) as usize;
        if words.len() != expected {
            return Err(Error::Corrupt("word count does not match len*width"));
        }
        Ok(Packed { words, width, len })
    }

    /// Number of packed values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The per-value bit width.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The backing words.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Payload size in bytes (words only, excluding struct metadata).
    pub fn payload_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Random access: the value at index `i`, or `None` out of bounds.
    ///
    /// This is the NS scheme's O(1) positional access — one of the
    /// operational advantages lightweight schemes keep over heavyweight
    /// ones.
    pub fn get(&self, i: usize) -> Option<u64> {
        if i >= self.len {
            return None;
        }
        if self.width == 0 {
            return Some(0);
        }
        if self.width == 64 {
            return Some(self.words[i]);
        }
        let bit_pos = i * self.width as usize;
        let word = bit_pos >> 6;
        let offset = (bit_pos & 63) as u32;
        let mask = (1u64 << self.width) - 1;
        let mut v = self.words[word] >> offset;
        if offset + self.width > 64 {
            v |= self.words[word + 1] << (64 - offset);
        }
        Some(v & mask)
    }

    /// Unpack the whole buffer into a fresh vector.
    pub fn unpack(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.len];
        self.unpack_into(&mut out);
        out
    }

    /// Unpack into a caller-provided slice of exactly `len()` elements.
    ///
    /// # Panics
    /// Panics if `out.len() != self.len()`.
    pub fn unpack_into(&self, out: &mut [u64]) {
        assert_eq!(out.len(), self.len, "output slice length mismatch");
        match self.width {
            0 => out.fill(0),
            64 => out.copy_from_slice(&self.words),
            w => unpack_generic(&self.words, w, out),
        }
    }

    /// Iterate over the packed values without materialising them.
    pub fn iter(&self) -> PackedIter<'_> {
        PackedIter {
            packed: self,
            idx: 0,
        }
    }
}

/// Iterator over the values of a [`Packed`] buffer.
pub struct PackedIter<'a> {
    packed: &'a Packed,
    idx: usize,
}

impl Iterator for PackedIter<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let v = self.packed.get(self.idx)?;
        self.idx += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.packed.len - self.idx;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for PackedIter<'_> {}

fn unpack_generic(words: &[u64], width: u32, out: &mut [u64]) {
    let mask = (1u64 << width) - 1;
    let mut bit_pos = 0usize;
    for slot in out.iter_mut() {
        let word = bit_pos >> 6;
        let offset = (bit_pos & 63) as u32;
        let mut v = words[word] >> offset;
        if offset + width > 64 {
            v |= words[word + 1] << (64 - offset);
        }
        *slot = v & mask;
        bit_pos += width as usize;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_any_width() {
        for w in [0, 1, 13, 64] {
            let p = Packed::pack(&[], w).unwrap();
            assert_eq!(p.len(), 0);
            assert!(p.is_empty());
            assert_eq!(p.unpack(), Vec::<u64>::new());
        }
    }

    #[test]
    fn width_zero_packs_zeros_only() {
        let p = Packed::pack(&[0, 0, 0], 0).unwrap();
        assert_eq!(p.payload_bytes(), 0);
        assert_eq!(p.unpack(), vec![0, 0, 0]);
        assert_eq!(
            Packed::pack(&[0, 1], 0),
            Err(Error::ValueTooWide {
                index: 1,
                value: 1,
                width: 0
            })
        );
    }

    #[test]
    fn width_65_rejected() {
        assert_eq!(Packed::pack(&[1], 65), Err(Error::WidthOutOfRange(65)));
    }

    #[test]
    fn too_wide_value_rejected() {
        assert_eq!(
            Packed::pack(&[7, 8], 3),
            Err(Error::ValueTooWide {
                index: 1,
                value: 8,
                width: 3
            })
        );
    }

    #[test]
    fn round_trip_every_width() {
        for width in 1..=64u32 {
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let values: Vec<u64> = (0..200u64)
                .map(|i| (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)) & mask)
                .collect();
            let p = Packed::pack(&values, width).unwrap();
            assert_eq!(p.unpack(), values, "width {width}");
        }
    }

    #[test]
    fn random_access_matches_unpack() {
        let values: Vec<u64> = (0..100).map(|i| i * 37 % 8192).collect();
        let p = Packed::pack(&values, 13).unwrap();
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(p.get(i), Some(v));
        }
        assert_eq!(p.get(values.len()), None);
    }

    #[test]
    fn iterator_yields_all_values() {
        let values: Vec<u64> = (0..67).collect();
        let p = Packed::pack(&values, 7).unwrap();
        let collected: Vec<u64> = p.iter().collect();
        assert_eq!(collected, values);
        assert_eq!(p.iter().len(), 67);
    }

    #[test]
    fn word_boundary_straddling() {
        // Width 13 straddles 64-bit boundaries regularly; check the exact
        // values around the first boundary.
        let values: Vec<u64> = (0..10).map(|i| 0x1000 + i).collect();
        let p = Packed::pack(&values, 13).unwrap();
        assert_eq!(p.unpack(), values);
    }

    #[test]
    fn from_raw_parts_validates() {
        let p = Packed::pack(&[1, 2, 3], 2).unwrap();
        let rebuilt = Packed::from_raw_parts(p.words().to_vec(), 2, 3).unwrap();
        assert_eq!(rebuilt.unpack(), vec![1, 2, 3]);
        assert!(Packed::from_raw_parts(vec![], 2, 3).is_err());
        assert!(Packed::from_raw_parts(vec![0; 10], 2, 3).is_err());
        assert!(Packed::from_raw_parts(vec![], 65, 0).is_err());
    }

    #[test]
    fn payload_bytes_matches_width_module() {
        for (n, w) in [(100usize, 13u32), (64, 1), (1, 64), (0, 7)] {
            let values = vec![0u64; n];
            let p = Packed::pack(&values, w).unwrap();
            assert_eq!(p.payload_bytes(), crate::width::packed_bytes(n, w));
        }
    }
}
