//! Mini-block packing with a per-block width.
//!
//! This is the backend of the paper's "variable-width encoding for the
//! offsets column" (§II-B, the per-element-bit-metric generalisation of
//! FOR). Instead of one global width, values are grouped into fixed-size
//! blocks of [`BLOCK_LEN`] and each block is packed at the smallest width
//! covering its own values. Locally-narrow regions then cost few bits even
//! when other regions are wide.

use crate::pack::Packed;
use crate::width::max_width;
use crate::{Error, Result};

/// Number of values per mini-block. 128 matches common practice
/// (cache-line multiples, Parquet/PFor-style miniblocks).
pub const BLOCK_LEN: usize = 128;

/// A column packed block-by-block, each block at its own width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockPacked {
    /// One width per block (`widths.len() == ceil(len / BLOCK_LEN)`).
    widths: Vec<u8>,
    /// Concatenated per-block payloads.
    blocks: Vec<Packed>,
    len: usize,
}

impl BlockPacked {
    /// Pack `values`, choosing each block's width independently.
    pub fn pack(values: &[u64]) -> Self {
        let mut widths = Vec::with_capacity(values.len().div_ceil(BLOCK_LEN));
        let mut blocks = Vec::with_capacity(widths.capacity());
        for chunk in values.chunks(BLOCK_LEN) {
            let w = max_width(chunk);
            widths.push(w as u8);
            // The width was just measured over the chunk, so pack cannot
            // fail.
            blocks.push(Packed::pack(chunk, w).expect("measured width must fit"));
        }
        BlockPacked {
            widths,
            blocks,
            len: values.len(),
        }
    }

    /// Number of packed values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer holds no values.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Per-block widths.
    pub fn widths(&self) -> &[u8] {
        &self.widths
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total size in bytes: payload plus one byte per block for its width.
    pub fn total_bytes(&self) -> usize {
        self.blocks.iter().map(Packed::payload_bytes).sum::<usize>() + self.widths.len()
    }

    /// Random access to the value at `i`.
    pub fn get(&self, i: usize) -> Option<u64> {
        if i >= self.len {
            return None;
        }
        self.blocks[i / BLOCK_LEN].get(i % BLOCK_LEN)
    }

    /// Unpack the whole buffer.
    pub fn unpack(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.len];
        self.unpack_into(&mut out);
        out
    }

    /// Unpack into a caller-provided slice of exactly `len()` elements.
    ///
    /// # Panics
    /// Panics if `out.len() != self.len()`.
    pub fn unpack_into(&self, out: &mut [u64]) {
        assert_eq!(out.len(), self.len, "output slice length mismatch");
        for (block, chunk) in self.blocks.iter().zip(out.chunks_mut(BLOCK_LEN)) {
            block.unpack_into(chunk);
        }
    }

    /// Validate internal consistency (block count, per-block lengths).
    pub fn validate(&self) -> Result<()> {
        if self.widths.len() != self.blocks.len() {
            return Err(Error::Corrupt("widths/blocks count mismatch"));
        }
        if self.blocks.len() != self.len.div_ceil(BLOCK_LEN) {
            return Err(Error::Corrupt("block count does not match len"));
        }
        let mut remaining = self.len;
        for block in &self.blocks {
            let expect = remaining.min(BLOCK_LEN);
            if block.len() != expect {
                return Err(Error::Corrupt("block length mismatch"));
            }
            remaining -= expect;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        let b = BlockPacked::pack(&[]);
        assert!(b.is_empty());
        assert_eq!(b.num_blocks(), 0);
        assert_eq!(b.unpack(), Vec::<u64>::new());
        b.validate().unwrap();
    }

    #[test]
    fn single_partial_block() {
        let values: Vec<u64> = (0..10).collect();
        let b = BlockPacked::pack(&values);
        assert_eq!(b.num_blocks(), 1);
        assert_eq!(b.widths(), &[4]);
        assert_eq!(b.unpack(), values);
        b.validate().unwrap();
    }

    #[test]
    fn exact_block_boundary() {
        let values: Vec<u64> = (0..BLOCK_LEN as u64 * 2).collect();
        let b = BlockPacked::pack(&values);
        assert_eq!(b.num_blocks(), 2);
        assert_eq!(b.unpack(), values);
    }

    #[test]
    fn per_block_widths_differ() {
        // First block tiny values, second block huge: per-block widths
        // must reflect that, and total size must beat global-width packing.
        let mut values = vec![1u64; BLOCK_LEN];
        values.extend(std::iter::repeat_n(u64::MAX / 2, BLOCK_LEN));
        let b = BlockPacked::pack(&values);
        assert_eq!(b.widths()[0], 1);
        assert_eq!(b.widths()[1], 63);
        let global = Packed::pack(&values, 63).unwrap();
        assert!(b.total_bytes() < global.payload_bytes());
    }

    #[test]
    fn random_access() {
        let values: Vec<u64> = (0..300).map(|i| i * i % 1000).collect();
        let b = BlockPacked::pack(&values);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(b.get(i), Some(v), "index {i}");
        }
        assert_eq!(b.get(300), None);
    }

    #[test]
    fn unpack_into_partial_tail() {
        let values: Vec<u64> = (0..BLOCK_LEN as u64 + 17).collect();
        let b = BlockPacked::pack(&values);
        let mut out = vec![0u64; values.len()];
        b.unpack_into(&mut out);
        assert_eq!(out, values);
    }
}
