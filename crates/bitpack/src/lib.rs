//! # lcdc-bitpack
//!
//! Arbitrary-bit-width integer packing — the kernel layer behind the
//! Null-Suppression (**NS**) compression scheme of the paper.
//!
//! NS "discards redundant bits": a column whose values all fit in `w` bits
//! is stored as a dense bit stream of `w`-bit fields. This crate provides:
//!
//! * [`width`] — bit-width measurement utilities (`bits_needed`,
//!   width histograms, percentile widths for patched schemes),
//! * [`zigzag`] — the standard signed↔unsigned mapping so deltas and
//!   residuals can be packed as narrow non-negative integers,
//! * [`pack`] — the flat packer: one global width for the whole column,
//! * [`block`] — a mini-block format with a per-block width, the backend
//!   of the paper's "variable-width offsets" generalisation of FOR (§II-B).
//!
//! All kernels are pure, allocation-explicit, and panic-free: fallible
//! operations return [`Error`].

pub mod block;
pub mod pack;
pub mod width;
pub mod zigzag;

pub use block::{BlockPacked, BLOCK_LEN};
pub use pack::Packed;
pub use width::{bits_needed_u64, max_width, width_histogram, width_percentile};
pub use zigzag::{zigzag_decode_i64, zigzag_encode_i64};

/// Errors produced by packing kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Requested width is outside `0..=64`.
    WidthOutOfRange(u32),
    /// A value does not fit in the requested width.
    ValueTooWide {
        /// Index of the offending value in the input slice.
        index: usize,
        /// The value itself.
        value: u64,
        /// The width it was required to fit in.
        width: u32,
    },
    /// A packed buffer is inconsistent (wrong word count for its
    /// declared length/width) — indicates corruption.
    Corrupt(&'static str),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::WidthOutOfRange(w) => write!(f, "bit width {w} outside 0..=64"),
            Error::ValueTooWide {
                index,
                value,
                width,
            } => {
                write!(
                    f,
                    "value {value} at index {index} does not fit in {width} bits"
                )
            }
            Error::Corrupt(msg) => write!(f, "corrupt packed buffer: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, Error>;
