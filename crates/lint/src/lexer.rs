//! A hand-rolled, lossless-enough Rust lexer.
//!
//! The rule engine needs exactly four guarantees from this pass, and
//! nothing resembling a full grammar:
//!
//! 1. text inside **string literals** (plain, raw `r#"…"#`, byte) is
//!    never mistaken for code — `"unwrap()"` in an error message is not
//!    a finding;
//! 2. text inside **comments** (line, doc, nested block) is never
//!    mistaken for code, while the comment *text* stays available for
//!    annotation scanning (`// lint: allow(...)`, `// ordering: …`);
//! 3. **char literals vs lifetimes** are told apart (`'a'` is a
//!    literal, `<'a>` is not the start of one), so a stray quote cannot
//!    desynchronise the rest of the file;
//! 4. every token knows its **line**, so findings are clickable.
//!
//! Everything else (keywords vs identifiers, number grammar subtleties)
//! is left to the rules, which work on identifier/punctuation shapes.

/// What a token is, at the resolution the rules care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Identifier or keyword (`unwrap`, `fn`, `Ordering`, …).
    Ident,
    /// One punctuation character (`.`, `[`, `::` arrives as two `:`).
    Punct,
    /// Numeric literal, suffix included.
    Num,
    /// String literal of any flavour; `text` is the raw source slice.
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A lifetime (`'a`) — kept distinct so it is never a `Char`.
    Lifetime,
    /// Line or block comment, text preserved verbatim.
    Comment,
}

/// One lexed token: kind, verbatim text, and 1-based line numbers.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token's class.
    pub kind: Kind,
    /// The verbatim source text of the token.
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
    /// 1-based line the token ends on (differs for block comments and
    /// multi-line strings).
    pub end_line: u32,
}

impl Token {
    fn at(kind: Kind, text: impl Into<String>, line: u32) -> Token {
        let text = text.into();
        Token {
            kind,
            end_line: line,
            text,
            line,
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into tokens. Never fails: malformed input (unterminated
/// string, lone quote) degrades into best-effort tokens rather than an
/// error, because a linter must keep walking the rest of the file.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consume one char, tracking newlines.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                'r' | 'b' if self.raw_or_byte_prefix() => {}
                '\'' => self.char_or_lifetime(),
                c if is_ident_start(c) => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                _ => {
                    let line = self.line;
                    let c = match self.bump() {
                        Some(c) => c,
                        None => break,
                    };
                    self.out.push(Token::at(Kind::Punct, c.to_string(), line));
                }
            }
        }
        self.out
    }

    fn line_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.out.push(Token::at(Kind::Comment, text, line));
    }

    fn block_comment(&mut self) {
        let line = self.line;
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        let mut tok = Token::at(Kind::Comment, text, line);
        tok.end_line = self.line;
        self.out.push(tok);
    }

    /// A `"`-delimited string with `\`-escapes.
    fn string(&mut self) {
        let line = self.line;
        let mut text = String::new();
        if let Some(c) = self.bump() {
            text.push(c); // opening quote
        }
        while let Some(c) = self.bump() {
            text.push(c);
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                '"' => break,
                _ => {}
            }
        }
        let mut tok = Token::at(Kind::Str, text, line);
        tok.end_line = self.line;
        self.out.push(tok);
    }

    /// Handle `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'…'`. Returns true
    /// if it consumed a literal; false means the `r`/`b` begins a plain
    /// identifier and the caller should lex it as one.
    fn raw_or_byte_prefix(&mut self) -> bool {
        let mut ahead = 1; // past the r/b
        let first = self.peek(0);
        if first == Some('b') && self.peek(1) == Some('r') {
            ahead = 2;
        }
        if first == Some('b') && self.peek(1) == Some('\'') {
            // byte char literal b'x'
            let line = self.line;
            let mut text = String::new();
            if let Some(c) = self.bump() {
                text.push(c);
            }
            self.char_literal_into(&mut text);
            self.out.push(Token::at(Kind::Char, text, line));
            return true;
        }
        let mut hashes = 0;
        while self.peek(ahead) == Some('#') {
            hashes += 1;
            ahead += 1;
        }
        if self.peek(ahead) != Some('"') {
            return false; // an identifier like `rows` or `bound`
        }
        let line = self.line;
        let mut text = String::new();
        for _ in 0..(ahead + 1) {
            if let Some(c) = self.bump() {
                text.push(c); // prefix, hashes, opening quote
            }
        }
        let closer: String = std::iter::once('"')
            .chain(std::iter::repeat_n('#', hashes))
            .collect();
        let mut tail = String::new();
        while let Some(c) = self.bump() {
            text.push(c);
            tail.push(c);
            if tail.ends_with(&closer) {
                break;
            }
        }
        let mut tok = Token::at(Kind::Str, text, line);
        tok.end_line = self.line;
        self.out.push(tok);
        true
    }

    /// Past an opening `'`: decide lifetime vs char literal. A lifetime
    /// is `'ident` NOT followed by another `'`; everything else that
    /// closes with `'` is a char literal.
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        // 'a', '\n', '\'', '\\', '\u{1F600}' are chars; 'a or 'static
        // (ident not closed by ') are lifetimes.
        let next = self.peek(1);
        let is_lifetime = match next {
            Some(c) if is_ident_start(c) => {
                // scan the identifier; lifetime iff not closed by '
                let mut ahead = 2;
                while self.peek(ahead).is_some_and(is_ident_continue) {
                    ahead += 1;
                }
                self.peek(ahead) != Some('\'')
            }
            _ => false,
        };
        if is_lifetime {
            let mut text = String::new();
            if let Some(c) = self.bump() {
                text.push(c);
            }
            while self.peek(0).is_some_and(is_ident_continue) {
                if let Some(c) = self.bump() {
                    text.push(c);
                }
            }
            self.out.push(Token::at(Kind::Lifetime, text, line));
        } else {
            let mut text = String::new();
            self.char_literal_into(&mut text);
            self.out.push(Token::at(Kind::Char, text, line));
        }
    }

    /// Consume a `'…'` literal (opening quote still pending) into
    /// `text`, honouring `\`-escapes.
    fn char_literal_into(&mut self, text: &mut String) {
        if let Some(c) = self.bump() {
            text.push(c); // opening '
        }
        while let Some(c) = self.bump() {
            text.push(c);
            match c {
                '\\' => {
                    if let Some(esc) = self.bump() {
                        text.push(esc);
                    }
                }
                '\'' => break,
                _ => {}
            }
        }
    }

    fn ident(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while self.peek(0).is_some_and(is_ident_continue) {
            if let Some(c) = self.bump() {
                text.push(c);
            }
        }
        self.out.push(Token::at(Kind::Ident, text, line));
    }

    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                text.push(c);
                self.bump();
            } else if c == '.'
                && !text.contains('.')
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
            {
                // 1.5 is one number; 1..9 and 1.max(2) are not.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.out.push(Token::at(Kind::Num, text, line));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(Kind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == Kind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        // `unwrap` inside a string must not surface as an identifier.
        let src = r#"let msg = "please unwrap() me"; x.real();"#;
        assert_eq!(idents(src), ["let", "msg", "x", "real"]);
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let src = r#"let s = "a \" quoted \\" ; tail();"#;
        let toks = kinds(src);
        let strings: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == Kind::Str)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(strings, [r#""a \" quoted \\""#]);
        assert!(idents(src).contains(&"tail".to_string()));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"inner "quote" unwrap()"# ; done();"###;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == Kind::Str && t.contains("inner")));
        assert_eq!(idents(src), ["let", "s", "done"]);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ live();";
        assert_eq!(idents(src), ["live"]);
        let comments: Vec<String> = lex(src)
            .into_iter()
            .filter(|t| t.kind == Kind::Comment)
            .map(|t| t.text)
            .collect();
        assert_eq!(comments.len(), 1);
        assert!(comments[0].contains("inner"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }";
        let toks = lex(src);
        let lifetimes = toks.iter().filter(|t| t.kind == Kind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == Kind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn char_literal_with_quote_escape_keeps_sync() {
        // A desynchronised lexer would swallow `hidden` into a string.
        let src = "let a = '\\''; hidden(); let b = \"x\";";
        assert!(idents(src).contains(&"hidden".to_string()));
    }

    #[test]
    fn byte_literals() {
        let src = "let a = b'x'; let s = b\"bytes\"; let r = br#\"raw\"#; end();";
        let toks = kinds(src);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == Kind::Char).count(),
            1,
            "{toks:?}"
        );
        assert_eq!(toks.iter().filter(|(k, _)| *k == Kind::Str).count(), 2);
        assert!(idents(src).contains(&"end".to_string()));
    }

    #[test]
    fn line_numbers_track_multiline_tokens() {
        let src = "a();\n/* two\nlines */\nb();";
        let toks = lex(src);
        let b = toks.iter().find(|t| t.text == "b").expect("b lexed");
        assert_eq!(b.line, 4);
        let c = toks.iter().find(|t| t.kind == Kind::Comment).expect("c");
        assert_eq!((c.line, c.end_line), (2, 3));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let src = "let r = 1..9; let f = 1.5; let m = 2.max(3); let h = 0xFF;";
        let nums: Vec<String> = lex(src)
            .into_iter()
            .filter(|t| t.kind == Kind::Num)
            .map(|t| t.text)
            .collect();
        assert_eq!(nums, ["1", "9", "1.5", "2", "3", "0xFF"]);
    }

    #[test]
    fn doc_comments_are_comments() {
        let src = "/// call .unwrap() freely here\nfn ok() {}";
        assert_eq!(idents(src), ["fn", "ok"]);
    }
}
