//! `lcdc-lint` — the workspace invariant checker.
//!
//! The repo's concurrency and protocol invariants (panic-free wire
//! surface, justified atomic orderings, lock discipline, single-homed
//! protocol literals, complete counter fan-in) live in `lint.toml` and
//! are enforced by `cargo run -p lcdc-lint -- --deny`. See
//! `docs/LINTS.md` for the rule catalog and the reasoning behind a
//! lexical (not parsed) checker.

pub mod config;
pub mod lexer;
pub mod rules;
pub mod scan;
