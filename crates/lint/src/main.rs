//! `lcdc-lint` CLI: walk the workspace, enforce `lint.toml`.
//!
//! ```text
//! cargo run -p lcdc-lint            # report findings, exit 0
//! cargo run -p lcdc-lint -- --deny  # exit 1 if any finding (CI mode)
//! ```
//!
//! `--root DIR` and `--config FILE` override the defaults (current
//! directory, `<root>/lint.toml`). Exit codes: 0 clean (or report-only
//! mode), 1 findings under `--deny`, 2 usage/config/IO error.

use lcdc_lint::config::Config;
use lcdc_lint::rules::{check, Finding};
use lcdc_lint::scan::FileScan;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("lcdc-lint: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let mut deny = false;
    let mut root = PathBuf::from(".");
    let mut config_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--root" => root = PathBuf::from(args.next().ok_or("--root needs a directory")?),
            "--config" => {
                config_path = Some(PathBuf::from(args.next().ok_or("--config needs a file")?))
            }
            "--help" | "-h" => {
                println!("usage: lcdc-lint [--deny] [--root DIR] [--config FILE]");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    let config_path = config_path.unwrap_or_else(|| root.join("lint.toml"));
    let config_text = std::fs::read_to_string(&config_path)
        .map_err(|e| format!("cannot read {}: {e}", config_path.display()))?;
    let config = Config::parse(&config_text)?;

    let mut files = Vec::new();
    collect_rs(&root, &root, &mut files)?;
    files.sort();
    let scans: Vec<FileScan> = files
        .iter()
        .map(|(rel, path)| {
            std::fs::read_to_string(path)
                .map(|src| FileScan::new(rel, &src))
                .map_err(|e| format!("cannot read {}: {e}", path.display()))
        })
        .collect::<Result<_, _>>()?;

    let findings = check(&scans, &config);
    report(&scans, &findings);
    if !findings.is_empty() && deny {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn report(scans: &[FileScan], findings: &[Finding]) {
    for f in findings {
        println!("{f}");
    }
    let allows: usize = scans.iter().map(|s| s.allows.len()).sum();
    println!(
        "lcdc-lint: {} file(s), {} finding(s), {} allow annotation(s)",
        scans.len(),
        findings.len(),
        allows
    );
}

/// Directories that are never part of the checked workspace: build
/// output, VCS internals, and the lint's own finding-bearing fixtures.
fn skipped(name: &str) -> bool {
    name == "target" || name.starts_with('.') || name == "fixtures"
}

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<(String, PathBuf)>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if !skipped(&name) {
                collect_rs(root, &path, out)?;
            }
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, path));
        }
    }
    Ok(())
}
