//! The rule engine: five workspace invariants plus annotation hygiene.
//!
//! Every rule is a lexical scan over [`FileScan`]s — deliberately so.
//! The stable-only toolchain rules out Miri/TSan and compiler plugins,
//! and a parser would rot; token-shape rules plus an explicit,
//! reasoned escape hatch (`// lint: allow(<rule>) — reason`) keep the
//! checker self-contained, fast, and honest about being an
//! approximation. What each rule enforces — and where its lexical
//! approximation ends — is catalogued in `docs/LINTS.md`.

use crate::config::Config;
use crate::lexer::{lex, Kind, Token};
use crate::scan::FileScan;

/// Rule identifiers, as used in findings and `lint: allow(...)`.
pub const RULES: &[&str] = &[
    "panic", "ordering", "seqcst", "locks", "protocol", "counters",
];

/// One finding: a rule violation at a file:line.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The violated rule's id.
    pub rule: &'static str,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.msg
        )
    }
}

/// Run every rule over a set of scanned files and return the sorted
/// findings.
pub fn check(scans: &[FileScan], config: &Config) -> Vec<Finding> {
    let mut findings = Vec::new();
    for scan in scans {
        if config.wire_surface.iter().any(|f| f == &scan.rel) {
            panic_free(scan, &mut findings);
        }
        ordering_justified(scan, &mut findings);
        lock_discipline(scan, config, &mut findings);
        if !config.protocol_home.is_empty() && scan.rel != config.protocol_home {
            protocol_single_home(scan, config, &mut findings);
        }
        annotation_hygiene(scan, &mut findings);
    }
    counter_completeness(scans, config, &mut findings);
    findings.sort();
    findings
}

fn finding(
    out: &mut Vec<Finding>,
    scan: &FileScan,
    rule: &'static str,
    line: u32,
    msg: impl Into<String>,
) {
    out.push(Finding {
        file: scan.rel.clone(),
        line,
        rule,
        msg: msg.into(),
    });
}

// -- rule: panic ------------------------------------------------------

/// Keywords that make a following `[` an array literal/type rather
/// than an index expression.
const NON_INDEX_KEYWORDS: &[&str] = &[
    "mut", "return", "in", "as", "if", "else", "match", "move", "ref", "let", "const", "static",
    "dyn", "impl", "break", "continue", "loop", "while", "for", "where", "unsafe", "pub", "use",
    "mod", "enum", "struct", "trait", "type", "fn", "crate", "super", "box", "await",
];

/// Macros whose expansion can panic at runtime in release builds.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Rule `panic`: the wire surface must not contain `unwrap`/`expect`,
/// panicking macros, or slice-index expressions. Failures on a request
/// path must become typed `Response::Error` frames; genuinely
/// unreachable states carry `// lint: allow(panic) — reason`.
fn panic_free(scan: &FileScan, out: &mut Vec<Finding>) {
    let code = &scan.code;
    for (i, t) in code.iter().enumerate() {
        match (t.kind, t.text.as_str()) {
            (Kind::Ident, "unwrap" | "expect") => {
                let after_dot = i > 0 && code[i - 1].text == ".";
                let called = code.get(i + 1).is_some_and(|n| n.text == "(");
                if after_dot && called && !scan.allowed("panic", t.line) {
                    finding(
                        out,
                        scan,
                        "panic",
                        t.line,
                        format!(
                            ".{}() on the wire surface — return a typed error instead",
                            t.text
                        ),
                    );
                }
            }
            (Kind::Ident, name) if PANIC_MACROS.contains(&name) => {
                let is_macro = code.get(i + 1).is_some_and(|n| n.text == "!");
                if is_macro && !scan.allowed("panic", t.line) {
                    finding(
                        out,
                        scan,
                        "panic",
                        t.line,
                        format!("{name}! on the wire surface — return a typed error instead"),
                    );
                }
            }
            (Kind::Punct, "[") if i > 0 => {
                let prev = &code[i - 1];
                let indexing = match prev.kind {
                    Kind::Ident => !NON_INDEX_KEYWORDS.contains(&prev.text.as_str()),
                    Kind::Punct => matches!(prev.text.as_str(), ")" | "]" | "?"),
                    _ => false,
                };
                if indexing && !scan.allowed("panic", t.line) {
                    finding(
                        out,
                        scan,
                        "panic",
                        t.line,
                        "slice/array index can panic on the wire surface — use .get()",
                    );
                }
            }
            _ => {}
        }
    }
}

// -- rule: ordering ---------------------------------------------------

const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Rule `ordering`: every `Ordering::*` use carries an `// ordering:`
/// justification on its line or in the comment block directly above.
/// `SeqCst` is additionally flagged as an undefaulted choice (escape:
/// `lint: allow(seqcst) — reason`).
fn ordering_justified(scan: &FileScan, out: &mut Vec<Finding>) {
    let code = &scan.code;
    for (i, t) in code.iter().enumerate() {
        if t.kind != Kind::Ident || t.text != "Ordering" {
            continue;
        }
        let is_path = code.get(i + 1).is_some_and(|c| c.text == ":")
            && code.get(i + 2).is_some_and(|c| c.text == ":");
        let Some(variant) = code
            .get(i + 3)
            .filter(|v| is_path && v.kind == Kind::Ident && ORDERINGS.contains(&v.text.as_str()))
        else {
            continue;
        };
        let line = variant.line;
        if !scan.annotated(line, |c| c.contains("ordering:")) {
            finding(
                out,
                scan,
                "ordering",
                line,
                format!(
                    "Ordering::{} without an `// ordering:` justification",
                    variant.text
                ),
            );
        }
        if variant.text == "SeqCst" && !scan.allowed("seqcst", line) {
            finding(
                out,
                scan,
                "seqcst",
                line,
                "SeqCst is an undefaulted choice — justify with `lint: allow(seqcst) — reason` \
                 or pick the weakest sufficient ordering",
            );
        }
    }
}

// -- rule: locks ------------------------------------------------------

/// Rule `locks`: within one function, a second `.lock()` on a
/// differently-named mutex is flagged unless the pair follows the
/// documented acquisition order from `lint.toml`; `.wait(` in a
/// function that also locks is flagged unless the condvar is in the
/// blessed single-flight registry.
fn lock_discipline(scan: &FileScan, config: &Config, out: &mut Vec<Finding>) {
    for f in &scan.fns {
        let mut locks: Vec<(String, u32)> = Vec::new();
        let mut waits: Vec<(String, u32)> = Vec::new();
        let body = match scan.code.get(f.body.clone()) {
            Some(body) => body,
            None => continue,
        };
        for (j, t) in body.iter().enumerate() {
            if t.kind != Kind::Ident || (t.text != "lock" && t.text != "wait") {
                continue;
            }
            let after_dot = j > 0 && body[j - 1].text == ".";
            let called = body.get(j + 1).is_some_and(|n| n.text == "(");
            if !after_dot || !called {
                continue;
            }
            // Receiver: the identifier before the dot.
            let recv = (j >= 2)
                .then(|| &body[j - 2])
                .filter(|r| r.kind == Kind::Ident)
                .map(|r| r.text.clone())
                .unwrap_or_else(|| "<expr>".to_string());
            if t.text == "lock" {
                locks.push((recv, t.line));
            } else {
                waits.push((recv, t.line));
            }
        }
        // Collapse repeated acquisitions of the same mutex.
        locks.dedup_by(|a, b| a.0 == b.0);
        for pair in locks.windows(2) {
            let ((first, _), (second, line)) = (&pair[0], &pair[1]);
            let order = |name: &str| config.lock_order.iter().position(|o| o == name);
            let ordered = matches!((order(first), order(second)), (Some(a), Some(b)) if a <= b);
            if !ordered && !scan.allowed("locks", *line) {
                finding(
                    out,
                    scan,
                    "locks",
                    *line,
                    format!(
                        "`{second}.lock()` after `{first}.lock()` in fn {} is outside the \
                         documented lock order",
                        f.name
                    ),
                );
            }
        }
        if !locks.is_empty() {
            for (recv, line) in &waits {
                let blessed = config.blessed_waits.iter().any(|w| w == recv);
                if !blessed && !scan.allowed("locks", *line) {
                    finding(
                        out,
                        scan,
                        "locks",
                        *line,
                        format!(
                            "`{recv}.wait(…)` in fn {} which also takes locks — only blessed \
                             condvar patterns may wait",
                            f.name
                        ),
                    );
                }
            }
        }
    }
}

// -- rule: protocol ---------------------------------------------------

/// Rule `protocol`: wire literals and frame constants are defined only
/// in the protocol home file; duplicates elsewhere are findings.
fn protocol_single_home(scan: &FileScan, config: &Config, out: &mut Vec<Finding>) {
    let code = &scan.code;
    for literal in &config.protocol_literals {
        let needle: Vec<Token> = lex(literal);
        if needle.is_empty() || code.len() < needle.len() {
            continue;
        }
        for (i, window) in code.windows(needle.len()).enumerate() {
            if window.iter().zip(&needle).all(|(a, b)| a.text == b.text)
                && !scan.allowed("protocol", code[i].line)
            {
                finding(
                    out,
                    scan,
                    "protocol",
                    code[i].line,
                    format!(
                        "wire literal `{literal}` outside {} — use the named constant",
                        config.protocol_home
                    ),
                );
            }
        }
    }
    for (i, t) in code.iter().enumerate() {
        if t.kind != Kind::Ident || t.text != "const" {
            continue;
        }
        let Some(name) = code.get(i + 1).filter(|n| n.kind == Kind::Ident) else {
            continue;
        };
        let homed = config
            .protocol_const_prefixes
            .iter()
            .any(|p| name.text.starts_with(p.as_str()));
        if homed && !scan.allowed("protocol", name.line) {
            finding(
                out,
                scan,
                "protocol",
                name.line,
                format!(
                    "wire constant `{}` defined outside {}",
                    name.text, config.protocol_home
                ),
            );
        }
    }
}

// -- rule: counters ---------------------------------------------------

/// Rule `counters`: every field of a registered stats struct must be
/// mentioned in each of its coverage sites (merge/fold, encode/decode,
/// `Display`), so a new counter can never silently drop from fan-in or
/// the stats endpoint.
fn counter_completeness(scans: &[FileScan], config: &Config, out: &mut Vec<Finding>) {
    for counter in &config.counters {
        let Some(def_scan) = scans.iter().find(|s| s.rel == counter.file) else {
            push_config_rot(
                out,
                &counter.file,
                format!("counter struct file `{}` not found", counter.file),
            );
            continue;
        };
        let Some((fields, struct_line)) = struct_fields(def_scan, &counter.name) else {
            push_config_rot(
                out,
                &counter.file,
                format!("struct `{}` not found in {}", counter.name, counter.file),
            );
            continue;
        };
        for site in &counter.sites {
            let Some((file, fn_spec)) = site.split_once('#') else {
                push_config_rot(out, &counter.file, format!("malformed site `{site}`"));
                continue;
            };
            let Some((site_scan, span)) = scans
                .iter()
                .find(|s| s.rel == file)
                .and_then(|s| s.site(fn_spec).map(|span| (s, span)))
            else {
                push_config_rot(
                    out,
                    file,
                    format!("coverage site `{site}` for `{}` not found", counter.name),
                );
                continue;
            };
            let body = site_scan.code.get(span.body.clone()).unwrap_or(&[]);
            for field in &fields {
                let mentioned = body
                    .iter()
                    .any(|t| t.kind == Kind::Ident && &t.text == field);
                if !mentioned && !site_scan.allowed("counters", span.line) {
                    finding(
                        out,
                        site_scan,
                        "counters",
                        span.line,
                        format!(
                            "`{}.{field}` (defined {}:{struct_line}) is missing from {fn_spec}",
                            counter.name, counter.file
                        ),
                    );
                }
            }
        }
    }
}

fn push_config_rot(out: &mut Vec<Finding>, file: &str, msg: String) {
    out.push(Finding {
        file: file.to_string(),
        line: 0,
        rule: "counters",
        msg,
    });
}

/// Parse `struct Name { field: Ty, … }` field names out of a scan.
fn struct_fields(scan: &FileScan, name: &str) -> Option<(Vec<String>, u32)> {
    let code = &scan.code;
    let at = code.windows(2).position(|w| {
        w[0].kind == Kind::Ident
            && w[0].text == "struct"
            && w[1].kind == Kind::Ident
            && w[1].text == name
    })?;
    let line = code[at].line;
    let open = (at..code.len()).find(|&i| code[i].text == "{")?;
    let mut fields = Vec::new();
    let mut depth = 1usize;
    let mut i = open + 1;
    while i < code.len() && depth > 0 {
        match code[i].text.as_str() {
            "{" | "(" | "<" => depth += 1,
            "}" | ")" | ">" => depth -= 1,
            ":" if depth == 1 => {
                let named = code[i - 1].kind == Kind::Ident
                    && code.get(i + 1).is_none_or(|n| n.text != ":")
                    && code[i - 1].text != "pub";
                if named {
                    fields.push(code[i - 1].text.clone());
                }
            }
            _ => {}
        }
        i += 1;
    }
    Some((fields, line))
}

// -- annotation hygiene -----------------------------------------------

/// Every `lint: allow(...)` must name a known rule and carry a
/// `— reason` suffix; an unexplained allow is itself a finding.
fn annotation_hygiene(scan: &FileScan, out: &mut Vec<Finding>) {
    for allow in &scan.allows {
        if !RULES.contains(&allow.rule.as_str()) {
            finding(
                out,
                scan,
                "allow-hygiene",
                allow.line,
                format!("`lint: allow({})` names an unknown rule", allow.rule),
            );
        } else if !allow.has_reason {
            finding(
                out,
                scan,
                "allow-hygiene",
                allow.line,
                format!(
                    "`lint: allow({})` lacks a `— reason` suffix — every escape hatch \
                     carries its justification",
                    allow.rule
                ),
            );
        }
    }
}

/// A helper for tests and `main`: scan (rel, src) pairs and check them.
pub fn check_sources(sources: &[(String, String)], config: &Config) -> Vec<Finding> {
    let scans: Vec<FileScan> = sources
        .iter()
        .map(|(rel, src)| FileScan::new(rel, src))
        .collect();
    check(&scans, config)
}
