//! A structural pass over one file's token stream.
//!
//! The rules need a little more shape than raw tokens: which tokens are
//! *live code* (not `#[cfg(test)]`-gated, not `#[test]` functions),
//! where each function body starts and ends, which `impl` block a
//! function lives in, and what annotation comments sit on or above each
//! line. This module computes all of that once per file; rules then run
//! as cheap scans over the result.

use crate::lexer::{lex, Kind, Token};
use std::collections::{BTreeMap, BTreeSet};

/// A function's span inside [`FileScan::code`].
#[derive(Debug)]
pub struct FnSpan {
    /// The function's name.
    pub name: String,
    /// Line the `fn` keyword is on.
    pub line: u32,
    /// Body range: indices into [`FileScan::code`], open brace excluded.
    pub body: std::ops::Range<usize>,
}

/// An `impl` block's span inside [`FileScan::code`].
#[derive(Debug)]
pub struct ImplSpan {
    /// The implemented type's name (`StatsReport` in
    /// `impl fmt::Display for StatsReport`).
    pub type_name: String,
    /// Body range: indices into [`FileScan::code`].
    pub body: std::ops::Range<usize>,
}

/// One parsed `// lint: allow(rule) — reason` annotation.
#[derive(Debug)]
pub struct Allow {
    /// The rule being allowed (the text inside the parentheses).
    pub rule: String,
    /// Whether a `— reason` suffix is present and non-empty.
    pub has_reason: bool,
    /// The line the annotation appears on.
    pub line: u32,
}

/// Everything the rules need to know about one source file.
pub struct FileScan {
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Live (non-test) code tokens, comments excluded.
    pub code: Vec<Token>,
    /// Functions found in the live code, outermost first.
    pub fns: Vec<FnSpan>,
    /// `impl` blocks found in the live code.
    pub impls: Vec<ImplSpan>,
    /// Lines that carry live code tokens.
    pub code_lines: BTreeSet<u32>,
    /// Comment text per line (block comments register every spanned
    /// line), test regions included — annotations in tests are hygiene-
    /// checked too.
    pub comments: BTreeMap<u32, String>,
    /// Every `lint: allow(...)` annotation in the file.
    pub allows: Vec<Allow>,
}

impl FileScan {
    /// Lex and structure one file.
    pub fn new(rel: &str, src: &str) -> FileScan {
        let tokens = lex(src);
        let mut comments: BTreeMap<u32, String> = BTreeMap::new();
        for t in &tokens {
            if t.kind == Kind::Comment {
                for line in t.line..=t.end_line {
                    comments
                        .entry(line)
                        .and_modify(|s| {
                            s.push(' ');
                            s.push_str(&t.text);
                        })
                        .or_insert_with(|| t.text.clone());
                }
            }
        }
        let allows = parse_allows(&comments);
        let code = strip_tests(tokens);
        let code_lines = code.iter().map(|t| t.line).collect();
        let (fns, impls) = spans(&code);
        FileScan {
            rel: rel.to_string(),
            code,
            fns,
            impls,
            code_lines,
            comments,
            allows,
        }
    }

    /// Is `line` covered by an `// lint: allow(rule)` annotation — on
    /// the same line, or in the contiguous comment/blank block directly
    /// above it?
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.annotated(line, |text| {
            parse_allow_text(text).is_some_and(|a| a.rule == rule)
        })
    }

    /// Is `line` covered by a comment satisfying `pred` — same line, or
    /// the contiguous run of non-code lines directly above?
    pub fn annotated(&self, line: u32, pred: impl Fn(&str) -> bool) -> bool {
        if self.comments.get(&line).is_some_and(|t| pred(t)) {
            return true;
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            if self.code_lines.contains(&l) {
                return false;
            }
            if self.comments.get(&l).is_some_and(|t| pred(t)) {
                return true;
            }
        }
        false
    }

    /// The innermost function whose body contains code-token index `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.body.contains(&i))
            .min_by_key(|f| f.body.len())
    }

    /// Find a coverage site: `"name"` is either a free `fn name` or
    /// `"Type::name"`, a method inside `impl … Type`.
    pub fn site(&self, name: &str) -> Option<&FnSpan> {
        match name.split_once("::") {
            None => self.fns.iter().find(|f| f.name == name),
            Some((ty, method)) => self
                .impls
                .iter()
                .filter(|i| i.type_name == ty)
                .find_map(|imp| {
                    self.fns
                        .iter()
                        .find(|f| f.name == method && imp.body.contains(&f.body.start))
                }),
        }
    }
}

/// Parse every `lint: allow(rule)` annotation out of the comment map.
fn parse_allows(comments: &BTreeMap<u32, String>) -> Vec<Allow> {
    let mut out = Vec::new();
    for (&line, text) in comments {
        if let Some(mut allow) = parse_allow_text(text) {
            allow.line = line;
            out.push(allow);
        }
    }
    out
}

/// Parse `// lint: allow(rule) — reason` out of one comment's text.
/// The annotation must *lead* the comment (after the comment markers):
/// prose that merely mentions the syntax is not an annotation.
fn parse_allow_text(text: &str) -> Option<Allow> {
    let lead = text.trim_start_matches(['/', '*', '!', ' ']);
    let rest = lead.strip_prefix("lint: allow(")?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let tail = rest[close + 1..].trim_start();
    // The reason must be introduced by an em-dash or `--` and be
    // non-empty after it.
    let has_reason = tail
        .strip_prefix('—')
        .or_else(|| tail.strip_prefix("--"))
        .map(|r| !r.trim().is_empty())
        .unwrap_or(false);
    Some(Allow {
        rule,
        has_reason,
        line: 0,
    })
}

/// Remove test-gated regions: any item annotated `#[cfg(test)]` (or an
/// attribute naming `test`, e.g. `#[test]`) is dropped through its
/// closing brace or terminating semicolon, attribute included.
fn strip_tests(tokens: Vec<Token>) -> Vec<Token> {
    let code: Vec<Token> = tokens
        .into_iter()
        .filter(|t| t.kind != Kind::Comment)
        .collect();
    let mut keep = Vec::with_capacity(code.len());
    let mut i = 0;
    while i < code.len() {
        if code[i].kind == Kind::Punct
            && code[i].text == "#"
            && code.get(i + 1).is_some_and(|t| t.text == "[")
        {
            // Collect the attribute's tokens up to its matching `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut is_test = false;
            let mut negated = false;
            while j < code.len() && depth > 0 {
                match code[j].text.as_str() {
                    "[" => depth += 1,
                    "]" => depth -= 1,
                    "test" if code[j].kind == Kind::Ident => is_test = true,
                    "not" if code[j].kind == Kind::Ident => negated = true,
                    _ => {}
                }
                j += 1;
            }
            let is_test = is_test && !negated;
            if is_test {
                // Skip any further attributes, then the item itself:
                // through its balanced `{…}` or a `;`, whichever first.
                while j < code.len() && code[j].text == "#" {
                    let mut d = 0usize;
                    j += 1; // past '#'
                    while j < code.len() {
                        match code[j].text.as_str() {
                            "[" => d += 1,
                            "]" => {
                                d -= 1;
                                if d == 0 {
                                    j += 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                }
                let mut braces = 0usize;
                while j < code.len() {
                    match code[j].text.as_str() {
                        "{" => braces += 1,
                        "}" => {
                            braces -= 1;
                            if braces == 0 {
                                j += 1;
                                break;
                            }
                        }
                        ";" if braces == 0 => {
                            j += 1;
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                i = j;
                continue;
            }
        }
        keep.push(code[i].clone());
        i += 1;
    }
    keep
}

/// Compute function and impl spans over the live code tokens.
fn spans(code: &[Token]) -> (Vec<FnSpan>, Vec<ImplSpan>) {
    let mut fns = Vec::new();
    let mut impls = Vec::new();
    // Pending items waiting for their opening brace, with the brace
    // depth they were declared at.
    let mut pending_fns: Vec<(String, u32, usize)> = Vec::new();
    let mut pending_impl: Option<(String, usize)> = None;
    // Open bodies: (index into fns/impls, is_fn, open depth).
    let mut open: Vec<(usize, bool, usize)> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0;
    while i < code.len() {
        let t = &code[i];
        match (t.kind, t.text.as_str()) {
            (Kind::Ident, "fn") => {
                if let Some(name) = code.get(i + 1).filter(|n| n.kind == Kind::Ident) {
                    pending_fns.push((name.text.clone(), t.line, depth));
                }
            }
            (Kind::Ident, "impl") => {
                // Scan ahead to the body brace; the type is the first
                // path after `for` (trait impls) or after the impl
                // generics (inherent impls).
                let mut j = i + 1;
                let mut generic_depth = 0usize;
                let mut after_for = false;
                let mut first_path: Option<String> = None;
                let mut for_path: Option<String> = None;
                while j < code.len() {
                    let u = &code[j];
                    match (u.kind, u.text.as_str()) {
                        (Kind::Punct, "<") => generic_depth += 1,
                        (Kind::Punct, ">") => generic_depth = generic_depth.saturating_sub(1),
                        (Kind::Punct, "{") if generic_depth == 0 => break,
                        (Kind::Punct, ";") => break,
                        (Kind::Ident, "for") => after_for = true,
                        (Kind::Ident, "where") => break,
                        (Kind::Ident, name) if generic_depth == 0 => {
                            let slot = if after_for {
                                &mut for_path
                            } else {
                                &mut first_path
                            };
                            *slot = Some(name.to_string()); // last segment wins
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if let Some(ty) = for_path.or(first_path) {
                    pending_impl = Some((ty, depth));
                }
            }
            (Kind::Punct, ";") => {
                // A bodyless declaration ends any pending item at this
                // depth (trait method signatures, `impl Trait for T;`).
                pending_fns.retain(|(_, _, d)| *d != depth);
                if pending_impl.as_ref().is_some_and(|(_, d)| *d == depth) {
                    pending_impl = None;
                }
            }
            (Kind::Punct, "{") => {
                if let Some(pos) = pending_fns.iter().rposition(|(_, _, d)| *d == depth) {
                    let (name, line, _) = pending_fns.remove(pos);
                    fns.push(FnSpan {
                        name,
                        line,
                        body: i + 1..i + 1,
                    });
                    open.push((fns.len() - 1, true, depth));
                } else if let Some((ty, _)) = pending_impl.take_if(|(_, d)| *d == depth) {
                    impls.push(ImplSpan {
                        type_name: ty,
                        body: i + 1..i + 1,
                    });
                    open.push((impls.len() - 1, false, depth));
                }
                depth += 1;
            }
            (Kind::Punct, "}") => {
                depth = depth.saturating_sub(1);
                if let Some(&(idx, is_fn, d)) = open.last() {
                    if d == depth {
                        if is_fn {
                            fns[idx].body.end = i;
                        } else {
                            impls[idx].body.end = i;
                        }
                        open.pop();
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    (fns, impls)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_blocks_are_stripped() {
        let src = "fn live() { a(); }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn gone() { b(); }\n}\nfn live2() { c(); }\n";
        let scan = FileScan::new("x.rs", src);
        let names: Vec<&str> = scan.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["live", "live2"]);
        assert!(!scan.code.iter().any(|t| t.text == "gone"));
    }

    #[test]
    fn fn_and_impl_spans_nest() {
        let src = "impl fmt::Display for Report {\n  fn fmt(&self) { inner(); }\n}\nimpl Report {\n  fn other(&self) { x(); }\n}\nfn free() {}\n";
        let scan = FileScan::new("x.rs", src);
        assert_eq!(scan.impls.len(), 2);
        assert_eq!(scan.impls[0].type_name, "Report");
        let site = scan.site("Report::fmt").expect("fmt found");
        assert_eq!(site.name, "fmt");
        assert!(scan.site("Report::other").is_some());
        assert!(scan.site("free").is_some());
        assert!(scan.site("Report::free").is_none());
    }

    #[test]
    fn allow_annotations_parse_reason() {
        let src = "// lint: allow(panic) — index is bounds-checked above\nlet x = v[0];\n// lint: allow(locks)\nlet y = 1;\n";
        let scan = FileScan::new("x.rs", src);
        assert_eq!(scan.allows.len(), 2);
        assert!(scan.allows[0].has_reason);
        assert!(!scan.allows[1].has_reason);
        assert!(scan.allowed("panic", 2));
        assert!(!scan.allowed("locks", 2));
        assert!(scan.allowed("locks", 4));
    }

    #[test]
    fn annotation_scope_stops_at_code() {
        let src = "// lint: allow(panic) — reason\nlet a = 1;\nlet b = v[0];\n";
        let scan = FileScan::new("x.rs", src);
        assert!(scan.allowed("panic", 2));
        assert!(!scan.allowed("panic", 3), "code line 2 breaks the block");
    }
}
