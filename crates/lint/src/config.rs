//! `lint.toml` — the repo-specific invariant registry.
//!
//! The rules are generic machinery; everything repo-specific (which
//! files are the wire surface, the documented lock order, which condvar
//! patterns are blessed, where protocol literals live, which counter
//! structs must stay covered) lives in a checked-in `lint.toml` at the
//! workspace root, parsed by the tiny hand-rolled reader below — the
//! same no-crates.io discipline as the shims.
//!
//! Supported syntax (deliberately a TOML subset): `[section]` headers,
//! `[[table]]` array-of-table headers, `key = "string"`, and
//! `key = ["a", "b"]` single-line string arrays. `#` starts a comment.

/// One counter-completeness entry: a struct and the function bodies
/// that must each mention every one of its fields.
#[derive(Debug, Default, Clone)]
pub struct CounterStruct {
    /// The struct's name.
    pub name: String,
    /// Workspace-relative file the struct is defined in.
    pub file: String,
    /// Coverage sites, as `"path#fn"` or `"path#Type::fn"`.
    pub sites: Vec<String>,
}

/// The parsed `lint.toml`.
#[derive(Debug, Default)]
pub struct Config {
    /// Files forming the panic-free wire surface (rule `panic`).
    pub wire_surface: Vec<String>,
    /// Documented lock acquisition order, outermost first (rule
    /// `locks`). Locks are identified by the field name the guard is
    /// taken from (`state` in `self.shared.state.lock()`).
    pub lock_order: Vec<String>,
    /// Condvar names whose `.wait(…)` pattern has been audited (rule
    /// `locks`): single-flight waits that hand their own guard back.
    pub blessed_waits: Vec<String>,
    /// The one file allowed to define wire-protocol literals and
    /// constants (rule `protocol`).
    pub protocol_home: String,
    /// Literal token sequences that may appear only in the home file.
    pub protocol_literals: Vec<String>,
    /// `const` name prefixes that may be defined only in the home file.
    pub protocol_const_prefixes: Vec<String>,
    /// Counter structs under completeness enforcement (rule
    /// `counters`).
    pub counters: Vec<CounterStruct>,
}

impl Config {
    /// Parse a `lint.toml` document. Unknown keys are errors — a typo
    /// in the invariant registry must not silently disable a rule.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut config = Config::default();
        let mut section = String::new();
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let err = |msg: &str| format!("lint.toml:{}: {msg}", n + 1);
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if let Some(header) = line.strip_prefix("[[").and_then(|l| l.strip_suffix("]]")) {
                match header {
                    "counter" => config.counters.push(CounterStruct::default()),
                    other => return Err(err(&format!("unknown table array [[{other}]]"))),
                }
                section = format!("[[{header}]]");
                continue;
            }
            if let Some(header) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                match header {
                    "wire" | "locks" | "protocol" => section = header.to_string(),
                    other => return Err(err(&format!("unknown section [{other}]"))),
                }
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(err("expected `key = value`"));
            };
            let (key, value) = (key.trim(), value.trim());
            match (section.as_str(), key) {
                ("wire", "surface") => config.wire_surface = parse_list(value).map_err(err)?,
                ("locks", "order") => config.lock_order = parse_list(value).map_err(err)?,
                ("locks", "blessed_waits") => {
                    config.blessed_waits = parse_list(value).map_err(err)?
                }
                ("protocol", "home") => config.protocol_home = parse_str(value).map_err(err)?,
                ("protocol", "literals") => {
                    config.protocol_literals = parse_list(value).map_err(err)?
                }
                ("protocol", "const_prefixes") => {
                    config.protocol_const_prefixes = parse_list(value).map_err(err)?
                }
                ("[[counter]]", _) => {
                    let Some(counter) = config.counters.last_mut() else {
                        return Err(err("key outside a [[counter]] entry"));
                    };
                    match key {
                        "name" => counter.name = parse_str(value).map_err(err)?,
                        "file" => counter.file = parse_str(value).map_err(err)?,
                        "sites" => counter.sites = parse_list(value).map_err(err)?,
                        other => return Err(err(&format!("unknown counter key `{other}`"))),
                    }
                }
                (s, k) => return Err(err(&format!("unknown key `{k}` in section `{s}`"))),
            }
        }
        Ok(config)
    }
}

fn parse_str(value: &str) -> Result<String, &'static str> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(str::to_string)
        .ok_or("expected a \"quoted string\"")
}

fn parse_list(value: &str) -> Result<Vec<String>, &'static str> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or("expected a [\"single\", \"line\"] string array")?;
    let inner = inner.trim();
    if inner.is_empty() {
        return Ok(Vec::new());
    }
    inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(parse_str)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_section() {
        let text = r#"
# comment
[wire]
surface = ["a.rs", "b.rs"]

[locks]
order = ["catalog", "table"]
blessed_waits = ["loaded"]

[protocol]
home = "proto.rs"
literals = ["64 << 20"]
const_prefixes = ["REQ_"]

[[counter]]
name = "Stats"
file = "stats.rs"
sites = ["stats.rs#Stats::absorb", "wire.rs#put_stats"]
"#;
        let config = Config::parse(text).expect("parses");
        assert_eq!(config.wire_surface, ["a.rs", "b.rs"]);
        assert_eq!(config.lock_order, ["catalog", "table"]);
        assert_eq!(config.blessed_waits, ["loaded"]);
        assert_eq!(config.protocol_home, "proto.rs");
        assert_eq!(config.protocol_literals, ["64 << 20"]);
        assert_eq!(config.counters.len(), 1);
        assert_eq!(config.counters[0].sites.len(), 2);
    }

    #[test]
    fn unknown_keys_are_loud() {
        assert!(Config::parse("[wire]\nsurfaces = []\n").is_err());
        assert!(Config::parse("[nope]\n").is_err());
        assert!(Config::parse("[wire]\nsurface = nope\n").is_err());
    }
}
