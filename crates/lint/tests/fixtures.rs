//! Fixture-based self-tests: every `tests/fixtures/<name>.rs` is
//! checked against a fixture-grade config, and the findings must match
//! its `<name>.expected` sidecar *exactly* — line numbers, rule ids,
//! and message text. The sidecars double as golden documentation of
//! what each rule reports.

use lcdc_lint::config::Config;
use lcdc_lint::rules::check_sources;
use std::path::PathBuf;

fn fixtures_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
}

/// The fixture workspace's invariant registry: every fixture file is
/// wire surface, `alpha < beta < gamma` is the lock order, `ready` is
/// the blessed condvar, `wire.rs` is the protocol home, and fixtures
/// named `counters_*` register a `Stats` struct with two sites.
fn config_for(name: &str) -> Config {
    let mut toml = format!(
        r#"
[wire]
surface = ["{name}"]

[locks]
order = ["alpha", "beta", "gamma"]
blessed_waits = ["ready"]

[protocol]
home = "wire.rs"
literals = ["42 << 10"]
const_prefixes = ["REQ_"]
"#
    );
    if name.starts_with("counters") {
        toml.push_str(&format!(
            r#"
[[counter]]
name = "Stats"
file = "{name}"
sites = ["{name}#Stats::absorb", "{name}#Stats::fmt"]
"#
        ));
    }
    Config::parse(&toml).expect("fixture config parses")
}

#[test]
fn every_fixture_matches_its_expected_sidecar() {
    let dir = fixtures_dir();
    let mut names: Vec<String> = std::fs::read_dir(&dir)
        .expect("fixtures dir exists")
        .map(|e| e.expect("dir entry").file_name().into_string().unwrap())
        .filter(|n| n.ends_with(".rs"))
        .collect();
    names.sort();
    assert!(!names.is_empty(), "no fixtures found in {}", dir.display());

    for name in names {
        let src = std::fs::read_to_string(dir.join(&name)).expect("fixture reads");
        let sidecar = dir.join(name.replace(".rs", ".expected"));
        let expected = std::fs::read_to_string(&sidecar)
            .unwrap_or_else(|_| panic!("missing sidecar {}", sidecar.display()));

        let config = config_for(&name);
        let findings = check_sources(&[(name.clone(), src)], &config);
        let got: String = findings
            .iter()
            .map(|f| format!("{f}\n"))
            .collect::<Vec<_>>()
            .join("");
        assert_eq!(
            got,
            expected,
            "fixture {name}: findings diverge from {}",
            sidecar.display()
        );
    }
}

#[test]
fn every_sidecar_has_a_fixture() {
    let dir = fixtures_dir();
    for entry in std::fs::read_dir(&dir).expect("fixtures dir exists") {
        let name = entry.expect("dir entry").file_name().into_string().unwrap();
        if let Some(stem) = name.strip_suffix(".expected") {
            assert!(
                dir.join(format!("{stem}.rs")).exists(),
                "sidecar {name} has no fixture"
            );
        }
    }
}
