//! Fixture: the `panic` rule on a wire-surface file.

pub fn bad(v: &[u8], opt: Option<u8>) -> u8 {
    let first = v[0];
    let second = opt.unwrap();
    let third = opt.expect("present");
    if first > 9 {
        panic!("boom");
    }
    first + second + third
}

pub fn guarded(opt: Option<u8>) -> u8 {
    // lint: allow(panic) — fixture-blessed: the caller always passes Some.
    opt.unwrap()
}

pub fn fine(v: &[u8]) -> u8 {
    let arr = [0u8; 4];
    v.first().copied().unwrap_or(arr.len() as u8)
}
