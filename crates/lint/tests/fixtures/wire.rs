//! Fixture: the protocol home file itself may define wire facts.

pub const REQ_PING: u8 = 9;
pub const REQ_CAP: usize = 42 << 10;
