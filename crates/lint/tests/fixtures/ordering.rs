//! Fixture: the `ordering` and `seqcst` rules.

use std::sync::atomic::{AtomicUsize, Ordering};

pub fn annotated(c: &AtomicUsize) -> usize {
    // ordering: advisory counter, fixture-grade justification.
    c.load(Ordering::Relaxed)
}

pub fn unannotated(c: &AtomicUsize) -> usize {
    c.load(Ordering::Relaxed)
}

pub fn strongest_blessed(c: &AtomicUsize) -> usize {
    // ordering: fixture exercises the SeqCst path.
    // lint: allow(seqcst) — fixture-blessed strongest ordering.
    c.load(Ordering::SeqCst)
}

pub fn strongest_unblessed(c: &AtomicUsize) -> usize {
    // ordering: justified, but SeqCst still needs its own allow.
    c.load(Ordering::SeqCst)
}
