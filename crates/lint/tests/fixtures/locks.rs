//! Fixture: the `locks` rule — pair order and condvar waits.

use std::sync::{Condvar, Mutex, PoisonError};

pub fn right_order(alpha: &Mutex<u32>, beta: &Mutex<u32>) -> u32 {
    let a = alpha.lock().unwrap_or_else(PoisonError::into_inner);
    let b = beta.lock().unwrap_or_else(PoisonError::into_inner);
    *a + *b
}

pub fn wrong_order(alpha: &Mutex<u32>, beta: &Mutex<u32>) -> u32 {
    let b = beta.lock().unwrap_or_else(PoisonError::into_inner);
    let a = alpha.lock().unwrap_or_else(PoisonError::into_inner);
    *a + *b
}

pub fn waits(gamma: &Mutex<bool>, cond: &Condvar, ready: &Condvar) {
    let mut g = gamma.lock().unwrap_or_else(PoisonError::into_inner);
    while !*g {
        g = cond.wait(g).unwrap_or_else(PoisonError::into_inner);
    }
    while !*g {
        g = ready.wait(g).unwrap_or_else(PoisonError::into_inner);
    }
}
