//! Fixture: literals and comments never produce findings.

/* block comment mentioning .unwrap() and v[0]
   /* nested block comment with panic! inside */
   still one comment */
pub fn tricky() -> usize {
    let s = "contains .unwrap() and panic! and v[0]";
    let r = r#"raw "string" with .expect("x") inside"#;
    let c = '[';
    let named: &'static str = "lifetime, not a char literal";
    s.len() + r.len() + (c as usize) + named.len()
}

pub fn real(opt: Option<u8>) -> u8 {
    opt.unwrap()
}
