//! Fixture: escape hatches are themselves checked.

pub fn reasonless(opt: Option<u8>) -> u8 {
    // lint: allow(panic)
    opt.unwrap()
}

pub fn unknown_rule() {
    // lint: allow(warp) — no such rule exists.
}
