//! Fixture: the `counters` rule — every field in every site.

pub struct Stats {
    pub hits: u64,
    pub misses: u64,
}

impl Stats {
    pub fn absorb(&mut self, other: &Stats) {
        self.hits += other.hits;
    }
}

impl std::fmt::Display for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} hits, {} misses", self.hits, self.misses)
    }
}
