//! Fixture: the `protocol` rule — wire facts live in one file.

pub const REQ_PING: u8 = 9;

pub fn cap() -> usize {
    42 << 10
}
