//! Fixture: `#[cfg(test)]` regions are invisible to every rule.

pub fn live() -> usize {
    7
}

#[cfg(test)]
mod tests {
    #[test]
    fn hidden() {
        let v: Vec<u8> = vec![1, 2, 3];
        assert_eq!(v.first().copied().unwrap_or(0), v[0]);
        Option::<u8>::None.unwrap();
        panic!("never linted");
    }
}
