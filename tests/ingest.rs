//! The write path's contract, end to end: batches route to the owning
//! shards by key range, visibility flips under exactly one catalog
//! version bump, pre-ingest cached results are never served
//! post-ingest, and ingest works the same over lazily-backed
//! (file-sourced) shards as over resident ones.

use lcdc::core::{ColumnData, DType};
use lcdc::store::{
    append_table, open_table_lazy, save_table, Agg, Catalog, CatalogTable, CompressionPolicy,
    Predicate, QuerySpec, ShardedTable, Table, TableSchema,
};
use proptest::prelude::*;
use std::path::Path;

/// Orders for `days` consecutive days starting at `first_day`:
/// `rows_per_day` rows each, qty cycling 1..=50.
fn orders(first_day: u64, days: u64, rows_per_day: u64) -> Table {
    let n = days * rows_per_day;
    let schema = TableSchema::new(&[("day", DType::U64), ("qty", DType::U64)]);
    let day = ColumnData::U64((0..n).map(|i| first_day + i / rows_per_day).collect());
    let qty = ColumnData::U64((0..n).map(|i| 1 + i % 50).collect());
    Table::build(
        schema,
        &[day, qty],
        &[CompressionPolicy::Auto, CompressionPolicy::Auto],
        256,
    )
    .expect("table builds")
}

fn batch(days: &[u64], qty: u64) -> Vec<ColumnData> {
    vec![
        ColumnData::U64(days.to_vec()),
        ColumnData::U64(vec![qty; days.len()]),
    ]
}

fn count_in(catalog: &Catalog, name: &str, lo: i128, hi: i128) -> (i128, usize) {
    let spec = QuerySpec::new()
        .filter("day", Predicate::Range { lo, hi })
        .aggregate(&[Agg::Count]);
    let result = catalog.execute(name, &spec).expect("executes");
    (
        result.aggregates().expect("aggregate sink")[0].expect("count"),
        result.stats.result_cache_hits,
    )
}

/// Save keyed shards as lazy directories under `root` and register.
fn lazy_keyed_catalog(root: &Path, shards: &[Table], key: &str) -> Catalog {
    let mut lazy = Vec::new();
    for (i, shard) in shards.iter().enumerate() {
        let dir = root.join(format!("orders.shard{i}"));
        save_table(shard, &dir).expect("saves");
        lazy.push(open_table_lazy(&dir, 8).expect("opens"));
    }
    let catalog = Catalog::new();
    catalog
        .register_sharded_keyed("orders", lazy, key)
        .expect("registers");
    catalog
}

/// The acceptance scenario: a sharded, *lazily-backed* catalog table
/// takes one batch spanning two shard key ranges. Rows land in the
/// correct shards (proved by per-shard row counts and per-shard
/// `QueryStats` over each range), the version bumps exactly once, and
/// the pre-ingest cached result is re-executed, returning the new rows.
#[test]
fn spanning_batch_into_lazy_sharded_catalog() {
    let root = std::env::temp_dir().join(format!("lcdc_ingest_accept_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    // Shard 0: days 1..=10, shard 1: days 1001..=1010.
    let catalog = lazy_keyed_catalog(&root, &[orders(1, 10, 100), orders(1001, 10, 100)], "day");
    let v1 = catalog.version("orders").expect("registered");

    // Warm the cache on both ranges, then prove the hits.
    let (low_before, _) = count_in(&catalog, "orders", 1, 500);
    let (high_before, _) = count_in(&catalog, "orders", 1001, 1500);
    assert_eq!((low_before, high_before), (1000, 1000));
    assert_eq!(count_in(&catalog, "orders", 1, 500).1, 1, "cache warm");

    // One batch spanning both key ranges: 3 rows for shard 0 (one on
    // the boundary day 10), 2 rows for shard 1.
    let v2 = catalog
        .ingest("orders", &batch(&[5, 1005, 10, 9, 2000], 7))
        .expect("ingests");
    assert_eq!(v2, v1 + 1, "exactly one version bump for the whole batch");

    // Rows landed in the correct shards...
    let (table, _) = catalog.get("orders").expect("registered");
    let CatalogTable::Sharded(sharded) = &table else {
        panic!("stays sharded");
    };
    assert_eq!(sharded.shards()[0].num_rows(), 1003);
    assert_eq!(sharded.shards()[1].num_rows(), 1002);

    // ...proved through per-shard QueryStats as well: a range query
    // over one shard's keys prunes the other shard wholesale, so the
    // count it returns was answered by the owning shard alone.
    let low = QuerySpec::new()
        .filter("day", Predicate::Range { lo: 1, hi: 500 })
        .aggregate(&[Agg::Count]);
    let after_low = catalog.execute("orders", &low).expect("executes");
    assert_eq!(after_low.stats.result_cache_hits, 0, "stale cache dropped");
    assert_eq!(after_low.stats.shards_pruned, 1, "{:?}", after_low.stats);
    assert_eq!(after_low.aggregates().unwrap(), &[Some(1003)]);
    let high = QuerySpec::new()
        .filter("day", Predicate::Range { lo: 1001, hi: 1500 })
        .aggregate(&[Agg::Count]);
    let after_high = catalog.execute("orders", &high).expect("executes");
    assert_eq!(after_high.stats.shards_pruned, 1, "{:?}", after_high.stats);
    assert_eq!(after_high.aggregates().unwrap(), &[Some(1001)]);
    // The out-of-every-range row (day 2000) went to the last shard.
    let (beyond, _) = count_in(&catalog, "orders", 1501, 5000);
    assert_eq!(beyond, 1);

    // And the new result re-caches under the new version.
    assert_eq!(
        catalog
            .execute("orders", &low)
            .unwrap()
            .stats
            .result_cache_hits,
        1
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn empty_batch_is_invisible() {
    let catalog = Catalog::new();
    let v1 = catalog
        .register_sharded_keyed(
            "orders",
            vec![orders(1, 10, 50), orders(1001, 10, 50)],
            "day",
        )
        .expect("registers");
    let before = count_in(&catalog, "orders", 1, 5000);
    let same = catalog.ingest("orders", &batch(&[], 0)).expect("no-op");
    assert_eq!(same, v1, "no version bump");
    let after = count_in(&catalog, "orders", 1, 5000);
    assert_eq!(after.0, before.0);
    assert_eq!(after.1, 1, "the cached result keeps being served");
}

#[test]
fn boundary_batch_lands_in_the_lower_shard() {
    let catalog = Catalog::new();
    catalog
        .register_sharded_keyed(
            "orders",
            vec![orders(1, 10, 50), orders(1001, 10, 50)],
            "day",
        )
        .expect("registers");
    // Every key exactly on shard 0's upper bound (day 10): all of it
    // belongs to shard 0, none leaks into shard 1.
    catalog
        .ingest("orders", &batch(&[10, 10, 10], 1))
        .expect("ingests");
    let (table, _) = catalog.get("orders").expect("registered");
    let CatalogTable::Sharded(sharded) = &table else {
        panic!("sharded");
    };
    assert_eq!(sharded.shards()[0].num_rows(), 503);
    assert_eq!(sharded.shards()[1].num_rows(), 500);
    // The key one past the boundary goes high.
    catalog.ingest("orders", &batch(&[11], 1)).expect("ingests");
    let (table, _) = catalog.get("orders").expect("registered");
    let CatalogTable::Sharded(sharded) = &table else {
        panic!("sharded");
    };
    assert_eq!(sharded.shards()[1].num_rows(), 501);
}

#[test]
fn lazy_table_ingest_reads_no_frames() {
    // Appending to a file-backed table must not load any existing
    // segment: encoding touches only the batch, and the chained source
    // keeps the base lazy.
    let root = std::env::temp_dir().join(format!("lcdc_ingest_lazy_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let dir = root.join("orders");
    save_table(&orders(1, 20, 100), &dir).expect("saves");
    let lazy = open_table_lazy(&dir, 8).expect("opens");

    let catalog = Catalog::new();
    catalog.register("orders", lazy);
    catalog
        .ingest("orders", &batch(&[3, 7], 9))
        .expect("ingests");
    let (table, _) = catalog.get("orders").expect("registered");
    assert_eq!(table.num_rows(), 2002);
    assert_eq!(table.io_reads(), 0, "ingest fetched no existing frame");

    // A zone-pruned query over the appended region reads only the
    // frames its tiers touch; the appended rows are visible.
    let (count, _) = count_in(&catalog, "orders", 3, 3);
    assert_eq!(count, 101);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn on_disk_ingest_matches_in_memory_append() {
    // The CLI-facing path: append_table on a saved directory, reopened
    // lazily, equals Table::append of the same batch.
    let root = std::env::temp_dir().join(format!("lcdc_ingest_disk_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let dir = root.join("t");
    let table = orders(1, 12, 70);
    save_table(&table, &dir).expect("saves");
    let extra = batch(&[4, 9, 2], 3);
    let total = append_table(
        &dir,
        &extra,
        &[CompressionPolicy::Auto, CompressionPolicy::Auto],
    )
    .expect("appends");
    assert_eq!(total, 843);
    let want = table.append(&extra).expect("appends in memory");
    let reopened = open_table_lazy(&dir, 8).expect("reopens");
    for col in ["day", "qty"] {
        assert_eq!(
            reopened.materialize(col).unwrap(),
            want.materialize(col).unwrap(),
            "{col}"
        );
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn routed_on_disk_ingest_places_like_the_catalog() {
    // lcdc ingest's sharded mode in library form: derive routing from
    // the shard manifests, split, append per directory — then verify
    // the directories answer like a catalog that ingested in memory.
    let root = std::env::temp_dir().join(format!("lcdc_ingest_route_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let shards = [orders(1, 10, 40), orders(1001, 10, 40)];
    let dirs: Vec<_> = (0..2)
        .map(|i| root.join(format!("orders.shard{i}")))
        .collect();
    for (shard, dir) in shards.iter().zip(&dirs) {
        save_table(shard, dir).expect("saves");
    }
    let lazy: Vec<Table> = dirs
        .iter()
        .map(|d| open_table_lazy(d, 4).expect("opens"))
        .collect();
    let sharded = ShardedTable::with_key(lazy, "day").expect("keys");
    let parts = sharded
        .partition_batch(&batch(&[2, 1002, 10, 11], 5))
        .expect("splits");
    for (dir, part) in dirs.iter().zip(&parts) {
        append_table(
            dir,
            part,
            &[CompressionPolicy::Auto, CompressionPolicy::Auto],
        )
        .expect("appends");
    }
    let s0 = open_table_lazy(&dirs[0], 4).expect("reopens");
    let s1 = open_table_lazy(&dirs[1], 4).expect("reopens");
    assert_eq!(s0.num_rows(), 402, "days 2 and 10 route low");
    assert_eq!(s1.num_rows(), 402, "days 1002 and 11 route high");
    std::fs::remove_dir_all(&root).ok();
}

/// A random spec cached at version v must never be served after an
/// ingest: the post-ingest execution runs for real and reflects the
/// appended rows whenever they fall inside the spec's window.
fn spec_for(lo: i128, width: i128, operator: usize) -> QuerySpec {
    let filtered = QuerySpec::new().filter("day", Predicate::Range { lo, hi: lo + width });
    match operator % 3 {
        0 => filtered.aggregate(&[Agg::Count, Agg::Sum("qty")]),
        1 => filtered.group_by("day").aggregate(&[Agg::Count]),
        _ => filtered.distinct("day"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn cached_results_never_survive_an_ingest(
        lo in 1i128..1900,
        width in 0i128..600,
        operator in 0usize..3,
        day in 1u64..1900,
        copies in 1usize..40,
    ) {
        let catalog = Catalog::new();
        catalog
            .register_sharded_keyed(
                "orders",
                vec![orders(1, 10, 50), orders(1001, 10, 50)],
                "day",
            )
            .expect("registers");
        let spec = spec_for(lo, width, operator);
        let first = catalog.execute("orders", &spec).expect("runs");
        prop_assert_eq!(first.stats.result_cache_hits, 0);
        let warm = catalog.execute("orders", &spec).expect("repeats");
        prop_assert_eq!(warm.stats.result_cache_hits, 1);

        let days = vec![day; copies];
        catalog.ingest("orders", &batch(&days, 13)).expect("ingests");
        let after = catalog.execute("orders", &spec).expect("re-runs");
        prop_assert_eq!(
            after.stats.result_cache_hits, 0,
            "a pre-ingest result was served post-ingest"
        );
        // When the ingested day falls inside the window, the fresh
        // execution must differ from the cached one exactly where the
        // batch says it should.
        if operator % 3 == 0 && (lo..=lo + width).contains(&(day as i128)) {
            let before_vals = first.aggregates().expect("agg");
            let after_vals = after.aggregates().expect("agg");
            prop_assert_eq!(after_vals[0], before_vals[0].map(|c| c + copies as i128));
            prop_assert_eq!(
                after_vals[1],
                before_vals[1].map(|s| s + 13 * copies as i128)
            );
        }
    }
}
