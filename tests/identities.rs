//! The paper's algebraic identities, property-tested across generated
//! data: `RLE ≡ (ID, DELTA) ∘ RPE`, `FOR ≡ STEPFUNCTION + NS`, and plan
//! ≡ fused decompression for every planned scheme.

use lcdc::core::schemes::{For, Rle, Rpe};
use lcdc::core::{parse_scheme, rewrite, ColumnData, Scheme};
use proptest::prelude::*;

fn runny_column(lens: &[usize], domain: u64) -> ColumnData {
    let mut v = Vec::new();
    for (i, len) in lens.iter().enumerate() {
        v.extend(std::iter::repeat_n(
            (i as u64).wrapping_mul(2654435761) % domain,
            *len,
        ));
    }
    ColumnData::U64(v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// §II-A: rewriting RLE's compressed form by one PrefixSum yields
    /// exactly RPE's compressed form, in both directions.
    #[test]
    fn rle_rpe_rewrites_are_inverse_bijections(
        lens in prop::collection::vec(1usize..30, 0..50),
        domain in 1u64..100,
    ) {
        let col = runny_column(&lens, domain);
        let c_rle = Rle.compress(&col).unwrap();
        let c_rpe = rewrite::rle_to_rpe(&c_rle).unwrap();
        prop_assert_eq!(&c_rpe, &Rpe.compress(&col).unwrap());
        prop_assert_eq!(&rewrite::rpe_to_rle(&c_rpe).unwrap(), &c_rle);
        prop_assert_eq!(Rpe.decompress(&c_rpe).unwrap(), col);
    }

    /// §II-A as scheme composition: `rpe[positions=delta]`'s nested
    /// deltas column equals RLE's lengths column.
    #[test]
    fn rpe_with_delta_positions_encodes_rle_lengths(
        lens in prop::collection::vec(1usize..30, 1..50),
    ) {
        let col = runny_column(&lens, 50);
        let composed = parse_scheme("rpe[values=id,positions=delta]").unwrap();
        let c = composed.compress(&col).unwrap();
        let c_rle = Rle.compress(&col).unwrap();

        // Dig out the nested delta form of the positions part.
        let nested = match &c.part("positions").unwrap().data {
            lcdc::core::PartData::Nested(n) => n,
            other => panic!("expected nested, got {other:?}"),
        };
        // DELTA stores first=lengths[0] and deltas[i]=lengths[i+1] shape:
        // positions[0]=lengths[0], positions[i]-positions[i-1]=lengths[i].
        let rle_lengths = c_rle.plain_part("lengths").unwrap().to_transport();
        let first = nested.params.get("first").unwrap() as u64;
        let deltas = nested.plain_part("deltas").unwrap().to_transport();
        let mut reconstructed_lengths = vec![first];
        reconstructed_lengths.extend(deltas);
        prop_assert_eq!(reconstructed_lengths, rle_lengths);
        prop_assert_eq!(composed.decompress(&c).unwrap(), col);
    }

    /// §II-B: the FOR form splits losslessly into STEPFUNCTION + NS and
    /// composes back.
    #[test]
    fn for_step_ns_identity(
        values in prop::collection::vec(0u64..1_000_000, 1..400),
        seg_len in 1usize..40,
    ) {
        let col = ColumnData::U64(values);
        let f = For::new(seg_len);
        let c = f.compress(&col).unwrap();
        let mr = rewrite::for_to_step_plus_ns(&c).unwrap();
        prop_assert_eq!(mr.reconstruct().unwrap(), col.clone());
        let rebuilt = rewrite::step_plus_ns_to_for(&mr).unwrap();
        prop_assert_eq!(f.decompress(&rebuilt).unwrap(), col);
    }

    /// The model half's certified L∞ error bound is sound.
    #[test]
    fn model_error_bound_is_sound(
        values in prop::collection::vec(0u64..1_000_000, 1..300),
        seg_len in 1usize..40,
    ) {
        let col = ColumnData::U64(values);
        let c = For::new(seg_len).compress(&col).unwrap();
        let mr = rewrite::for_to_step_plus_ns(&c).unwrap();
        let approx = mr.model_only().unwrap();
        let bound = mr.error_bound().unwrap() as i128;
        for i in 0..col.len() {
            let diff = col.get_numeric(i).unwrap() - approx.get_numeric(i).unwrap();
            prop_assert!((0..=bound).contains(&diff), "element {i}: diff {diff} bound {bound}");
        }
    }

    /// Zone bounds read off the FOR form are sound for every element.
    #[test]
    fn for_segment_bounds_sound(
        values in prop::collection::vec(any::<i64>(), 1..300),
        seg_len in 1usize..50,
    ) {
        let col = ColumnData::I64(values);
        let c = For::new(seg_len).compress(&col).unwrap();
        let bounds = rewrite::for_segment_bounds(&c).unwrap();
        for i in 0..col.len() {
            let (lo, hi) = bounds[i / seg_len];
            let v = col.get_numeric(i).unwrap();
            prop_assert!(v >= lo && v <= hi);
        }
    }

    /// Plan-interpreted decompression agrees with the fused path for
    /// every planned scheme, on arbitrary non-negative data.
    #[test]
    fn plans_agree_with_fused_paths(values in prop::collection::vec(0u64..1_000_000, 0..300)) {
        let col = ColumnData::U64(values);
        for expr in [
            "id", "ns", "delta", "rle", "rpe", "dict",
            "for(l=16)", "pfor(l=16,keep=900)", "varwidth", "linear(l=16)",
            "rle[values=delta[deltas=ns_zz],lengths=ns]",
        ] {
            let scheme = parse_scheme(expr).unwrap();
            let c = scheme.compress(&col).unwrap();
            let fused = scheme.decompress(&c).unwrap();
            let planned = lcdc::core::scheme::decompress_via_plan(scheme.as_ref(), &c).unwrap();
            prop_assert_eq!(&fused, &planned, "{}", expr);
            prop_assert_eq!(&fused, &col, "{}", expr);
        }
    }
}

#[test]
fn rpe_plan_is_rle_plan_minus_one_operator() {
    // The literal sentence of §II-A, checked structurally.
    let col = runny_column(&[3, 4, 1, 7], 10);
    let c_rle = Rle.compress(&col).unwrap();
    let c_rpe = Rpe.compress(&col).unwrap();
    let rle_plan = Rle.plan(&c_rle).unwrap();
    let rpe_plan = Rpe.plan(&c_rpe).unwrap();
    assert_eq!(rle_plan.num_nodes(), rpe_plan.num_nodes() + 1);
    // And the dropped operator is the PrefixSum of the lengths: RLE's
    // plan mentions two PrefixSums, RPE's only one.
    let count = |p: &lcdc::core::Plan| p.display().matches("= PrefixSum").count();
    assert_eq!(count(&rle_plan), 2);
    assert_eq!(count(&rpe_plan), 1);
}

#[test]
fn vstep_on_run_data_degenerates_to_rle_structure() {
    // With the tightest width budget (w=1, offsets < 2) and run values
    // further than the budget apart, VSTEP's frames are exactly the
    // runs: its positions column equals RPE's positions, its refs equal
    // the run values — the re-composed scheme contains the decomposed
    // pair.
    let col = ColumnData::U64(
        [(5usize, 10u64), (2, 50), (9, 10), (3, 90), (6, 30)]
            .iter()
            .flat_map(|&(len, v)| std::iter::repeat_n(v, len))
            .collect(),
    );
    let c_vstep = parse_scheme("vstep(w=1)").unwrap().compress(&col).unwrap();
    let c_rpe = Rpe.compress(&col).unwrap();
    assert_eq!(
        c_vstep.plain_part("positions").unwrap(),
        c_rpe.plain_part("positions").unwrap()
    );
    assert_eq!(
        c_vstep.plain_part("refs").unwrap(),
        c_rpe.plain_part("values").unwrap()
    );
    // And all offsets are zero.
    let offsets = c_vstep.plain_part("offsets").unwrap().to_transport();
    assert!(offsets.iter().all(|&o| o == 0));
}

#[test]
fn dfor_with_whole_column_segment_is_anchored_delta() {
    // With l >= n, DFOR is DELTA with the first value as an explicit
    // base: its delta column equals DELTA's with the leading value
    // replaced by zero.
    let col = ColumnData::I64(vec![100, 103, 99, 99, 150, -7]);
    let c_dfor = parse_scheme("dfor(l=100)").unwrap().compress(&col).unwrap();
    let c_delta = parse_scheme("delta").unwrap().compress(&col).unwrap();
    let dfor_deltas = c_dfor.plain_part("deltas").unwrap().to_transport();
    let delta_deltas = c_delta.plain_part("deltas").unwrap().to_transport();
    // DELTA stores n-1 adjacent differences (the first value is a
    // parameter); DFOR stores n with a leading 0 per segment.
    assert_eq!(dfor_deltas[0], 0);
    assert_eq!(&dfor_deltas[1..], &delta_deltas[..]);
}
