//! Chaos matrix for `lcdc serve`: seeded fault injection (disk read
//! errors, torn response frames, injected stalls), mid-query client
//! disconnects, and deadline expiry — racing real TCP clients against
//! the real server.
//!
//! Every test runs under a watchdog: the absence of hangs is itself an
//! assertion. The seeded [`FaultPlan`] keeps per-site fired counters,
//! so the exact-accounting tests can compare the server's
//! `deadline_exceeded` / `cancelled` / `io_faults` ledger against the
//! number of faults actually injected.

use lcdc::core::{ColumnData, DType};
use lcdc::store::{
    load_table, open_table_lazy, save_table, Catalog, Client, CompressionPolicy, FaultPlan,
    FaultSite, QueryArgs, Request, Response, RetryPolicy, Server, ServerConfig, Table, TableSchema,
};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Run `f` on a helper thread and panic if it does not finish within
/// `secs` — the no-hang guarantee every chaos scenario must uphold.
fn with_timeout<T: Send + 'static>(
    secs: u64,
    name: &'static str,
    f: impl FnOnce() -> T + Send + 'static,
) -> T {
    let (tx, rx) = std::sync::mpsc::channel();
    let handle = std::thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(Duration::from_secs(secs)) {
        Ok(v) => {
            let _ = handle.join();
            v
        }
        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => match handle.join() {
            Err(panic) => std::panic::resume_unwind(panic),
            Ok(_) => panic!("{name}: worker exited without reporting"),
        },
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
            panic!("{name}: hung past {secs}s — cancellation failed to drain")
        }
    }
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lcdc_chaos_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Build the deterministic orders table (day clustered, qty cycling
/// 1..=50 so qty filters never prune), save it, and return the
/// in-memory copy — the fault-free oracle every answer is checked
/// against.
fn saved_orders(dir: &Path, rows: u64, seg_rows: usize) -> Table {
    let schema = TableSchema::new(&[("day", DType::U64), ("qty", DType::U64)]);
    let day = ColumnData::U64((0..rows).map(|i| 1 + i / 100).collect());
    let qty = ColumnData::U64((0..rows).map(|i| 1 + i % 50).collect());
    let table = Table::build(
        schema,
        &[day, qty],
        &[CompressionPolicy::Auto, CompressionPolicy::Auto],
        seg_rows,
    )
    .unwrap();
    save_table(&table, dir).unwrap();
    table
}

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

/// A qty sum+count query whose filter range varies with `i`: distinct
/// fingerprints (no result-cache hits) but identical scan shapes (the
/// qty zone maps span 1..=50 everywhere, so nothing prunes).
fn qty_query(i: u64) -> Vec<String> {
    args(&[
        "--filter",
        &format!("qty={}..{}", 1 + i % 5, 30 + i % 20),
        "--sum",
        "qty",
        "--count",
    ])
}

/// The fault-free answer for a query, computed on the resident oracle.
fn oracle(table: &Table, query: &[String]) -> lcdc::store::Rows {
    let spec = QueryArgs::parse(query).unwrap().spec;
    spec.bind(table).execute().unwrap().rows
}

/// Register the saved table as a lazy catalog table with `plan` armed
/// on its file sources, and start a server over it.
fn serve_faulty(
    dir: &Path,
    cache: usize,
    plan: &Arc<FaultPlan>,
    config: ServerConfig,
) -> (Server, Arc<Catalog>) {
    let lazy = open_table_lazy(dir, cache).unwrap();
    lazy.inject_faults(plan);
    let catalog = Arc::new(Catalog::new());
    catalog.register("orders", lazy);
    let server = Server::start(Arc::clone(&catalog), "127.0.0.1:0", config).unwrap();
    (server, catalog)
}

/// The endpoint row for `query` out of a stats report.
fn query_endpoint(report: &lcdc::store::StatsReport) -> lcdc::store::EndpointStats {
    report
        .endpoints
        .iter()
        .find(|e| e.endpoint == "query")
        .cloned()
        .unwrap_or_default()
}

/// Acceptance, part 1: with a read fault injected every 7th disk read
/// and a single-worker pool serving one sequential client, every
/// injected fault surfaces as exactly one typed error answer — and the
/// server's `io_faults` counter matches the plan's fired count
/// exactly. Healthy queries keep answering correctly between faults.
#[test]
fn injected_read_faults_surface_typed_and_count_exactly() {
    with_timeout(60, "read-fault accounting", || {
        let dir = fresh_dir("io");
        let resident = saved_orders(&dir, 3000, 256);
        let plan = Arc::new(FaultPlan::parse("io_read:every=7", 42).unwrap());
        let (server, _catalog) = serve_faulty(
            &dir,
            1, // single-segment cache: every query re-reads from disk
            &plan,
            ServerConfig {
                threads: 1,
                max_inflight: 4,
                ..ServerConfig::default()
            },
        );
        let mut client = Client::connect(server.addr()).unwrap();
        let mut error_answers = 0u64;
        for i in 0..30 {
            let query = qty_query(i);
            match client.query("orders", &query).unwrap() {
                Response::Rows { rows, .. } => {
                    assert_eq!(rows, oracle(&resident, &query), "query {i}");
                }
                Response::Error { message } => {
                    assert!(
                        message.contains("injected read fault"),
                        "query {i}: only injected faults may error, got {message:?}"
                    );
                    error_answers += 1;
                }
                other => panic!("query {i}: unexpected {other:?}"),
            }
        }
        let injected = plan.injected(FaultSite::IoRead);
        assert!(injected > 0, "30 cold scans must trip every=7");
        assert_eq!(error_answers, injected, "one typed error per fault");
        let q = query_endpoint(&server.report());
        assert_eq!(q.io_faults, injected, "server ledger matches the plan");
        assert_eq!(q.deadline_exceeded + q.cancelled, 0);
        assert_eq!(
            q.deadline_exceeded + q.cancelled + q.io_faults,
            injected,
            "typed-outcome counters account for every injected fault"
        );
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    });
}

/// Acceptance, part 2: a query whose deadline expires while it waits
/// behind a heavy query (a) answers a typed DEADLINE well before the
/// heavy query finishes, (b) frees its in-flight slot (a follow-up
/// query is admitted against `max_inflight: 2` while the heavy one
/// still runs), and (c) abandons its unclaimed morsels — proven by the
/// stall-site fired counter: the expired query contributes *zero*
/// disk reads.
#[test]
fn deadline_expiry_frees_slot_and_abandons_queued_morsels() {
    with_timeout(60, "deadline expiry", || {
        let dir = fresh_dir("deadline");
        let resident = saved_orders(&dir, 1536, 256);
        // Every disk read sleeps 40ms: queries are deterministically
        // slow, and the fired counter is a disk-read counter.
        let plan = Arc::new(FaultPlan::parse("io_stall:ms=40,every=1", 0).unwrap());
        let (server, _catalog) = serve_faulty(
            &dir,
            1,
            &plan,
            ServerConfig {
                threads: 1,
                max_inflight: 2,
                ..ServerConfig::default()
            },
        );
        let addr = server.addr();

        // Touch both columns so every query reads 2 columns x 6
        // segments — slow enough that a 120ms deadline expires with a
        // wide margin while the heavy query still runs. The day filter
        // never prunes (days span 1..=16); varying qty ranges keep the
        // fingerprints distinct.
        let two_col_query = |i: u64| {
            args(&[
                "--filter",
                "day=1..100",
                "--filter",
                &format!("qty={}..{}", 1 + i % 5, 30 + i % 20),
                "--sum",
                "qty",
                "--count",
            ])
        };

        // Calibrate: one full query costs `reads_per_query` stalled
        // reads (identical scan shape for every two_col_query).
        let calibrate = two_col_query(0);
        let mut c0 = Client::connect(addr).unwrap();
        match c0.query("orders", &calibrate).unwrap() {
            Response::Rows { rows, .. } => assert_eq!(rows, oracle(&resident, &calibrate)),
            other => panic!("calibration: {other:?}"),
        }
        let reads_per_query = plan.injected(FaultSite::IoStall);
        assert!(reads_per_query >= 6, "6 segments x 2 columns read cold");

        // An immediately-expired deadline is refused before any work.
        let mut d = Client::connect(addr).unwrap();
        d.set_deadline_ms(Some(0));
        match d.query("orders", &two_col_query(1)).unwrap() {
            Response::Deadline { deadline_ms } => assert_eq!(deadline_ms, 0),
            other => panic!("deadline 0: {other:?}"),
        }

        // Heavy query A occupies the single worker...
        let heavy = two_col_query(2);
        let heavy_oracle = oracle(&resident, &heavy);
        let a = std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            c.query("orders", &heavy).unwrap()
        });
        std::thread::sleep(Duration::from_millis(30));

        // ...B queues behind it with a 120ms deadline: typed answer,
        // long before A's ~`reads_per_query * 40ms` finish line.
        let mut b = Client::connect(addr).unwrap();
        b.set_deadline_ms(Some(120));
        let asked = Instant::now();
        match b.query("orders", &two_col_query(3)).unwrap() {
            Response::Deadline { deadline_ms } => assert_eq!(deadline_ms, 120),
            other => panic!("deadline 120: {other:?}"),
        }
        let waited = asked.elapsed();
        assert!(
            waited < Duration::from_millis(reads_per_query * 40 * 3 / 4),
            "typed deadline answer must not wait for the heavy query ({waited:?})"
        );

        // B's slot is free: C is admitted (max_inflight 2, A still
        // holds one slot) and answers correctly once A drains.
        let query_c = two_col_query(4);
        let mut c = Client::connect(addr).unwrap();
        match c.query("orders", &query_c).unwrap() {
            Response::Rows { rows, .. } => assert_eq!(rows, oracle(&resident, &query_c)),
            other => panic!("post-deadline query: {other:?}"),
        }
        match a.join().unwrap() {
            Response::Rows { rows, .. } => assert_eq!(rows, heavy_oracle),
            other => panic!("heavy query: {other:?}"),
        }

        // Morsel abandonment, exactly: calibration + A + C read;
        // the zero-deadline and expired-deadline queries read nothing.
        assert_eq!(
            plan.injected(FaultSite::IoStall),
            3 * reads_per_query,
            "expired queries must execute zero morsels"
        );
        let q = query_endpoint(&server.report());
        assert_eq!(q.deadline_exceeded, 2, "deadline 0 + deadline 120");
        assert_eq!(q.cancelled + q.io_faults, 0);
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    });
}

/// A client that vanishes mid-query is detected by the session's wait
/// tick: the query is cancelled (typed, counted), its morsels are
/// abandoned, and the server keeps answering healthy requests.
#[test]
fn mid_query_disconnect_cancels_and_counts_exactly() {
    with_timeout(60, "mid-query disconnect", || {
        let dir = fresh_dir("disconnect");
        let resident = saved_orders(&dir, 1536, 256);
        let plan = Arc::new(FaultPlan::parse("io_stall:ms=40,every=1", 0).unwrap());
        let (server, _catalog) = serve_faulty(
            &dir,
            1,
            &plan,
            ServerConfig {
                threads: 1,
                max_inflight: 4,
                ..ServerConfig::default()
            },
        );
        let addr = server.addr();

        // Heavy query A holds the single worker.
        let heavy = qty_query(10);
        let heavy_oracle = oracle(&resident, &heavy);
        let a = std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            c.query("orders", &heavy).unwrap()
        });
        std::thread::sleep(Duration::from_millis(30));

        // Two raw connections send a query frame and hang up at once:
        // their sessions must notice, cancel, and account — without a
        // worker ever executing their morsels.
        for i in 0..2u64 {
            let mut stream = TcpStream::connect(addr).unwrap();
            Request::Query {
                table: "orders".into(),
                args: qty_query(20 + i),
                deadline_ms: None,
            }
            .write_to(&mut stream)
            .unwrap();
            drop(stream);
        }

        // The cancellations land on the sessions' wait ticks; poll the
        // ledger (the watchdog bounds this loop).
        loop {
            let q = query_endpoint(&server.report());
            if q.cancelled == 2 {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }

        match a.join().unwrap() {
            Response::Rows { rows, .. } => assert_eq!(rows, heavy_oracle),
            other => panic!("heavy query: {other:?}"),
        }
        let q = query_endpoint(&server.report());
        assert_eq!(q.cancelled, 2, "both abandoned queries counted");
        assert_eq!(q.deadline_exceeded + q.io_faults, 0);
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    });
}

/// The full matrix: 8 clients race a 3-worker server through injected
/// disk faults, universal read stalls, torn response frames, and
/// mid-query disconnects. Healthy clients retry past every typed
/// fault and reconnect past every torn frame — and every answer they
/// accept must be exactly correct. The pool must never execute wider
/// than configured, and the server must still drain cleanly.
#[test]
fn eight_clients_race_the_fault_matrix() {
    with_timeout(120, "fault matrix", || {
        const HEALTHY: u64 = 6;
        const DISCONNECTORS: u64 = 2;
        const QUERIES_EACH: u64 = 8;

        let dir = fresh_dir("matrix");
        let resident = Arc::new(saved_orders(&dir, 4000, 256));
        let plan = Arc::new(
            FaultPlan::parse(
                "io_read:every=7; io_stall:ms=3,every=1; frame_truncate:p=0.05",
                1234,
            )
            .unwrap(),
        );
        let (server, _catalog) = serve_faulty(
            &dir,
            2,
            &plan,
            ServerConfig {
                threads: 3,
                max_inflight: 8,
                faults: Some(Arc::clone(&plan)),
                ..ServerConfig::default()
            },
        );
        let addr = server.addr();

        std::thread::scope(|scope| {
            for client_id in 0..HEALTHY {
                let resident = Arc::clone(&resident);
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    for i in 0..QUERIES_EACH {
                        let query = qty_query(client_id * 100 + i);
                        let want = oracle(&resident, &query);
                        let mut attempts = 0;
                        loop {
                            attempts += 1;
                            assert!(
                                attempts <= 50,
                                "client {client_id} query {i}: no answer after 50 attempts"
                            );
                            match client.query("orders", &query) {
                                Ok(Response::Rows { rows, .. }) => {
                                    assert_eq!(rows, want, "client {client_id} query {i}");
                                    break;
                                }
                                Ok(Response::Error { message }) => {
                                    // Typed injected fault: retry.
                                    assert!(
                                        message.contains("injected"),
                                        "client {client_id}: non-injected error {message:?}"
                                    );
                                }
                                Ok(Response::Busy { retry_after_ms, .. }) => {
                                    std::thread::sleep(Duration::from_millis(retry_after_ms));
                                }
                                Ok(other) => {
                                    panic!("client {client_id}: unexpected {other:?}")
                                }
                                Err(_) => {
                                    // Torn frame or dropped connection:
                                    // reconnect and retry.
                                    client = Client::connect(addr).unwrap();
                                }
                            }
                        }
                    }
                });
            }
            for d in 0..DISCONNECTORS {
                scope.spawn(move || {
                    for round in 0..3u64 {
                        let Ok(mut stream) = TcpStream::connect(addr) else {
                            continue;
                        };
                        let _ = Request::Query {
                            table: "orders".into(),
                            args: qty_query(1000 + d * 10 + round),
                            deadline_ms: None,
                        }
                        .write_to(&mut stream);
                        std::thread::sleep(Duration::from_millis(30));
                        drop(stream);
                        std::thread::sleep(Duration::from_millis(50));
                    }
                });
            }
        });

        let report = server.shutdown();
        assert!(
            report.peak_leases <= 3,
            "pool never executes wider than its 3 workers under chaos"
        );
        let q = query_endpoint(&report);
        assert!(
            q.io_faults >= 1,
            "every=7 across hundreds of cold reads must fire"
        );
        assert!(
            q.cancelled >= 1,
            "mid-query disconnects must surface as cancellations"
        );
        // Unlike the single-worker accounting test, exactness is not
        // promised here: with 3 workers racing, leases in flight after
        // the first error may consume further fired faults for the
        // same query. The ledger must stay within the injected count.
        assert!(
            q.io_faults <= plan.injected(FaultSite::IoRead),
            "the ledger never invents faults ({} counted, {} injected)",
            q.io_faults,
            plan.injected(FaultSite::IoRead)
        );
        let _ = std::fs::remove_dir_all(&dir);
    });
}

/// Busy answers carry a nonzero drain hint, and the client's retry
/// policy spends its budget on them before surfacing the rejection —
/// with the retries/gave-up counters proving the discipline ran.
#[test]
fn busy_retries_with_backoff_then_gives_up() {
    with_timeout(60, "busy retry", || {
        let dir = fresh_dir("busy");
        let _resident = saved_orders(&dir, 500, 256);
        let catalog = Arc::new(Catalog::new());
        catalog.register("orders", load_table(&dir).unwrap());
        let server = Server::start(
            catalog,
            "127.0.0.1:0",
            ServerConfig {
                threads: 1,
                max_inflight: 0, // deterministically busy
                ..ServerConfig::default()
            },
        )
        .unwrap();
        let policy = RetryPolicy {
            max_retries: 3,
            base_ms: 1,
            cap_ms: 4,
            seed: 9,
        };
        let mut client = Client::connect_with(server.addr(), policy).unwrap();
        match client.query("orders", &qty_query(0)).unwrap() {
            Response::Busy { retry_after_ms, .. } => {
                assert!(retry_after_ms >= 1, "hint is never zero");
            }
            other => panic!("expected busy, got {other:?}"),
        }
        assert_eq!(client.retries(), 3, "the whole retry budget was spent");
        assert_eq!(client.gave_up(), 1, "then the rejection surfaced");
        server.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    });
}

/// A refused connection is retried under the policy; against a port
/// nobody listens on, the connect still fails typed (and promptly)
/// once the budget is spent.
#[test]
fn connect_refused_retries_then_surfaces() {
    with_timeout(60, "connect refused", || {
        // Bind and immediately drop: the port is real but closed.
        let addr = {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.local_addr().unwrap()
        };
        let policy = RetryPolicy {
            max_retries: 2,
            base_ms: 1,
            cap_ms: 2,
            seed: 3,
        };
        let started = Instant::now();
        assert!(Client::connect_with(addr, policy).is_err());
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "refused connects must fail fast, not hang"
        );
    });
}
