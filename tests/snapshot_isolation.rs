//! Snapshot-isolation stress: `Catalog::ingest` racing concurrent
//! queries, in-process and through the serving layer.
//!
//! The catalog's contract is that an ingest is **one version bump** —
//! a query either sees the whole batch or none of it, and the result
//! cache never serves rows across a bump. These tests hammer that
//! contract from many threads: every answer must equal the exact rows
//! of *one* published version (identified by the version tag
//! [`Catalog::execute_versioned_with`] returns), never a torn mix.

use lcdc::core::{ColumnData, DType};
use lcdc::store::{
    Agg, Catalog, Client, CompressionPolicy, ExecOptions, Predicate, QuerySpec, Response, Rows,
    Server, ServerConfig, Table, TableSchema,
};
use std::sync::Arc;

const BASE_ROWS: u64 = 3000;
const BATCH_ROWS: u64 = 128;
const BATCHES: u64 = 8;
const HOT_DAY: u64 = 777;
const HOT_QTY: u64 = 3;

fn base_table(seg_rows: usize) -> Table {
    let schema = TableSchema::new(&[("day", DType::U64), ("qty", DType::U64)]);
    let day = ColumnData::U64((0..BASE_ROWS).map(|i| 1 + i / 100).collect());
    let qty = ColumnData::U64((0..BASE_ROWS).map(|i| 1 + i % 50).collect());
    Table::build(
        schema,
        &[day, qty],
        &[CompressionPolicy::Auto, CompressionPolicy::Auto],
        seg_rows,
    )
    .unwrap()
}

fn hot_batch() -> Vec<ColumnData> {
    vec![
        ColumnData::U64(vec![HOT_DAY; BATCH_ROWS as usize]),
        ColumnData::U64(vec![HOT_QTY; BATCH_ROWS as usize]),
    ]
}

fn hot_spec() -> QuerySpec {
    QuerySpec::new()
        .filter(
            "day",
            Predicate::Range {
                lo: HOT_DAY as i128,
                hi: HOT_DAY as i128,
            },
        )
        .aggregate(&[Agg::Sum("qty"), Agg::Count])
}

/// The exact hot-filter rows at `v0 + committed`.
fn expected_hot(committed: u64) -> Rows {
    let count = committed * BATCH_ROWS;
    Rows::Aggregates(vec![Some((count * HOT_QTY) as i128), Some(count as i128)])
}

/// Direct in-process race: reader threads execute through the
/// version-tagged seam while a writer ingests. Every observed
/// `(version, rows)` pair must match exactly; versions must never run
/// backwards within one reader.
#[test]
fn direct_queries_see_exactly_one_version() {
    let catalog = Arc::new(Catalog::new());
    catalog.register("orders", base_table(256));
    let v0 = catalog.version("orders").unwrap();
    let spec = hot_spec();

    std::thread::scope(|scope| {
        for r in 0..4 {
            let (catalog, spec) = (&catalog, &spec);
            scope.spawn(move || {
                let opts = ExecOptions::threads(1 + r % 3);
                let mut last_version = v0;
                for _ in 0..60 {
                    let (result, version) = catalog
                        .execute_versioned_with("orders", spec, |t, join| {
                            t.execute_opts_join(spec, &opts, join)
                        })
                        .unwrap();
                    let committed = version - v0;
                    assert!(committed <= BATCHES);
                    assert_eq!(
                        result.rows,
                        expected_hot(committed),
                        "rows must be version {version}'s snapshot"
                    );
                    assert!(version >= last_version, "versions ran backwards");
                    last_version = version;
                }
            });
        }
        scope.spawn(|| {
            for b in 0..BATCHES {
                std::thread::sleep(std::time::Duration::from_millis(2));
                let version = catalog.ingest("orders", &hot_batch()).unwrap();
                assert_eq!(version, v0 + b + 1);
            }
        });
    });
    assert_eq!(catalog.version("orders").unwrap(), v0 + BATCHES);
}

/// The same race through a keyed *sharded* table: routed ingest is
/// still one atomic bump across all shards — a reader must never see a
/// batch split across shards at two different versions.
#[test]
fn sharded_ingest_publishes_all_shards_atomically() {
    let catalog = Arc::new(Catalog::new());
    let full = base_table(256);
    let shards = lcdc::store::shard_table(&full, 3).unwrap();
    catalog
        .register_sharded_keyed("orders", shards, "day")
        .unwrap();
    let v0 = catalog.version("orders").unwrap();
    // Rows routing to different shards in one batch: days drawn from
    // every third of the base day range [1, 31]. The filter then spans
    // all shards, so a torn publish would be visible as a partial sum.
    let batch = || {
        let days: Vec<u64> = (0..BATCH_ROWS).map(|i| 1 + (i % 3) * 10).collect();
        vec![
            ColumnData::U64(days),
            ColumnData::U64(vec![HOT_QTY; BATCH_ROWS as usize]),
        ]
    };
    let spec = QuerySpec::new()
        .filter_in("day", &[1, 11, 21])
        .aggregate(&[Agg::Count]);
    let base_count = (catalog
        .execute("orders", &spec)
        .unwrap()
        .aggregates()
        .unwrap()[0])
        .unwrap();

    std::thread::scope(|scope| {
        for _ in 0..3 {
            let (catalog, spec) = (&catalog, &spec);
            scope.spawn(move || {
                for _ in 0..50 {
                    let (result, version) = catalog
                        .execute_versioned_with("orders", spec, |t, join| {
                            t.execute_opts_join(spec, &ExecOptions::threads(2), join)
                        })
                        .unwrap();
                    let committed = (version - v0) as i128;
                    assert_eq!(
                        result.aggregates().unwrap()[0],
                        Some(base_count + committed * BATCH_ROWS as i128),
                        "batch visible in full or not at all at v{version}"
                    );
                }
            });
        }
        scope.spawn(|| {
            for _ in 0..BATCHES {
                std::thread::sleep(std::time::Duration::from_millis(2));
                catalog.ingest("orders", &batch()).unwrap();
            }
        });
    });
}

/// Cache coherence under racing bumps: a cached result may only ever
/// be served for the version it was computed against. The version tag
/// on every answer makes the check exact, cache hit or miss.
#[test]
fn result_cache_never_crosses_version_bumps() {
    let catalog = Arc::new(Catalog::new());
    catalog.register("orders", base_table(512));
    let v0 = catalog.version("orders").unwrap();
    let spec = hot_spec();

    std::thread::scope(|scope| {
        for _ in 0..3 {
            let (catalog, spec) = (&catalog, &spec);
            scope.spawn(move || {
                let mut hits = 0u32;
                for _ in 0..80 {
                    let (result, version) = catalog
                        .execute_versioned_with("orders", spec, |t, join| {
                            t.execute_opts_join(spec, &ExecOptions::threads(1), join)
                        })
                        .unwrap();
                    if result.stats.result_cache_hits > 0 {
                        hits += 1;
                    }
                    // Hit or miss, the rows must be the tagged
                    // version's — a stale cache entry served across a
                    // bump would pair new-version tags with old rows
                    // or vice versa.
                    assert_eq!(result.rows, expected_hot(version - v0));
                }
                // With 80 probes against 8 slow bumps, re-probes of an
                // unchanged version must hit the cache at least once —
                // this test exercises hits, not just misses.
                assert!(hits > 0, "cache never engaged; the test lost its teeth");
            });
        }
        scope.spawn(|| {
            for _ in 0..BATCHES {
                std::thread::sleep(std::time::Duration::from_millis(3));
                catalog.ingest("orders", &hot_batch()).unwrap();
            }
        });
    });
}

/// The join-specific cache hazard: a join's classic cache key —
/// `(fingerprint, left version)` — never moves when only the *right*
/// table is ingested into. Isolation then rests entirely on the cached
/// entry's right-table version. Readers race a right-side writer: every
/// answer's pair count must be an exact whole number of committed
/// batches, non-decreasing per reader, and the post-race probe must see
/// all of them — a stale cached join would stay frozen at batch zero.
#[test]
fn join_results_track_the_right_tables_version() {
    const LEFT_DAY1_ROWS: i128 = 100; // base_table: 100 rows per day
    let unit = LEFT_DAY1_ROWS * BATCH_ROWS as i128;
    let catalog = Arc::new(Catalog::new());
    catalog.register("orders", base_table(256)); // left: never written again
                                                 // The right side starts fully disjoint from the left's day range,
                                                 // so batch zero joins to nothing.
    catalog.register(
        "days",
        Table::build(
            TableSchema::new(&[("day", DType::U64)]),
            &[ColumnData::U64(vec![9999; 512])],
            &[CompressionPolicy::Auto],
            256,
        )
        .unwrap(),
    );
    let v0 = catalog.version("orders").unwrap();
    let spec = QuerySpec::new().join("days", "day");
    let committed_of = |result: &lcdc::store::QueryResult| -> i128 {
        match result.joined().unwrap() {
            [] => 0,
            [(1, pairs)] => {
                assert_eq!(pairs % unit, 0, "a torn batch leaked into the join");
                pairs / unit
            }
            other => panic!("unexpected join rows {other:?}"),
        }
    };

    std::thread::scope(|scope| {
        for _ in 0..3 {
            let (catalog, spec) = (&catalog, &spec);
            scope.spawn(move || {
                let mut last = 0i128;
                for _ in 0..60 {
                    let (result, version) = catalog
                        .execute_versioned_with("orders", spec, |t, join| {
                            t.execute_opts_join(spec, &ExecOptions::threads(2), join)
                        })
                        .unwrap();
                    assert_eq!(version, v0, "the left table never bumps");
                    let committed = committed_of(&result);
                    assert!((0..=BATCHES as i128).contains(&committed));
                    assert!(committed >= last, "right-table versions ran backwards");
                    last = committed;
                }
            });
        }
        scope.spawn(|| {
            for _ in 0..BATCHES {
                std::thread::sleep(std::time::Duration::from_millis(2));
                catalog
                    .ingest("days", &[ColumnData::U64(vec![1; BATCH_ROWS as usize])])
                    .unwrap();
            }
        });
    });

    // Deterministic staleness probe: the left version is still v0, so a
    // cache keyed on the left version alone would happily serve the
    // pre-ingest pairs here. Run twice — the second answer must be a
    // cache hit *and* current.
    let after = catalog.execute("orders", &spec).unwrap();
    assert_eq!(committed_of(&after), BATCHES as i128, "all batches visible");
    let cached = catalog.execute("orders", &spec).unwrap();
    assert!(
        cached.stats.result_cache_hits > 0,
        "the probe re-used the cache"
    );
    assert_eq!(committed_of(&cached), BATCHES as i128);
}

/// The same isolation guarantee holds end to end through the server:
/// wire ingests racing wire queries, plus a direct in-process writer
/// on the *same* catalog the server holds — the server is just another
/// `Arc` holder, and isolation comes from the catalog, not the wire.
#[test]
fn server_and_direct_writers_stay_snapshot_isolated() {
    let catalog = Arc::new(Catalog::new());
    catalog.register("orders", base_table(256));
    let v0 = catalog.version("orders").unwrap();
    let server = Server::start(
        Arc::clone(&catalog),
        "127.0.0.1:0",
        ServerConfig {
            threads: 2,
            max_inflight: 32,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();
    let args: Vec<String> = ["--filter", "day=777..777", "--sum", "qty", "--count"]
        .iter()
        .map(|s| s.to_string())
        .collect();

    std::thread::scope(|scope| {
        for _ in 0..4 {
            let args = &args;
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for _ in 0..40 {
                    match client.query("orders", args).unwrap() {
                        Response::Rows { version, rows, .. } => {
                            assert_eq!(rows, expected_hot(version - v0));
                        }
                        other => panic!("{other:?}"),
                    }
                }
            });
        }
        // Half the batches commit over the wire, half directly in
        // process, interleaved.
        scope.spawn(|| {
            let mut client = Client::connect(addr).unwrap();
            for b in 0..BATCHES {
                std::thread::sleep(std::time::Duration::from_millis(2));
                if b % 2 == 0 {
                    let r = client.ingest("orders", hot_batch()).unwrap();
                    assert!(matches!(r, Response::Ingested { .. }), "{r:?}");
                } else {
                    catalog.ingest("orders", &hot_batch()).unwrap();
                }
            }
        });
    });

    assert_eq!(catalog.version("orders").unwrap(), v0 + BATCHES);
    server.shutdown();
}
