//! Integration tests for the binary wire format across the whole scheme
//! zoo and generated workloads: serialise → deserialise → decompress
//! must equal the original, and the scheme id must be self-describing.

use lcdc::core::{bytes, chooser, parse_scheme, ColumnData};
use proptest::prelude::*;

fn workloads() -> Vec<ColumnData> {
    vec![
        ColumnData::U64(lcdc::datagen::shipped_order_dates(100, 30, 20_180_101, 1)),
        ColumnData::U64(lcdc::datagen::step_column(3000, 64, 1 << 30, 100, 2)),
        ColumnData::U64(lcdc::datagen::sawtooth_trend(3000, 512, 9, 1 << 16, 32, 3)),
        ColumnData::U64(lcdc::datagen::zipf_codes(3000, 32, 1.1, 4)),
        ColumnData::I64(
            lcdc::datagen::uniform(3000, 1 << 40, 5)
                .into_iter()
                .map(|v| v as i64 - (1 << 39))
                .collect(),
        ),
    ]
}

#[test]
fn chooser_output_survives_the_wire_for_every_workload() {
    for col in workloads() {
        let choice = chooser::choose_best(&col).expect("chooser runs");
        let wire = bytes::to_bytes(&choice.compressed);
        let received = bytes::from_bytes(&wire).expect("valid frame");
        assert_eq!(received, choice.compressed);
        // The frame is self-describing: rebuild the scheme from its id.
        let scheme = parse_scheme(&received.scheme_id).expect("self-describing");
        assert_eq!(scheme.decompress(&received).expect("decompresses"), col);
    }
}

#[test]
fn every_candidate_survives_the_wire() {
    let col = ColumnData::U64((0..2000u64).map(|i| 500 + (i / 13) % 64).collect());
    for expr in chooser::default_candidates() {
        let scheme = parse_scheme(expr).unwrap();
        let Ok(c) = scheme.compress(&col) else {
            continue;
        };
        let received = bytes::from_bytes(&bytes::to_bytes(&c)).expect(expr);
        assert_eq!(scheme.decompress(&received).unwrap(), col, "{expr}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn wire_round_trips_arbitrary_columns(values in prop::collection::vec(any::<i64>(), 0..300)) {
        let col = ColumnData::I64(values);
        let choice = chooser::choose_best(&col).unwrap();
        let received = bytes::from_bytes(&bytes::to_bytes(&choice.compressed)).unwrap();
        prop_assert_eq!(&received, &choice.compressed);
        let scheme = parse_scheme(&received.scheme_id).unwrap();
        prop_assert_eq!(scheme.decompress(&received).unwrap(), col);
    }

    #[test]
    fn bit_flips_never_panic(flip in 0usize..4096) {
        let col = ColumnData::U64((0..500u64).map(|i| i % 97).collect());
        let c = parse_scheme("rle[values=ns,lengths=ns]").unwrap().compress(&col).unwrap();
        let mut wire = bytes::to_bytes(&c);
        let pos = flip % wire.len();
        wire[pos] ^= 0x5A;
        // Either a clean error or a *valid* different frame (flips in
        // payload bits can produce decodable-but-different columns); the
        // requirement is: no panic, and any accepted frame decompresses
        // without panicking.
        if let Ok(received) = bytes::from_bytes(&wire) {
            if let Ok(scheme) = parse_scheme(&received.scheme_id) {
                let _ = scheme.decompress(&received);
            }
        }
    }
}

#[test]
fn random_access_agrees_on_deserialised_forms() {
    let col = ColumnData::U64(lcdc::datagen::step_column(5000, 128, 1 << 20, 64, 9));
    for expr in ["ns", "for(l=128)", "varwidth", "dict", "pstep(l=128)"] {
        let scheme = parse_scheme(expr).unwrap();
        let c = scheme.compress(&col).unwrap();
        let received = bytes::from_bytes(&bytes::to_bytes(&c)).unwrap();
        for pos in (0..col.len()).step_by(617) {
            let got = lcdc::core::access::value_at(&received, pos).unwrap();
            assert_eq!(got, col.get_transport(pos), "{expr} at {pos}");
        }
    }
}
