//! The equi-join sink's contract, property-tested differentially:
//!
//! * **Rows** — for every combination of key schemes (CONST / DICT /
//!   RLE / chooser-picked), key distributions, shard layouts, and
//!   filters, the compressed-domain join must produce exactly the
//!   decoded nested-loop oracle's `(key, pair count)` rows — compared
//!   both against `execute_naive` and against an independent oracle
//!   computed here from the raw vectors the tables were built from.
//! * **Ledgers** — on the race-free single-worker path with forced
//!   structural schemes, the three join counters are predicted
//!   *exactly* from the raw data: zone-pair pruning from per-segment
//!   `[min, max]`, undecoded rows from which segments' tiers fire,
//!   code→code translations from the live DICT⋈DICT pair count. The
//!   naive baseline reports zero on all three.
//! * **I/O** — zone-pruned `(left, right)` segment pairs on lazily
//!   opened tables fetch nothing at all (`io_reads == 0`), and CONST
//!   right segments build from resident metadata alone.

use lcdc::core::{ColumnData, DType};
use lcdc::store::{
    open_table_lazy, save_table, shard_table, Catalog, CompressionPolicy, Predicate, QueryBuilder,
    QuerySpec, Table, TableSchema,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Key-column shapes, one per structural join tier plus the chooser.
const CONST: usize = 0;
const DICT: usize = 1;
const RLE: usize = 2;
const AUTO_SORTED: usize = 3;
const AUTO_SCRAMBLED: usize = 4;

/// Build a two-column table — `key` shaped and compressed per `shape`,
/// `val` uniform in `0..1000` under the chooser — and return it with
/// the raw vectors the oracle recomputes everything from.
fn join_table(
    seed: u64,
    n: usize,
    seg_rows: usize,
    domain: u64,
    shift: u64,
    shape: usize,
) -> (Table, Vec<u64>, Vec<u64>) {
    let domain = domain.max(1);
    let keys: Vec<u64> = match shape {
        // Constant within each segment, varying across segments.
        CONST => (0..n)
            .map(|i| shift + ((i / seg_rows) as u64).wrapping_mul(131).wrapping_add(seed) % domain)
            .collect(),
        // Scrambled over the domain: no runs, DICT's target shape.
        DICT | AUTO_SCRAMBLED => (0..n as u64)
            .map(|i| shift + i.wrapping_mul(seed | 1).wrapping_add(seed >> 3) % domain)
            .collect(),
        // Runny over the domain: RLE's target shape.
        RLE => lcdc::datagen::runs::runs_over_domain(n, 40, domain, seed)
            .into_iter()
            .map(|k| shift + k)
            .collect(),
        // Sorted and clustered: narrow zones, the chooser's pick.
        _ => (0..n as u64)
            .map(|i| shift + i * domain / n as u64)
            .collect(),
    };
    let vals = lcdc::datagen::uniform(n, 1000, seed ^ 0xC0FFEE);
    let key_policy = match shape {
        CONST => CompressionPolicy::Fixed("const".into()),
        DICT => CompressionPolicy::Fixed("dict[codes=ns]".into()),
        RLE => CompressionPolicy::Fixed("rle[values=ns,lengths=ns]".into()),
        _ => CompressionPolicy::Auto,
    };
    let table = Table::build(
        TableSchema::new(&[("key", DType::U64), ("val", DType::U64)]),
        &[ColumnData::U64(keys.clone()), ColumnData::U64(vals.clone())],
        &[key_policy, CompressionPolicy::Auto],
        seg_rows,
    )
    .expect("table builds");
    (table, keys, vals)
}

/// The independent nested-loop oracle: per key, selected left rows ×
/// right rows, ascending — exactly the shape `Rows::Joined` promises.
fn oracle_pairs(
    left_keys: &[u64],
    selected: impl Fn(usize) -> bool,
    right_keys: &[u64],
) -> Vec<(i128, i128)> {
    let mut lh: BTreeMap<i128, i128> = BTreeMap::new();
    for (i, &k) in left_keys.iter().enumerate() {
        if selected(i) {
            *lh.entry(k as i128).or_insert(0) += 1;
        }
    }
    let mut rh: BTreeMap<i128, i128> = BTreeMap::new();
    for &k in right_keys {
        *rh.entry(k as i128).or_insert(0) += 1;
    }
    lh.into_iter()
        .filter_map(|(k, lc)| rh.get(&k).map(|rc| (k, lc * rc)))
        .collect()
}

/// Per-segment `(min, max, rows)` of a raw vector chunked at
/// `seg_rows` — the zone maps the pair scan reads, recomputed here.
fn zones(keys: &[u64], seg_rows: usize) -> Vec<(u64, u64, usize)> {
    keys.chunks(seg_rows)
        .map(|c| {
            let min = c.iter().copied().min().expect("non-empty chunk");
            let max = c.iter().copied().max().expect("non-empty chunk");
            (min, max, c.len())
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Every scheme pairing × distribution × optional filter: the
    /// compressed join's rows equal both the decoded baseline's and
    /// the independent raw-vector oracle's, and the baseline reports
    /// zero on every join counter.
    #[test]
    fn join_rows_match_decoded_oracle(
        seed in any::<u64>(),
        seg_rows in 100usize..700,
        domain in 1u64..400,
        shift in 0u64..300,
        lshape in 0usize..5,
        rshape in 0usize..5,
        filter in (any::<bool>(), 0u64..1000, 0u64..600),
    ) {
        let (left, lkeys, lvals) = join_table(seed, 2500, seg_rows, domain, 0, lshape);
        let (right, rkeys, _) =
            join_table(seed ^ 0x9E37, 2000, seg_rows, domain, shift, rshape);
        let right = Arc::new(right);

        let mut builder = QueryBuilder::scan(&left);
        let (filtered, lo, width) = filter;
        if filtered {
            builder = builder.filter("val", Predicate::Range {
                lo: lo as i128,
                hi: (lo + width) as i128,
            });
        }
        let builder = builder.join("r", Arc::clone(&right), "key");

        let push = builder.execute().expect("compressed join runs");
        let naive = builder.execute_naive().expect("decoded join runs");
        prop_assert_eq!(&push.rows, &naive.rows, "compressed == decoded rows");
        let want = oracle_pairs(
            &lkeys,
            |i| !filtered || (lvals[i] >= lo && lvals[i] <= lo + width),
            &rkeys,
        );
        prop_assert_eq!(push.joined().expect("joined rows"), &want[..]);

        // The baseline decodes row-wise, prunes nothing, translates
        // nothing: its ledger is the all-zero reference.
        prop_assert_eq!(naive.stats.join_pairs_pruned, 0);
        prop_assert_eq!(naive.stats.join_rows_undecoded, 0);
        prop_assert_eq!(naive.stats.join_code_translations, 0);

        // Parallel execution reaches the same rows; the per-left-segment
        // pair-pruning count is worker-count-invariant.
        let parallel = builder.execute_parallel(4).expect("parallel join runs");
        prop_assert_eq!(&parallel.rows, &push.rows);
        prop_assert_eq!(
            parallel.stats.join_pairs_pruned,
            push.stats.join_pairs_pruned
        );
    }

    /// Race-free single-worker path, forced structural schemes, no
    /// filter: all three join counters predicted exactly from the raw
    /// vectors — pruning from recomputed zone maps, undecoded rows
    /// from which segments' tiers fire, translations from the live
    /// DICT⋈DICT pair count.
    #[test]
    fn join_ledgers_are_exact(
        seed in any::<u64>(),
        seg_rows in 100usize..700,
        domain in 1u64..400,
        shift in 0u64..500,
        lshape in 0usize..3,
        rshape in 0usize..3,
    ) {
        let (left, lkeys, _) = join_table(seed, 2500, seg_rows, domain, 0, lshape);
        let (right, rkeys, _) =
            join_table(seed ^ 0x9E37, 2000, seg_rows, domain, shift, rshape);
        let right = Arc::new(right);
        let builder = QueryBuilder::scan(&left).join("r", Arc::clone(&right), "key");
        let got = builder.execute().expect("compressed join runs");
        prop_assert_eq!(
            got.joined().expect("joined rows"),
            &oracle_pairs(&lkeys, |_| true, &rkeys)[..]
        );

        let lzones = zones(&lkeys, seg_rows);
        let rzones = zones(&rkeys, seg_rows);
        let overlap = |l: &(u64, u64, usize), r: &(u64, u64, usize)| l.0 <= r.1 && r.0 <= l.1;
        let mut pruned = 0usize;
        let mut translations = 0usize;
        let mut undecoded = 0usize;
        let mut right_used = vec![false; rzones.len()];
        for lz in &lzones {
            let live: Vec<usize> = (0..rzones.len())
                .filter(|&i| overlap(lz, &rzones[i]))
                .collect();
            pruned += rzones.len() - live.len();
            if live.is_empty() {
                continue; // no pair survives: the left build never runs
            }
            // Forced CONST/DICT/RLE left keys: every selected (= all)
            // row of the segment stays structural.
            undecoded += lz.2;
            if lshape == DICT && rshape == DICT {
                translations += live.len();
            }
            for i in live {
                right_used[i] = true;
            }
        }
        // Each used right segment histograms once per worker, whole —
        // CONST from its zone map, DICT per code, RLE per run.
        undecoded += right_used
            .iter()
            .zip(&rzones)
            .filter_map(|(&used, rz)| used.then_some(rz.2))
            .sum::<usize>();

        prop_assert_eq!(got.stats.join_pairs_pruned, pruned, "{:?}", got.stats);
        prop_assert_eq!(got.stats.join_rows_undecoded, undecoded, "{:?}", got.stats);
        prop_assert_eq!(
            got.stats.join_code_translations, translations,
            "{:?}", got.stats
        );
    }

    /// Sharded catalogs: left and right split into independent shard
    /// counts, joined shard-to-shard through the catalog on the shared
    /// pool — same rows as the unsharded decoded baseline, for worker
    /// counts 1 and 4.
    #[test]
    fn sharded_catalog_join_matches_unsharded(
        seed in any::<u64>(),
        seg_rows in 100usize..700,
        domain in 1u64..400,
        lshards in 1usize..4,
        rshards in 1usize..4,
        lshape in 0usize..5,
        rshape in 0usize..5,
    ) {
        let (left, lkeys, _) = join_table(seed, 2500, seg_rows, domain, 0, lshape);
        let (right, rkeys, _) =
            join_table(seed ^ 0x9E37, 2000, seg_rows, domain, domain / 2, rshape);
        let want = oracle_pairs(&lkeys, |_| true, &rkeys);

        let catalog = Catalog::with_cache_capacity(0);
        catalog
            .register_sharded("l", shard_table(&left, lshards).expect("left shards"))
            .expect("left registers");
        catalog
            .register_sharded("r", shard_table(&right, rshards).expect("right shards"))
            .expect("right registers");
        let spec = QuerySpec::new().join("r", "key");
        for threads in [1usize, 4] {
            let got = catalog
                .execute_parallel("l", &spec, threads)
                .expect("sharded join runs");
            prop_assert_eq!(
                got.joined().expect("joined rows"),
                &want[..],
                "x{}", threads
            );
        }
    }
}

/// Zone-pair pruning is an I/O property, proven on lazy tables: fully
/// disjoint key ranges prune every pair before any payload fetch, so
/// neither side reads a single frame from disk.
#[test]
fn pruned_pairs_fetch_nothing() {
    let root = std::env::temp_dir().join(format!("lcdc_join_prune_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let (left, _, _) = join_table(7, 2000, 256, 100, 0, AUTO_SORTED);
    let (right, _, _) = join_table(11, 1500, 256, 100, 50_000, AUTO_SORTED);
    save_table(&left, &root.join("l")).unwrap();
    save_table(&right, &root.join("r")).unwrap();

    let lazy_left = open_table_lazy(&root.join("l"), 8).unwrap();
    let lazy_right = Arc::new(open_table_lazy(&root.join("r"), 8).unwrap());
    let got = QueryBuilder::scan(&lazy_left)
        .join("r", Arc::clone(&lazy_right), "key")
        .execute()
        .unwrap();
    assert!(got.joined().unwrap().is_empty(), "disjoint keys");
    assert_eq!(
        got.stats.join_pairs_pruned,
        lazy_left.num_segments() * lazy_right.num_segments(),
        "every pair dismissed on resident metadata: {:?}",
        got.stats
    );
    assert_eq!(lazy_left.io_reads(), 0, "no left payload fetched");
    assert_eq!(lazy_right.io_reads(), 0, "no right payload fetched");
    std::fs::remove_dir_all(&root).ok();
}

/// Partial overlap on a lazy DICT right side: only the live right
/// segments are fetched, each exactly once per worker (the build cache
/// holds them across left segments).
#[test]
fn live_pairs_fetch_each_right_segment_once() {
    let root = std::env::temp_dir().join(format!("lcdc_join_live_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    // Left covers keys 0..100; the right's later segments sit far
    // above every left zone and must never be read.
    let (left, lkeys, _) = join_table(3, 2000, 256, 100, 0, DICT);
    let n = 1500usize;
    let seg_rows = 250usize;
    let rkeys: Vec<u64> = (0..n)
        .map(|i| {
            let seg = i / seg_rows;
            if seg < 3 {
                (i as u64).wrapping_mul(7) % 100
            } else {
                1_000_000 + (i as u64 % 50)
            }
        })
        .collect();
    let right = Table::build(
        TableSchema::new(&[("key", DType::U64), ("val", DType::U64)]),
        &[
            ColumnData::U64(rkeys.clone()),
            ColumnData::U64(lcdc::datagen::uniform(n, 1000, 5)),
        ],
        &[
            CompressionPolicy::Fixed("dict[codes=ns]".into()),
            CompressionPolicy::Auto,
        ],
        seg_rows,
    )
    .unwrap();
    save_table(&right, &root.join("r")).unwrap();
    let lazy_right = Arc::new(open_table_lazy(&root.join("r"), 8).unwrap());

    let got = QueryBuilder::scan(&left)
        .join("r", Arc::clone(&lazy_right), "key")
        .execute()
        .unwrap();
    assert_eq!(
        got.joined().unwrap(),
        &oracle_pairs(&lkeys, |_| true, &rkeys)[..]
    );
    assert_eq!(
        lazy_right.io_reads(),
        3,
        "only the overlapping right segments were fetched, once each: {:?}",
        got.stats
    );
    assert!(got.stats.join_code_translations > 0, "DICT⋈DICT fired");
    std::fs::remove_dir_all(&root).ok();
}

/// CONST right segments build their histogram from resident metadata:
/// live pairs, correct rows, and still zero right-side I/O.
#[test]
fn const_right_builds_from_metadata_alone() {
    let root = std::env::temp_dir().join(format!("lcdc_join_const_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let (left, lkeys, _) = join_table(9, 2000, 256, 60, 0, DICT);
    let (right, rkeys, _) = join_table(13, 1500, 250, 60, 0, CONST);
    save_table(&right, &root.join("r")).unwrap();
    let lazy_right = Arc::new(open_table_lazy(&root.join("r"), 8).unwrap());

    let got = QueryBuilder::scan(&left)
        .join("r", Arc::clone(&lazy_right), "key")
        .execute()
        .unwrap();
    let want = oracle_pairs(&lkeys, |_| true, &rkeys);
    assert_eq!(got.joined().unwrap(), &want[..]);
    assert!(!want.is_empty(), "the overlap is real, not vacuous");
    assert_eq!(
        lazy_right.io_reads(),
        0,
        "CONST build sides never fetch a payload: {:?}",
        got.stats
    );
    std::fs::remove_dir_all(&root).ok();
}

/// The result cache keys on the *pair* of table versions: ingesting
/// into the right table must evict, even though the left version (part
/// of the classic cache key) never moved. Exercised end to end through
/// the catalog here; the snapshot-isolation suite races it.
#[test]
fn right_table_ingest_invalidates_cached_join() {
    let (left, lkeys, _) = join_table(21, 1200, 200, 50, 0, DICT);
    let (right, mut rkeys, _) = join_table(23, 800, 200, 50, 0, RLE);
    let catalog = Catalog::new();
    catalog.register("l", left);
    catalog.register("r", right);
    let spec = QuerySpec::new().join("r", "key");

    let first = catalog.execute("l", &spec).unwrap();
    assert_eq!(
        first.joined().unwrap(),
        &oracle_pairs(&lkeys, |_| true, &rkeys)[..]
    );
    let cached = catalog.execute("l", &spec).unwrap();
    assert_eq!(cached.rows, first.rows);
    assert!(cached.stats.result_cache_hits > 0, "second run is a hit");

    // Grow the right side: every key 0..50 gains rows.
    let batch_keys: Vec<u64> = (0..100u64).map(|i| i % 50).collect();
    let batch_vals = vec![1u64; 100];
    catalog
        .ingest(
            "r",
            &[
                ColumnData::U64(batch_keys.clone()),
                ColumnData::U64(batch_vals),
            ],
        )
        .unwrap();
    rkeys.extend(batch_keys);

    let after = catalog.execute("l", &spec).unwrap();
    assert_eq!(
        after.stats.result_cache_hits, 0,
        "right-side ingest evicted the cached pairs"
    );
    assert_eq!(
        after.joined().unwrap(),
        &oracle_pairs(&lkeys, |_| true, &rkeys)[..],
        "the new rows are visible"
    );
}
