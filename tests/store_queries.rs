//! Store-level integration: the pushdown executor must agree with the
//! naive executor on every query, table, policy and predicate — and the
//! compression-aware paths must actually engage.

use lcdc::core::{ColumnData, DType};
use lcdc::store::{CompressionPolicy, Predicate, Query, Table, TableSchema};
use proptest::prelude::*;

fn lineitem_table(policy: CompressionPolicy, seg_rows: usize) -> Table {
    let t = lcdc::datagen::tpch_like::lineitem_like(200, 80, 99);
    let schema = TableSchema::new(&[
        ("shipdate", DType::U64),
        ("qty", DType::U64),
        ("price", DType::U64),
    ]);
    Table::build(
        schema,
        &[
            ColumnData::U64(t.shipdate),
            ColumnData::U64(t.quantity),
            ColumnData::U64(t.extendedprice),
        ],
        &[policy.clone(), policy.clone(), policy],
        seg_rows,
    )
    .expect("table builds")
}

#[test]
fn executors_agree_across_policies() {
    let policies = [
        CompressionPolicy::None,
        CompressionPolicy::Auto,
        CompressionPolicy::Fixed("ns".into()),
        CompressionPolicy::Fixed("for(l=128)[offsets=ns]".into()),
    ];
    for policy in policies {
        let table = lineitem_table(policy.clone(), 2048);
        for (filter, agg) in [("shipdate", "price"), ("qty", "price"), ("shipdate", "qty")] {
            for pred in [
                Predicate::All,
                Predicate::Range {
                    lo: 19_920_110,
                    hi: 19_920_150,
                },
                Predicate::Range { lo: 0, hi: 10 },
                Predicate::Eq(19_920_120),
                Predicate::Eq(25),
            ] {
                let q = Query::new(filter, pred.clone(), agg);
                let naive = q.run_naive(&table).expect("naive runs");
                let push = q.run_pushdown(&table).expect("pushdown runs");
                assert_eq!(naive.agg, push.agg, "{policy:?} {filter}/{agg} {pred:?}");
            }
        }
    }
}

#[test]
fn materialization_is_lossless_for_every_policy() {
    for policy in [
        CompressionPolicy::None,
        CompressionPolicy::Auto,
        CompressionPolicy::Fixed("varwidth".into()),
    ] {
        let t = lcdc::datagen::tpch_like::lineitem_like(100, 40, 5);
        let schema = TableSchema::new(&[("shipdate", DType::U64)]);
        let col = ColumnData::U64(t.shipdate);
        let table = Table::build(schema, std::slice::from_ref(&col), &[policy], 1000)
            .expect("table builds");
        assert_eq!(table.materialize("shipdate").expect("materializes"), col);
    }
}

#[test]
fn auto_policy_compresses_the_table() {
    let table = lineitem_table(CompressionPolicy::Auto, 4096);
    assert!(
        table.compressed_bytes() * 3 < table.uncompressed_bytes(),
        "{} vs {}",
        table.compressed_bytes(),
        table.uncompressed_bytes()
    );
}

#[test]
fn pushdown_tiers_engage_on_runny_filter_column() {
    // Date column = long runs -> auto picks an RLE composite; a narrow
    // range query must answer mostly from zone maps + run granularity.
    let table = lineitem_table(CompressionPolicy::Auto, 2048);
    let q = Query::new(
        "shipdate",
        Predicate::Range {
            lo: 19_920_120,
            hi: 19_920_125,
        },
        "price",
    );
    let out = q.run_pushdown(&table).expect("runs");
    assert!(out.stats.pushdown.zonemap_hits > 0, "{:?}", out.stats);
    assert_eq!(out.stats.pushdown.row_granularity, 0, "{:?}", out.stats);
}

#[test]
fn seg_rows_do_not_change_answers() {
    let q = Query::new(
        "shipdate",
        Predicate::Range {
            lo: 19_920_115,
            hi: 19_920_140,
        },
        "price",
    );
    let reference = q
        .run_naive(&lineitem_table(CompressionPolicy::None, 512))
        .expect("runs")
        .agg;
    for seg_rows in [128usize, 1000, 4096, 1 << 20] {
        let table = lineitem_table(CompressionPolicy::Auto, seg_rows);
        assert_eq!(
            q.run_pushdown(&table).expect("runs").agg,
            reference,
            "seg_rows={seg_rows}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_range_queries_agree(lo in 19_920_000i128..19_921_000, width in 0i128..400) {
        let table = lineitem_table(CompressionPolicy::Auto, 2048);
        let q = Query::new("shipdate", Predicate::Range { lo, hi: lo + width }, "price");
        let naive = q.run_naive(&table).unwrap();
        let push = q.run_pushdown(&table).unwrap();
        prop_assert_eq!(naive.agg, push.agg);
    }

    #[test]
    fn random_qty_queries_agree(lo in 0i128..60, width in 0i128..60) {
        let table = lineitem_table(CompressionPolicy::Auto, 2048);
        let q = Query::new("qty", Predicate::Range { lo, hi: lo + width }, "price");
        let naive = q.run_naive(&table).unwrap();
        let push = q.run_pushdown(&table).unwrap();
        prop_assert_eq!(naive.agg, push.agg);
    }
}
