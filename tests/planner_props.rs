//! The planner's contract, property-tested: for every operator kind,
//! over randomized tables (per-segment scheme choice via
//! `CompressionPolicy::Auto`) and random predicate conjunctions, the
//! pushdown execution of a `QueryBuilder` plan must equal the naive
//! full-decompress execution — and never materialise more rows.

use lcdc::core::{ColumnData, DType};
use lcdc::store::{
    Agg, CompressionPolicy, Predicate, Query, QueryBuilder, Rows, Table, TableSchema,
};
use proptest::prelude::*;

/// Three columns with different statistical structure, so the Auto
/// chooser exercises different schemes per segment: runs (RLE family),
/// local plateaus (FOR/STEP family), small-domain noise (DICT/NS).
fn build_table(seed: u64, n: usize, seg_rows: usize) -> Table {
    let schema = TableSchema::new(&[
        ("runs", DType::U64),
        ("steps", DType::U64),
        ("noise", DType::U64),
    ]);
    let runs = ColumnData::U64(lcdc::datagen::runs::runs_over_domain(n, 60, 40, seed));
    let steps = ColumnData::U64(lcdc::datagen::step_column(n, 64, 2000, 16, seed ^ 0xA5));
    let noise = ColumnData::U64(lcdc::datagen::uniform(n, 500, seed ^ 0x5A));
    Table::build(
        schema,
        &[runs, steps, noise],
        &[
            CompressionPolicy::Auto,
            CompressionPolicy::Auto,
            CompressionPolicy::Auto,
        ],
        seg_rows,
    )
    .expect("table builds")
}

const COLUMNS: [&str; 3] = ["runs", "steps", "noise"];

/// Apply up to two random conjuncts over random columns.
fn with_filters<'t>(
    mut builder: QueryBuilder<'t>,
    conjuncts: &[(usize, i128, i128)],
) -> QueryBuilder<'t> {
    for &(col, lo, width) in conjuncts {
        builder = builder.filter(COLUMNS[col % 3], Predicate::Range { lo, hi: lo + width });
    }
    builder
}

fn assert_pushdown_equals_naive(builder: &QueryBuilder<'_>, context: &str) {
    let push = builder.execute().expect("pushdown runs");
    let naive = builder.execute_naive().expect("naive runs");
    assert_eq!(push.rows, naive.rows, "{context}");
    assert!(
        push.stats.rows_materialized <= naive.stats.rows_materialized,
        "{context}: pushdown materialised {} rows, naive {}",
        push.stats.rows_materialized,
        naive.stats.rows_materialized
    );
    // Parallel execution is the same plan over the same segments.
    let parallel = builder.execute_parallel(4).expect("parallel runs");
    assert_eq!(parallel.rows, push.rows, "{context} (parallel)");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn every_operator_kind_agrees(
        seed in any::<u64>(),
        seg_rows in 128usize..1024,
        operator in 0usize..4,
        conjuncts in prop::collection::vec((0usize..3, 0i128..2100, 0i128..700), 0..3),
    ) {
        let table = build_table(seed, 3000, seg_rows);
        let base = with_filters(QueryBuilder::scan(&table), &conjuncts);
        let builder = match operator {
            0 => base.aggregate(&[
                Agg::Sum("noise"),
                Agg::Min("steps"),
                Agg::Max("steps"),
                Agg::Count,
            ]),
            1 => base.group_by("runs").aggregate(&[Agg::Sum("noise"), Agg::Count]),
            2 => base.top_k("steps", 17),
            3 => base.distinct("runs"),
            _ => unreachable!(),
        };
        assert_pushdown_equals_naive(&builder, &format!("op {operator} {conjuncts:?}"));
    }

    #[test]
    fn random_range_filtered_aggregates_agree(
        seed in any::<u64>(),
        lo in 0i128..60,
        width in 0i128..40,
    ) {
        let table = build_table(seed, 2000, 256);
        let builder = QueryBuilder::scan(&table)
            .filter("runs", Predicate::Range { lo, hi: lo + width })
            .aggregate(&[Agg::Sum("noise"), Agg::Count]);
        assert_pushdown_equals_naive(&builder, &format!("runs in {lo}..={}", lo + width));
    }
}

/// The acceptance-criteria queries, end to end through the builder
/// alone: a filter -> group-by -> aggregate and a filter -> top-k, with
/// pushdown matching naive while materialising strictly fewer rows.
#[test]
fn e2e_filter_group_by_aggregate_and_filter_top_k() {
    let t = lcdc::datagen::tpch_like::lineitem_like(300, 120, 7);
    let schema = TableSchema::new(&[
        ("shipdate", DType::U64),
        ("qty", DType::U64),
        ("price", DType::U64),
    ]);
    let table = Table::build(
        schema,
        &[
            ColumnData::U64(t.shipdate),
            ColumnData::U64(t.quantity),
            ColumnData::U64(t.extendedprice),
        ],
        &[
            CompressionPolicy::Auto,
            CompressionPolicy::Auto,
            CompressionPolicy::Auto,
        ],
        2048,
    )
    .expect("table builds");

    // Revenue per day over one ship-date week.
    let per_day = QueryBuilder::scan(&table)
        .filter(
            "shipdate",
            Predicate::Range {
                lo: 19_920_130,
                hi: 19_920_136,
            },
        )
        .group_by("shipdate")
        .aggregate(&[Agg::Sum("price"), Agg::Count]);
    let push = per_day.execute().expect("pushdown runs");
    let naive = per_day.execute_naive().expect("naive runs");
    assert_eq!(push.rows, naive.rows);
    assert!(matches!(push.rows, Rows::Groups(ref g) if g.len() == 7));
    assert!(
        push.stats.rows_materialized < naive.stats.rows_materialized,
        "pushdown {} vs naive {}",
        push.stats.rows_materialized,
        naive.stats.rows_materialized
    );

    // Top 10 order prices within a quantity band.
    let top = QueryBuilder::scan(&table)
        .filter("qty", Predicate::Range { lo: 10, hi: 20 })
        .top_k("price", 10);
    let push = top.execute().expect("pushdown runs");
    let naive = top.execute_naive().expect("naive runs");
    assert_eq!(push.rows, naive.rows);
    assert_eq!(push.top_k().unwrap().len(), 10);
    assert!(
        push.stats.rows_materialized < naive.stats.rows_materialized,
        "pushdown {} vs naive {}",
        push.stats.rows_materialized,
        naive.stats.rows_materialized
    );

    // The pre-planner API still answers the same questions through the
    // adapter layer.
    let q = Query::new(
        "shipdate",
        Predicate::Range {
            lo: 19_920_130,
            hi: 19_920_136,
        },
        "price",
    );
    let old_naive = q.run_naive(&table).expect("naive runs");
    let old_push = q.run_pushdown(&table).expect("pushdown runs");
    assert_eq!(old_naive.agg, old_push.agg);
    let via_builder = per_day.execute().expect("runs");
    let total: i128 = via_builder
        .groups()
        .unwrap()
        .iter()
        .map(|(_, values)| values[0].unwrap())
        .sum();
    assert_eq!(total, old_push.agg.sum);
}

/// The builder's explain output names every stage of the acceptance
/// queries — the logical plan is inspectable before execution.
#[test]
fn e2e_explain_describes_the_plan() {
    let table = build_table(7, 2000, 512);
    let text = QueryBuilder::scan(&table)
        .filter("runs", Predicate::Range { lo: 0, hi: 10 })
        .filter("noise", Predicate::Range { lo: 0, hi: 100 })
        .group_by("runs")
        .aggregate(&[Agg::Sum("noise")])
        .explain()
        .expect("explains");
    for needle in [
        "scan",
        "filter runs",
        "filter noise",
        "group-by runs",
        "Sum(noise)",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }
}
