//! The storage redesign's contracts, property-tested end to end:
//!
//! * **Shard transparency** — for every operator kind and random
//!   filter shapes (ranges, IN lists, disjunctions), executing a
//!   `QuerySpec` over a randomly sharded registration of a table
//!   equals executing it over the single table, across thread counts.
//! * **Cache soundness** — a result cache hit is only ever served for
//!   the exact plan fingerprint at the exact table version: any
//!   mutation (add_shard / re-register) bumps the version and the next
//!   execution runs for real, reflecting the new data.
//! * **Lazy-plan equivalence** — a table reopened through lazy
//!   `FileSource`s plans and answers identically to its resident
//!   original, reading only the frames the pushdown tiers touch.

use lcdc::core::{ColumnData, DType};
use lcdc::store::{
    load_table, open_table_lazy, save_table, shard_table, Agg, Catalog, CompressionPolicy,
    Predicate, QuerySpec, Table, TableSchema,
};
use proptest::prelude::*;

/// Three columns with different statistical structure, so the Auto
/// chooser exercises different schemes per segment.
fn build_table(seed: u64, n: usize, seg_rows: usize) -> Table {
    let schema = TableSchema::new(&[
        ("runs", DType::U64),
        ("steps", DType::U64),
        ("noise", DType::U64),
    ]);
    let runs = ColumnData::U64(lcdc::datagen::runs::runs_over_domain(n, 60, 40, seed));
    let steps = ColumnData::U64(lcdc::datagen::step_column(n, 64, 2000, 16, seed ^ 0xA5));
    let noise = ColumnData::U64(lcdc::datagen::uniform(n, 500, seed ^ 0x5A));
    Table::build(
        schema,
        &[runs, steps, noise],
        &[
            CompressionPolicy::Auto,
            CompressionPolicy::Auto,
            CompressionPolicy::Auto,
        ],
        seg_rows,
    )
    .expect("table builds")
}

const COLUMNS: [&str; 3] = ["runs", "steps", "noise"];

/// A random filter leaf: range, equality, or a small IN list.
fn leaf(col: usize, kind: usize, lo: i128, width: i128) -> (String, Predicate) {
    let column = COLUMNS[col % 3].to_string();
    let predicate = match kind % 3 {
        0 => Predicate::Range { lo, hi: lo + width },
        1 => Predicate::Eq(lo),
        _ => Predicate::in_list(&[lo, lo + width / 2, lo + width, 7]),
    };
    (column, predicate)
}

/// Attach random conjuncts — every third one a two-leaf disjunction.
fn with_filters(mut spec: QuerySpec, conjuncts: &[(usize, usize, i128, i128)]) -> QuerySpec {
    for (i, &(col, kind, lo, width)) in conjuncts.iter().enumerate() {
        let (c1, p1) = leaf(col, kind, lo, width);
        if i % 3 == 2 {
            let (c2, p2) = leaf(col + 1, kind + 1, lo / 2, width * 2);
            spec = spec.filter_any(&[(c1.as_str(), p1), (c2.as_str(), p2)]);
        } else {
            spec = spec.filter(&c1, p1);
        }
    }
    spec
}

fn sink(spec: QuerySpec, operator: usize) -> QuerySpec {
    match operator % 4 {
        0 => spec.aggregate(&[
            Agg::Sum("noise"),
            Agg::Min("steps"),
            Agg::Max("steps"),
            Agg::Count,
        ]),
        1 => spec
            .group_by("runs")
            .aggregate(&[Agg::Sum("noise"), Agg::Count]),
        2 => spec.top_k("steps", 17),
        _ => spec.distinct("runs"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn sharded_execution_equals_single_table(
        seed in any::<u64>(),
        seg_rows in 128usize..1024,
        shards in 1usize..7,
        operator in 0usize..4,
        conjuncts in prop::collection::vec(
            (0usize..3, 0usize..3, 0i128..2100, 0i128..700), 0..4),
    ) {
        let table = build_table(seed, 3000, seg_rows);
        let spec = sink(with_filters(QuerySpec::new(), &conjuncts), operator);
        let single = spec.bind(&table).execute().expect("single runs");

        let catalog = Catalog::new();
        catalog
            .register_sharded("t", shard_table(&table, shards).expect("shards"))
            .expect("registers");
        for threads in [1usize, 4] {
            let fanned = catalog
                .execute_parallel("t", &spec, threads)
                .expect("fan-in runs");
            // First execution per thread-count loop may hit the cache
            // from the previous loop iteration — rows must match either
            // way; that is the point.
            prop_assert_eq!(
                &fanned.rows, &single.rows,
                "op {} x{} shards x{} threads", operator, shards, threads
            );
        }
        // And the pushdown path never does worse than naive on rows.
        let naive = spec.bind(&table).execute_naive().expect("naive runs");
        prop_assert_eq!(&single.rows, &naive.rows);
        prop_assert!(single.stats.rows_materialized <= naive.stats.rows_materialized);
    }

    #[test]
    fn cache_hits_never_cross_a_version_bump(
        seed in any::<u64>(),
        operator in 0usize..4,
        extra_rows in 500usize..1500,
    ) {
        let catalog = Catalog::new();
        let spec = sink(
            QuerySpec::new().filter("steps", Predicate::Range { lo: 0, hi: 1500 }),
            operator,
        );
        let v1 = catalog.register("t", build_table(seed, 2000, 256));
        let first = catalog.execute("t", &spec).expect("runs");
        prop_assert_eq!(first.stats.result_cache_hits, 0);

        // Identical plan, same version: served from cache, same rows.
        let repeat = catalog.execute("t", &spec).expect("repeats");
        prop_assert_eq!(repeat.stats.result_cache_hits, 1);
        prop_assert_eq!(&repeat.rows, &first.rows);

        // Mutation bumps the version: the stale result must not be
        // served, and the fresh run sees the new shard's rows.
        let v2 = catalog
            .add_shard("t", build_table(seed ^ 1, extra_rows, 256))
            .expect("adds shard");
        prop_assert!(v2 > v1);
        let after = catalog.execute("t", &spec).expect("runs again");
        prop_assert_eq!(after.stats.result_cache_hits, 0);
        // The new shard is non-empty and unfiltered sinks see it; for
        // every operator the merged answer covers both shards, so a
        // second repeat caches *that*.
        let again = catalog.execute("t", &spec).expect("repeats again");
        prop_assert_eq!(again.stats.result_cache_hits, 1);
        prop_assert_eq!(&again.rows, &after.rows);
    }

    #[test]
    fn lazy_tables_plan_and_answer_like_resident_ones(
        seed in any::<u64>(),
        operator in 0usize..4,
        lo in 0i128..1200,
        width in 0i128..500,
    ) {
        let table = build_table(seed, 2500, 300);
        let dir = std::env::temp_dir().join(format!(
            "lcdc_props_lazy_{}_{seed:x}_{operator}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        save_table(&table, &dir).expect("saves");
        let resident = load_table(&dir).expect("loads");
        let lazy = open_table_lazy(&dir, 8).expect("opens");

        let spec = sink(
            QuerySpec::new().filter("steps", Predicate::Range { lo, hi: lo + width }),
            operator,
        );
        let a = spec.bind(&resident).execute().expect("resident runs");
        let b = spec.bind(&lazy).execute().expect("lazy runs");
        // Identical plans: same answer *and* same planner counters —
        // pruning decisions come from identical metadata.
        prop_assert_eq!(&a.rows, &b.rows);
        prop_assert_eq!(a.stats, b.stats);
        // Laziness: disk reads never exceed the loads the plan made.
        prop_assert!(lazy.io_reads() <= b.stats.segments_loaded);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// The ISSUE's acceptance scenario, end to end: a sharded, file-backed
/// table answers an aggregate through the catalog with lazy loads
/// (frames read < frames stored, thanks to zone-map pruning), and the
/// identical repeated query is served from the result cache.
#[test]
fn acceptance_sharded_lazy_catalog_with_result_cache() {
    let root = std::env::temp_dir().join(format!("lcdc_acceptance_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // One logical orders table, split into 3 shard dirs on disk.
    let table = build_table(42, 9000, 512);
    let shards = shard_table(&table, 3).expect("shards");
    let mut lazy_shards = Vec::new();
    let mut total_frames = 0usize;
    for (i, shard) in shards.iter().enumerate() {
        let dir = root.join(format!("orders.shard{i}"));
        save_table(shard, &dir).expect("saves");
        let lazy = open_table_lazy(&dir, 8).expect("opens");
        total_frames += lazy.num_segments() * lazy.schema().width();
        lazy_shards.push(lazy);
    }

    let catalog = Catalog::new();
    catalog
        .register_sharded("orders", lazy_shards)
        .expect("registers");
    let (handle, _) = catalog.get("orders").expect("registered");
    assert_eq!(handle.shard_count(), 3);
    assert_eq!(handle.io_reads(), 0, "registration reads no frames");

    // A selective aggregate: zone maps prune most segments, so far
    // fewer frames than stored are ever read from disk.
    let spec = QuerySpec::new()
        .filter("steps", Predicate::Range { lo: 0, hi: 260 })
        .aggregate(&[Agg::Sum("noise"), Agg::Count]);
    let first = catalog
        .execute_parallel("orders", &spec, 3)
        .expect("aggregates");
    assert_eq!(first.stats.result_cache_hits, 0);
    let frames_read = handle.io_reads();
    assert!(frames_read > 0, "something was read");
    assert!(
        frames_read < total_frames,
        "lazy + zone maps must not read everything: {frames_read} of {total_frames}"
    );
    // The answer is right: compare against the resident original.
    let want = spec.bind(&table).execute().expect("resident");
    assert_eq!(first.rows, want.rows);

    // The identical query again: served from the result cache, no new
    // I/O, visible in QueryStats.
    let second = catalog
        .execute_parallel("orders", &spec, 3)
        .expect("repeats");
    assert_eq!(second.stats.result_cache_hits, 1, "{:?}", second.stats);
    assert_eq!(second.stats.segments, 0, "nothing executed");
    assert_eq!(second.rows, first.rows);
    assert_eq!(handle.io_reads(), frames_read, "a cache hit reads nothing");

    std::fs::remove_dir_all(&root).ok();
}
