//! The aggregation-pushdown tier's contract, property-tested:
//!
//! * **Code-space group-by** — for DICT / RLE / auto-chosen key
//!   columns, under random filters, the structural group-by (dense
//!   per-code accumulators, run folding) must produce exactly the
//!   decoded (naive) group-by's answer, while never decompressing the
//!   key column on the structural paths
//!   (`QueryStats::rows_undecoded`).
//! * **Shared-threshold top-k** — with the cross-worker bound on or
//!   off, under every worker count and over sharded catalogs, parallel
//!   top-k must equal the sequential reference, values and
//!   multiplicities included.

use lcdc::core::{ColumnData, DType};
use lcdc::store::{
    shard_table, Agg, Catalog, CompressionPolicy, ExecOptions, Predicate, QueryBuilder, QuerySpec,
    Table, TableSchema,
};
use proptest::prelude::*;

/// A two-column table whose key column is built under an explicit
/// policy: 0 = DICT codes, 1 = RLE runs, 2 = chooser's pick. Key values
/// are scrambled over `domain` (no runs) for DICT/auto, runny for RLE —
/// each the shape its tier targets.
fn keyed_table(seed: u64, n: usize, seg_rows: usize, domain: u64, key_policy: usize) -> Table {
    let domain = domain.max(1);
    let keys: Vec<u64> = match key_policy {
        1 => lcdc::datagen::runs::runs_over_domain(n, 40, domain, seed),
        _ => (0..n as u64)
            .map(|i| i.wrapping_mul(seed | 1).wrapping_add(seed >> 3) % domain)
            .collect(),
    };
    let vals = lcdc::datagen::uniform(n, 1000, seed ^ 0xC0FFEE);
    let key_policy = match key_policy {
        0 => CompressionPolicy::Fixed("dict[codes=ns]".into()),
        1 => CompressionPolicy::Fixed("rle[values=ns,lengths=ns]".into()),
        _ => CompressionPolicy::Auto,
    };
    Table::build(
        TableSchema::new(&[("key", DType::U64), ("val", DType::U64)]),
        &[ColumnData::U64(keys), ColumnData::U64(vals)],
        &[key_policy, CompressionPolicy::Auto],
        seg_rows,
    )
    .expect("table builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// DICT/RLE code-space group-by ≡ decoded group-by, with and
    /// without filters, for every key policy.
    #[test]
    fn code_space_group_by_equals_decoded(
        seed in any::<u64>(),
        seg_rows in 128usize..900,
        domain in 1u64..300,
        key_policy in 0usize..3,
        filter in (any::<bool>(), 0u64..1000, 0u64..600),
    ) {
        let table = keyed_table(seed, 3000, seg_rows, domain, key_policy);
        let mut builder = QueryBuilder::scan(&table);
        let (filtered, lo, width) = filter;
        if filtered {
            builder = builder.filter("val", Predicate::Range {
                lo: lo as i128,
                hi: (lo + width) as i128,
            });
        }
        let builder = builder
            .group_by("key")
            .aggregate(&[Agg::Sum("val"), Agg::Min("val"), Agg::Count]);
        let push = builder.execute().expect("code-space runs");
        let naive = builder.execute_naive().expect("decoded runs");
        prop_assert_eq!(&push.rows, &naive.rows);
        prop_assert_eq!(naive.stats.rows_undecoded, 0, "the baseline decodes keys");
        // Forced structural key schemes never decode a selected key
        // row: the DICT tier composes with filter masks, the RLE tier
        // fires under full selections (a filtered RLE segment may fall
        // back, so its exact ledger is asserted unfiltered only).
        let selected: usize = push.groups().expect("group rows")
            .iter()
            .map(|(_, values)| values[2].expect("count") as usize)
            .sum();
        if key_policy == 0 || (key_policy == 1 && !filtered) {
            prop_assert_eq!(
                push.stats.rows_undecoded, selected,
                "every selected key row stayed in code/run space: {:?}", push.stats
            );
            prop_assert!(push.stats.groups_folded > 0 || selected == 0);
        }
        // Parallel execution folds the same tiers per segment.
        let parallel = builder.execute_parallel(4).expect("parallel runs");
        prop_assert_eq!(&parallel.rows, &push.rows);
        prop_assert_eq!(parallel.stats.rows_undecoded, push.stats.rows_undecoded);
    }

    /// Shared-threshold parallel top-k ≡ sequential top-k for worker
    /// counts 1/2/4/64, bound on and off, including sharded catalogs.
    #[test]
    fn shared_bound_top_k_equals_sequential(
        seed in any::<u64>(),
        seg_rows in 128usize..900,
        k in 1usize..200,
        shards in 1usize..5,
        filter in (any::<bool>(), 0u64..1000, 0u64..600),
    ) {
        let table = keyed_table(seed, 3000, seg_rows, 300, 2);
        let mut spec = QuerySpec::new();
        let (filtered, lo, width) = filter;
        if filtered {
            spec = spec.filter("val", Predicate::Range {
                lo: lo as i128,
                hi: (lo + width) as i128,
            });
        }
        let spec = spec.top_k("val", k);
        let want = spec.bind(&table).execute().expect("sequential reference");

        for threads in [1usize, 2, 4, 64] {
            for bound in [true, false] {
                let opts = ExecOptions::threads(threads).with_topk_shared_bound(bound);
                let got = spec.bind(&table).execute_opts(&opts).expect("parallel runs");
                prop_assert_eq!(
                    &got.rows, &want.rows,
                    "threads {} bound {}", threads, bound
                );
                if !bound {
                    prop_assert_eq!(got.stats.topk_segments_skipped, 0);
                }
            }
        }

        // The same spec over a sharded catalog: the bound spans shards.
        let catalog = Catalog::with_cache_capacity(0);
        catalog
            .register_sharded("t", shard_table(&table, shards).expect("shards"))
            .expect("registers");
        for threads in [1usize, 4, 64] {
            let got = catalog
                .execute_parallel("t", &spec, threads)
                .expect("sharded runs");
            prop_assert_eq!(&got.rows, &want.rows, "sharded x{}", threads);
        }
    }
}

/// Deterministic acceptance scenario for the shared bound: one hot
/// segment holds the whole top-k, the other segments' maxima tie each
/// other — only the published bound (not a moderate segment's own heap)
/// can prune them. Best-max-first order guarantees the hot segment is
/// drawn first, so the skip count is exact under any worker count the
/// hardware allows.
#[test]
fn shared_bound_skips_moderate_segments() {
    const SEG_ROWS: usize = 512;
    const SEGMENTS: usize = 12;
    let v: Vec<u64> = (0..SEG_ROWS * SEGMENTS)
        .map(|i| {
            let noise = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 54;
            if i / SEG_ROWS == 0 {
                1_000_000 + noise
            } else {
                noise
            }
        })
        .collect();
    let table = Table::build(
        TableSchema::new(&[("v", DType::U64)]),
        &[ColumnData::U64(v)],
        &[CompressionPolicy::Auto],
        SEG_ROWS,
    )
    .unwrap();
    let spec = QuerySpec::new().top_k("v", 32);
    let want = spec.bind(&table).execute().unwrap();
    assert_eq!(want.stats.topk_segments_skipped, 0, "no bound sequentially");

    // One worker drains the queue in best-max order: the hot segment
    // fills the heap, publishes, and every moderate segment is skipped
    // against the published bound — an exact, race-free count.
    let shared = spec
        .bind(&table)
        .execute_opts(&ExecOptions::threads(1))
        .unwrap();
    assert_eq!(shared.rows, want.rows);
    assert_eq!(
        shared.stats.topk_segments_skipped,
        SEGMENTS - 1,
        "every moderate segment skipped on the published bound: {:?}",
        shared.stats
    );

    // More workers can only *race* the publication, never over-skip —
    // and the answer never moves.
    let racy = spec
        .bind(&table)
        .execute_opts(&ExecOptions::threads(4))
        .unwrap();
    assert_eq!(racy.rows, want.rows);
    assert!(racy.stats.topk_segments_skipped < SEGMENTS);

    let unshared = spec
        .bind(&table)
        .execute_opts(&ExecOptions::threads(4).with_topk_shared_bound(false))
        .unwrap();
    assert_eq!(unshared.rows, want.rows);
    assert_eq!(unshared.stats.topk_segments_skipped, 0);
}

/// The adaptive prefetcher never changes answers or total I/O — it only
/// moves the same reads earlier. Run over a lazy table whose every
/// frame survives zone pruning, so read counts compare exactly.
#[test]
fn adaptive_prefetch_preserves_answers_and_reads() {
    let root = std::env::temp_dir().join(format!("lcdc_auto_prefetch_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let table = keyed_table(23, 6000, 250, 300, 2);
    lcdc::store::save_table(&table, &root).unwrap();

    let spec = QuerySpec::new()
        .filter("val", Predicate::Range { lo: 0, hi: 499 })
        .aggregate(&[Agg::Sum("val"), Agg::Count]);
    let plain = lcdc::store::open_table_lazy(&root, 6).unwrap();
    let want = spec.bind(&plain).execute().unwrap();
    let frames = plain.io_reads();
    assert!(frames > 0);

    // `--prefetch auto` equivalent: cap from the capacity clamp, depth
    // re-tuned from the hit/wasted ledger while running.
    let auto = lcdc::store::open_table_lazy(&root, 6).unwrap();
    let got = spec
        .bind(&auto)
        .execute_opts(&ExecOptions::threads(1).with_prefetch_auto())
        .unwrap();
    assert_eq!(got.rows, want.rows);
    assert_eq!(
        auto.io_reads(),
        frames,
        "tuning moves reads earlier, never adds any: {:?}",
        got.stats
    );

    // Auto under an explicit cap behaves the same.
    let capped = lcdc::store::open_table_lazy(&root, 6).unwrap();
    let got = spec
        .bind(&capped)
        .execute_opts(
            &ExecOptions::threads(2)
                .with_prefetch(3)
                .with_prefetch_auto(),
        )
        .unwrap();
    assert_eq!(got.rows, want.rows);
    assert_eq!(capped.io_reads(), frames);
    std::fs::remove_dir_all(&root).ok();
}
