//! Cost-based CNF clause reordering is *only* a cost decision: for any
//! permutation of a query's filter clauses — and for the planner's
//! cost-based order, and for the pinned caller order — the answer is
//! identical, across random tables, range/equality/IN leaves, and
//! disjunctive (`filter_any`) clauses. The chosen order itself is a
//! plan-time artifact, visible in `PhysicalPlan::display()`.

use lcdc::core::{ColumnData, DType};
use lcdc::store::{Agg, CompressionPolicy, Predicate, QueryBuilder, QuerySpec, Table, TableSchema};
use proptest::prelude::*;

/// Three columns with different statistical structure so the Auto
/// chooser exercises different schemes (and therefore different
/// estimated leaf costs) per column.
fn build_table(seed: u64, n: usize, seg_rows: usize) -> Table {
    let schema = TableSchema::new(&[
        ("runs", DType::U64),
        ("steps", DType::U64),
        ("noise", DType::U64),
    ]);
    let runs = ColumnData::U64(lcdc::datagen::runs::runs_over_domain(n, 60, 40, seed));
    let steps = ColumnData::U64(lcdc::datagen::step_column(n, 64, 2000, 16, seed ^ 0xA5));
    let noise = ColumnData::U64(lcdc::datagen::uniform(n, 500, seed ^ 0x5A));
    Table::build(
        schema,
        &[runs, steps, noise],
        &[
            CompressionPolicy::Auto,
            CompressionPolicy::Auto,
            CompressionPolicy::Auto,
        ],
        seg_rows,
    )
    .expect("table builds")
}

const COLUMNS: [&str; 3] = ["runs", "steps", "noise"];

/// One random clause: a range, equality, or IN conjunct — or, for
/// `kind % 4 == 3`, a two-leaf disjunction across two columns.
fn add_clause(spec: QuerySpec, col: usize, kind: usize, lo: i128, width: i128) -> QuerySpec {
    let column = COLUMNS[col % 3];
    match kind % 4 {
        0 => spec.filter(column, Predicate::Range { lo, hi: lo + width }),
        1 => spec.filter(column, Predicate::Eq(lo)),
        2 => spec.filter_in(column, &[lo, lo + width / 2, lo + width, 7]),
        _ => spec.filter_any(&[
            (column, Predicate::Range { lo, hi: lo + width }),
            (COLUMNS[(col + 1) % 3], Predicate::Eq(lo / 2)),
        ]),
    }
}

/// All permutations of `0..n` for the tiny n this test uses.
fn permutations(n: usize) -> Vec<Vec<usize>> {
    match n {
        0 => vec![vec![]],
        _ => {
            let mut out = Vec::new();
            for sub in permutations(n - 1) {
                for pos in 0..=sub.len() {
                    let mut perm = sub.clone();
                    perm.insert(pos, n - 1);
                    out.push(perm);
                }
            }
            out
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn every_clause_permutation_answers_identically(
        seed in any::<u64>(),
        seg_rows in 128usize..1024,
        clauses in prop::collection::vec(
            (0usize..3, 0usize..4, 0i128..2100, 0i128..700), 1..4),
    ) {
        let table = build_table(seed, 3000, seg_rows);
        let mut reference: Option<lcdc::store::QueryResult> = None;
        for perm in permutations(clauses.len()) {
            let mut spec = QuerySpec::new();
            for &idx in &perm {
                let (col, kind, lo, width) = clauses[idx];
                spec = add_clause(spec, col, kind, lo, width);
            }
            let spec = spec.aggregate(&[Agg::Sum("noise"), Agg::Min("steps"), Agg::Count]);
            // Cost-based order (the default), the pinned caller order,
            // and the naive baseline must all agree — for every
            // permutation of the caller's clauses.
            let reordered = spec.bind(&table).execute().expect("cost-based runs");
            let pinned = spec
                .clone()
                .keep_filter_order()
                .bind(&table)
                .execute()
                .expect("pinned runs");
            let naive = spec.bind(&table).execute_naive().expect("naive runs");
            prop_assert_eq!(&reordered.rows, &pinned.rows, "perm {:?}", &perm);
            prop_assert_eq!(&reordered.rows, &naive.rows, "perm {:?}", &perm);
            match &reference {
                None => reference = Some(reordered),
                Some(want) => {
                    prop_assert_eq!(&reordered.rows, &want.rows, "perm {:?}", &perm);
                }
            }
        }
    }
}

/// The chosen order is a pure plan-time decision: `display()` shows it,
/// and the builder flag reproduces the caller's order exactly.
#[test]
fn display_shows_cost_based_order_and_flag_pins_it() {
    let table = build_table(7, 3000, 256);
    // Clause on `noise` is expensive (row tier, prunes nothing); the
    // clause on `runs` is added *second* but prunes most segments from
    // the zone map alone — the planner must hoist it.
    let build = || {
        QueryBuilder::scan(&table)
            .filter("noise", Predicate::Range { lo: 100, hi: 400 })
            .filter("runs", Predicate::Range { lo: 0, hi: 3 })
            .aggregate(&[Agg::Count])
    };
    let filter_lines = |text: &str| -> Vec<String> {
        text.lines()
            .filter(|l| l.trim_start().starts_with("filter ") && !l.contains("filter order"))
            .map(|l| l.trim().to_string())
            .collect()
    };

    let chosen = build().explain().expect("explains");
    assert!(
        chosen.contains("filter order: cost-based"),
        "reordered plan must say so:\n{chosen}"
    );
    let lines = filter_lines(&chosen);
    assert!(
        lines[0].starts_with("filter runs"),
        "most-pruning clause first: {lines:?}"
    );

    let pinned = build().keep_filter_order().explain().expect("explains");
    assert!(
        !pinned.contains("filter order: cost-based"),
        "pinned plan keeps the caller's order:\n{pinned}"
    );
    let lines = filter_lines(&pinned);
    assert!(
        lines[0].starts_with("filter noise"),
        "caller order preserved: {lines:?}"
    );

    // Same answer either way, but the reordered plan does less work.
    let fast = build().execute().expect("runs");
    let slow = build().keep_filter_order().execute().expect("runs");
    assert_eq!(fast.rows, slow.rows);
    assert!(
        fast.stats.segments_loaded <= slow.stats.segments_loaded,
        "hoisting the pruning clause never loads more: {} vs {}",
        fast.stats.segments_loaded,
        slow.stats.segments_loaded
    );
}

/// Reordering changes neither the fingerprint-keyed cache identity nor
/// the single-clause fast path.
#[test]
fn pinning_is_part_of_the_plan_identity() {
    let base = QuerySpec::new()
        .filter("runs", Predicate::Range { lo: 0, hi: 9 })
        .filter("noise", Predicate::Eq(3))
        .aggregate(&[Agg::Count]);
    let pinned = base.clone().keep_filter_order();
    assert_ne!(
        base.fingerprint(),
        pinned.fingerprint(),
        "pinned and reorderable plans must not share a cache slot"
    );
    // A single clause has nothing to reorder: identical plan text.
    let table = build_table(3, 1000, 256);
    let one = QuerySpec::new()
        .filter("runs", Predicate::Eq(1))
        .aggregate(&[Agg::Count]);
    let a = one.bind(&table).explain().unwrap();
    let b = one
        .clone()
        .keep_filter_order()
        .bind(&table)
        .explain()
        .unwrap();
    assert_eq!(a, b);
}
