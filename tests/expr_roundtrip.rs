//! Property tests for the scheme-expression language: display∘parse and
//! parse∘display are identities, and every generated expression either
//! builds or fails with a parse error (never a panic).

use lcdc::core::expr::{parse_expr, SchemeExpr};
use proptest::prelude::*;

fn leaf_names() -> Vec<&'static str> {
    vec![
        "id",
        "ns",
        "ns_zz",
        "delta",
        "rle",
        "rpe",
        "dict",
        "varwidth",
        "varwidth_zz",
    ]
}

fn param_names() -> Vec<&'static str> {
    vec!["step", "for", "linear", "poly2", "pstep"]
}

fn arb_expr(depth: u32) -> BoxedStrategy<SchemeExpr> {
    let leaf = prop_oneof![
        prop::sample::select(leaf_names()).prop_map(SchemeExpr::bare),
        (prop::sample::select(param_names()), 1i64..512).prop_map(|(name, l)| {
            let mut e = SchemeExpr::bare(name);
            e.params.push(("l".to_string(), l));
            e
        }),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let roles = prop::sample::select(vec![
        "values",
        "lengths",
        "positions",
        "deltas",
        "codes",
        "offsets",
        "residuals",
    ]);
    leaf.prop_recursive(depth, 16, 3, move |inner| {
        (
            prop::sample::select(leaf_names()),
            prop::collection::vec((roles.clone(), inner), 1..3),
        )
            .prop_map(|(name, subs)| {
                let mut e = SchemeExpr::bare(name);
                // Deduplicate roles to keep the expression well-formed.
                let mut seen = std::collections::HashSet::new();
                for (role, sub) in subs {
                    if seen.insert(role) {
                        e.subs.push((role.to_string(), sub));
                    }
                }
                e
            })
    })
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn display_then_parse_is_identity(expr in arb_expr(3)) {
        let text = expr.to_string();
        let reparsed = parse_expr(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        prop_assert_eq!(reparsed, expr);
    }

    #[test]
    fn build_never_panics(expr in arb_expr(3)) {
        // Building may fail (unknown role for the outer scheme surfaces
        // at compress time, not build time; bad params at build time),
        // but must never panic.
        let _ = expr.build();
    }

    #[test]
    fn arbitrary_text_never_panics(text in "[a-z0-9_=,\\[\\]() ]{0,60}") {
        let _ = parse_expr(&text);
    }

    #[test]
    fn parse_then_display_round_trips_textually(expr in arb_expr(2)) {
        // Canonical text -> parse -> display is a fixpoint.
        let canonical = expr.to_string();
        let twice = parse_expr(&canonical).unwrap().to_string();
        prop_assert_eq!(canonical, twice);
    }
}
