//! The morsel executor's contract, end to end over the full storage
//! stack: a lazy, sharded catalog table must answer — and account —
//! exactly like the resident sequential reference under every worker
//! count and prefetch depth, and a shard whose key range the query
//! bounds exclude must never be touched at all.

use lcdc::core::{ColumnData, DType};
use lcdc::store::{
    open_table_lazy, save_table, shard_table, Agg, Catalog, CatalogTable, CompressionPolicy,
    ExecOptions, Predicate, QuerySpec, QueryStats, Table, TableSchema,
};
use std::path::Path;

fn build_table(seed: u64, n: usize, seg_rows: usize) -> Table {
    let schema = TableSchema::new(&[
        ("runs", DType::U64),
        ("steps", DType::U64),
        ("noise", DType::U64),
    ]);
    let runs = ColumnData::U64(lcdc::datagen::runs::runs_over_domain(n, 60, 40, seed));
    let steps = ColumnData::U64(lcdc::datagen::step_column(n, 64, 2000, 16, seed ^ 0xA5));
    let noise = ColumnData::U64(lcdc::datagen::uniform(n, 500, seed ^ 0x5A));
    Table::build(
        schema,
        &[runs, steps, noise],
        &[
            CompressionPolicy::Auto,
            CompressionPolicy::Auto,
            CompressionPolicy::Auto,
        ],
        seg_rows,
    )
    .expect("table builds")
}

/// Save `table` as `shards` lazy shard directories under `root` and
/// register them with a (cache-disabled) catalog.
fn lazy_sharded_catalog(table: &Table, shards: usize, root: &Path) -> Catalog {
    let mut lazy_shards = Vec::new();
    for (i, shard) in shard_table(table, shards)
        .expect("shards")
        .iter()
        .enumerate()
    {
        let dir = root.join(format!("t.shard{i}"));
        save_table(shard, &dir).expect("saves");
        lazy_shards.push(open_table_lazy(&dir, 8).expect("opens"));
    }
    // Cache capacity 0: every execution in the matrix runs for real.
    let catalog = Catalog::with_cache_capacity(0);
    catalog
        .register_sharded("t", lazy_shards)
        .expect("registers");
    catalog
}

/// The segment/row accounting that must be schedule-independent.
/// Prefetch counters vary with timing, pushdown tier counters shrink
/// when whole shards are pruned from table-level ranges — everything
/// else is exact.
fn core_accounting(stats: &QueryStats) -> (usize, usize, usize, usize, usize, usize) {
    (
        stats.segments,
        stats.segments_pruned,
        stats.segments_structural,
        stats.segments_loaded,
        stats.rows_materialized,
        stats.values_processed,
    )
}

#[test]
fn lazy_sharded_matches_resident_sequential_across_threads_and_prefetch() {
    let root = std::env::temp_dir().join(format!("lcdc_morsel_eq_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let table = build_table(11, 6000, 300);
    let catalog = lazy_sharded_catalog(&table, 3, &root);

    let specs = [
        QuerySpec::new()
            .filter("steps", Predicate::Range { lo: 0, hi: 900 })
            .aggregate(&[Agg::Sum("noise"), Agg::Min("steps"), Agg::Count]),
        // Multi-clause spec with the order pinned: cost estimates are
        // per-compiled-table, so a shard could legitimately pick a
        // different clause order than the whole table — pinning keeps
        // the per-segment work (and so the accounting) bit-comparable.
        QuerySpec::new()
            .filter("runs", Predicate::Range { lo: 3, hi: 21 })
            .filter_in("noise", &[1, 5, 250, 499])
            .keep_filter_order()
            .group_by("runs")
            .aggregate(&[Agg::Sum("noise"), Agg::Count]),
        QuerySpec::new()
            .filter_any(&[
                ("runs", Predicate::Range { lo: 0, hi: 8 }),
                ("noise", Predicate::Eq(77)),
            ])
            .distinct("runs"),
    ];
    for (i, spec) in specs.iter().enumerate() {
        let want = spec.bind(&table).execute().expect("resident sequential");
        for threads in [1usize, 2, 4, 64] {
            for prefetch in [0usize, 6] {
                let opts = ExecOptions::threads(threads).with_prefetch(prefetch);
                let got = catalog
                    .execute_opts("t", spec, &opts)
                    .expect("lazy sharded runs");
                assert_eq!(
                    got.rows, want.rows,
                    "spec {i} x{threads} threads, prefetch {prefetch}"
                );
                assert_eq!(
                    core_accounting(&got.stats),
                    core_accounting(&want.stats),
                    "spec {i} x{threads} threads, prefetch {prefetch}: \
                     {:?} vs {:?}",
                    got.stats,
                    want.stats
                );
                if prefetch == 0 {
                    assert_eq!(
                        (got.stats.prefetch_hits, got.stats.prefetch_wasted),
                        (0, 0),
                        "no prefetcher ran"
                    );
                }
            }
        }
    }

    // Top-k: answers are schedule-independent; prune counters are not
    // (each worker tightens its own threshold), so only rows compare.
    let topk = QuerySpec::new()
        .filter("steps", Predicate::Range { lo: 0, hi: 1500 })
        .top_k("steps", 23);
    let want = topk.bind(&table).execute().expect("resident top-k");
    for threads in [1usize, 4, 64] {
        for prefetch in [0usize, 6] {
            let got = catalog
                .execute_opts(
                    "t",
                    &topk,
                    &ExecOptions::threads(threads).with_prefetch(prefetch),
                )
                .expect("lazy sharded top-k");
            assert_eq!(got.rows, want.rows, "top-k x{threads}, prefetch {prefetch}");
        }
    }
    std::fs::remove_dir_all(&root).ok();
}

/// The shard-pruning acceptance scenario: bounds that exclude a shard's
/// key range execute with *zero* segments loaded from that shard — no
/// frame of it is read, no plan compiled against it — and the skip is
/// visible in `QueryStats::shards_pruned`.
#[test]
fn excluded_shard_is_never_loaded() {
    let root = std::env::temp_dir().join(format!("lcdc_shard_prune_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    // Two shards with disjoint `day` ranges, saved lazily.
    let schema = TableSchema::new(&[("day", DType::U64), ("qty", DType::U64)]);
    let build = |day0: u64| {
        let day = ColumnData::U64((0..3000u64).map(|i| day0 + i / 100).collect());
        let qty = ColumnData::U64((0..3000u64).map(|i| 1 + i % 50).collect());
        Table::build(
            schema.clone(),
            &[day, qty],
            &[CompressionPolicy::Auto, CompressionPolicy::Auto],
            256,
        )
        .unwrap()
    };
    let near_dir = root.join("orders.shard0");
    let far_dir = root.join("orders.shard1");
    save_table(&build(1), &near_dir).unwrap(); // days 1..=30
    save_table(&build(1000), &far_dir).unwrap(); // days 1000..=1029
    let near = open_table_lazy(&near_dir, 8).unwrap();
    let far = open_table_lazy(&far_dir, 8).unwrap();
    let total_segments = near.num_segments() + far.num_segments();

    let catalog = Catalog::with_cache_capacity(0);
    catalog.register_sharded("orders", vec![near, far]).unwrap();
    let (handle, _) = catalog.get("orders").expect("registered");
    let CatalogTable::Sharded(sharded) = &handle else {
        panic!("registered sharded");
    };

    // Bounds inside shard 0's day range: shard 1 must not be touched.
    let spec = QuerySpec::new()
        .filter("day", Predicate::Range { lo: 5, hi: 14 })
        .aggregate(&[Agg::Sum("qty"), Agg::Count]);
    let result = catalog
        .execute_opts("orders", &spec, &ExecOptions::threads(4))
        .expect("runs");
    assert_eq!(result.stats.shards_pruned, 1, "{:?}", result.stats);
    assert_eq!(
        sharded.shards()[1].io_reads(),
        0,
        "no frame of the excluded shard was read"
    );
    // The pruned shard's segments are accounted as visited-and-pruned,
    // and every payload the query did load came from shard 0 alone.
    assert_eq!(result.stats.segments, total_segments);
    assert_eq!(
        result.stats.segments_loaded,
        sharded.shards()[0].io_reads(),
        "loads == shard 0's cold reads"
    );
    // And the answer equals shard 0's alone.
    let want = spec.bind(sharded.shards()[0].as_ref()).execute().unwrap();
    assert_eq!(result.rows, want.rows);
    std::fs::remove_dir_all(&root).ok();
}

/// The prefetch-depth clamp: a window that does not fit the
/// `FileSource` cache alongside the frame under the scan cursor lets
/// the prefetcher evict warmed frames before the scan reaches them —
/// each one a wasted read plus a re-read. The executor clamps the
/// window to `capacity - 2`, so even an absurd requested depth reads
/// each frame exactly once; caches of one or two frames disable
/// prefetch outright.
#[test]
fn prefetch_depth_is_clamped_below_cache_capacity() {
    let root = std::env::temp_dir().join(format!("lcdc_prefetch_clamp_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let table = build_table(7, 6000, 300);
    let dir = root.join("t");
    save_table(&table, &dir).expect("saves");

    // Half the noise domain: undecidable from every zone map, never
    // empty at the data tier — every frame of both touched columns is
    // read on every pass, so read counts compare exactly.
    let spec = QuerySpec::new()
        .filter("noise", Predicate::Range { lo: 0, hi: 249 })
        .aggregate(&[Agg::Sum("steps"), Agg::Count]);

    let plain = open_table_lazy(&dir, 4).expect("opens");
    let want = spec.bind(&plain).execute().expect("no-prefetch reference");
    let frames = plain.io_reads();
    assert!(frames > 0);

    // Requested depth 64 against 4-frame caches: clamped to 2, and the
    // warmed frames actually get consumed.
    let deep = open_table_lazy(&dir, 4).expect("opens");
    let got = spec
        .bind(&deep)
        .execute_opts(&ExecOptions::threads(1).with_prefetch(64))
        .expect("clamped run");
    assert_eq!(got.rows, want.rows);
    assert_eq!(
        deep.io_reads(),
        frames,
        "clamped prefetch never evicts ahead of the scan: {:?}",
        got.stats
    );

    // Capacity 2 clamps the window to 0: no fetcher runs at all.
    let tiny = open_table_lazy(&dir, 2).expect("opens");
    let got = spec
        .bind(&tiny)
        .execute_opts(&ExecOptions::threads(1).with_prefetch(64))
        .expect("disabled run");
    assert_eq!(got.rows, want.rows);
    assert_eq!(tiny.io_reads(), frames);
    assert_eq!(
        (got.stats.prefetch_hits, got.stats.prefetch_wasted),
        (0, 0),
        "prefetch disabled outright"
    );
    std::fs::remove_dir_all(&root).ok();
}
