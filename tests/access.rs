//! Workspace-level properties of positional access on compressed forms
//! (`lcdc::core::access`): wherever a scheme offers an access path, it
//! must agree with the decompressed column, across element types and
//! generated workloads.

use lcdc::core::{access, parse_scheme, ColumnData};
use proptest::prelude::*;

const ACCESS_SCHEMES: &[&str] = &[
    "id",
    "ns",
    "varwidth",
    "dict",
    "rpe",
    "step(l=1)",
    "for(l=24)",
    "for(l=24,first=1)",
    "pfor(l=24,keep=900)",
    "pstep(l=24)",
    "linear(l=24)",
    "poly2(l=24)",
    "sparse",
    "dfor(l=24)",
    "vstep(w=8)",
    "vstep(w=64)",
];

fn check(col: &ColumnData) {
    for expr in ACCESS_SCHEMES {
        let scheme = parse_scheme(expr).unwrap();
        let Ok(c) = scheme.compress(col) else {
            continue;
        };
        for pos in 0..col.len() {
            match access::value_at(&c, pos).unwrap_or_else(|e| panic!("{expr} at {pos}: {e}")) {
                Some(v) => assert_eq!(Some(v), col.get_transport(pos), "{expr} at {pos}"),
                None => panic!("{expr} lost its access path"),
            }
        }
    }
}

#[test]
fn access_on_generated_workloads() {
    check(&ColumnData::U64(lcdc::datagen::shipped_order_dates(
        30, 10, 20_180_101, 1,
    )));
    check(&ColumnData::U64(lcdc::datagen::step_column(
        500,
        24,
        1 << 20,
        16,
        2,
    )));
    check(&ColumnData::U64(
        lcdc::datagen::locally_varying_with_outliers(500, 24, 1 << 16, 8, 0.05, 1 << 40, 3),
    ));
}

#[test]
fn access_on_extremes() {
    check(&ColumnData::I64(vec![i64::MIN, -1, 0, 1, i64::MAX]));
    check(&ColumnData::U32(vec![u32::MAX; 30]));
    check(&ColumnData::U32(vec![7]));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn access_matches_decompression(values in prop::collection::vec(0u64..1_000_000, 1..200)) {
        check(&ColumnData::U64(values));
    }

    #[test]
    fn access_matches_on_signed(values in prop::collection::vec(any::<i32>(), 1..200)) {
        check(&ColumnData::I32(values));
    }
}
