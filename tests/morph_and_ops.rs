//! Integration tests for the morphing layer and the compression-aware
//! query operators (sort / top-k / late materialisation): every
//! transcoding route must preserve the data exactly, and every operator
//! must agree with its decompress-everything baseline across policies
//! and generated workloads.

use lcdc::core::morph::{morph_expr, MorphPath};
use lcdc::core::{parse_scheme, ColumnData, DType};
use lcdc::store::segment::CompressionPolicy;
use lcdc::store::table::Table;
use lcdc::store::{
    gather_early, gather_late, select, sort_column_compressed, sort_column_naive, top_k_naive,
    top_k_pruned, Predicate, TableSchema,
};
use proptest::prelude::*;

/// Scheme pairs with a structural route, plus pairs that must fall back.
const MORPH_PAIRS: &[(&str, &str, bool)] = &[
    ("rle", "rpe", true),
    ("rpe", "rle", true),
    ("for(l=64)", "pfor(l=64,keep=950)", true),
    ("pfor(l=64,keep=950)", "for(l=64)", true),
    ("rle", "dict", false),
    ("for(l=64)", "delta[deltas=ns_zz]", false),
    ("rpe", "vstep(w=8)[offsets=ns]", false),
    ("dict", "sparse", false),
];

fn morph_workloads() -> Vec<ColumnData> {
    vec![
        ColumnData::U64(lcdc::datagen::runs::runs_over_domain(5000, 40, 100, 1)),
        ColumnData::U64(lcdc::datagen::step_column(5000, 64, 1 << 30, 50, 2)),
        ColumnData::I64(
            lcdc::datagen::uniform(5000, 1 << 20, 3)
                .into_iter()
                .map(|v| v as i64 - (1 << 19))
                .collect(),
        ),
        ColumnData::U32(vec![7; 1000]),
    ]
}

#[test]
fn every_morph_route_preserves_the_column() {
    for col in morph_workloads() {
        for &(from, to, structural) in MORPH_PAIRS {
            let from_scheme = parse_scheme(from).unwrap();
            let to_scheme = parse_scheme(to).unwrap();
            let Ok(c) = from_scheme.compress(&col) else {
                continue;
            };
            let (morphed, path) =
                morph_expr(&c, from, to).unwrap_or_else(|e| panic!("{from} -> {to}: {e}"));
            assert_eq!(
                path,
                if structural {
                    MorphPath::Structural
                } else {
                    MorphPath::ViaPlain
                },
                "{from} -> {to} took the wrong route"
            );
            assert_eq!(
                to_scheme.decompress(&morphed).unwrap(),
                col,
                "{from} -> {to} corrupted the data"
            );
        }
    }
}

#[test]
fn structural_morphs_match_fresh_compression_bit_for_bit() {
    for col in morph_workloads() {
        for &(from, to, structural) in MORPH_PAIRS {
            if !structural {
                continue;
            }
            let from_scheme = parse_scheme(from).unwrap();
            let to_scheme = parse_scheme(to).unwrap();
            let Ok(c) = from_scheme.compress(&col) else {
                continue;
            };
            let (morphed, _) = morph_expr(&c, from, to).unwrap();
            assert_eq!(
                morphed,
                to_scheme.compress(&col).unwrap(),
                "{from} -> {to} structural morph must be canonical"
            );
        }
    }
}

fn policies() -> Vec<CompressionPolicy> {
    vec![
        CompressionPolicy::None,
        CompressionPolicy::Auto,
        CompressionPolicy::Fixed("rle[values=ns_zz,lengths=ns]".into()),
        CompressionPolicy::Fixed("rpe".into()),
        CompressionPolicy::Fixed("for(l=64)[offsets=ns]".into()),
        CompressionPolicy::Fixed("vstep(w=8)[offsets=ns]".into()),
        CompressionPolicy::Fixed("dfor(l=64)[deltas=ns_zz]".into()),
        CompressionPolicy::Fixed("sparse[exc_positions=ns,exc_values=ns_zz]".into()),
    ]
}

fn one_column_table(col: ColumnData, policy: &CompressionPolicy, seg_rows: usize) -> Table {
    let schema = TableSchema::new(&[("v", col.dtype())]);
    Table::build(schema, &[col], std::slice::from_ref(policy), seg_rows).unwrap()
}

#[test]
fn sort_and_topk_agree_with_naive_across_policies() {
    let col = ColumnData::U64(lcdc::datagen::runs::runs_over_domain(6000, 30, 200, 5));
    for policy in policies() {
        let t = one_column_table(col.clone(), &policy, 700);
        let naive = sort_column_naive(&t, "v").unwrap();
        let (fast, _) = sort_column_compressed(&t, "v").unwrap();
        assert_eq!(fast, naive, "sort under {policy:?}");
        for k in [0usize, 1, 7, 500, 10_000] {
            let naive = top_k_naive(&t, "v", k).unwrap();
            let (pruned, _) = top_k_pruned(&t, "v", k).unwrap();
            assert_eq!(pruned, naive, "top-{k} under {policy:?}");
        }
    }
}

#[test]
fn late_materialisation_agrees_across_policies_and_predicates() {
    let filter = ColumnData::U64((0..6000u64).map(|i| i / 50).collect());
    let payload = ColumnData::I64(
        (0..6000i64)
            .map(|i| (i * 31) % 1009 - 500)
            .collect::<Vec<_>>(),
    );
    for policy in policies() {
        let schema = TableSchema::new(&[("f", DType::U64), ("p", DType::I64)]);
        let t = Table::build(
            schema,
            &[filter.clone(), payload.clone()],
            &[CompressionPolicy::Auto, policy.clone()],
            700,
        )
        .unwrap();
        for pred in [
            Predicate::All,
            Predicate::Eq(55),
            Predicate::Range { lo: 10, hi: 40 },
            Predicate::Range { lo: 5000, hi: 9000 }, // empty
        ] {
            let (sel, _) = select(&t, "f", &pred).unwrap();
            let early = gather_early(&t, "p", &sel).unwrap();
            let (late, _) = gather_late(&t, "p", &sel).unwrap();
            assert_eq!(late, early, "{pred:?} under {policy:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary data: rle <-> rpe morphs round-trip bit-exactly.
    #[test]
    fn prop_rle_rpe_morph_round_trips(values in prop::collection::vec(0u64..50, 0..400)) {
        let col = ColumnData::U64(values);
        let rle = parse_scheme("rle").unwrap();
        let c = rle.compress(&col).unwrap();
        let (as_rpe, _) = morph_expr(&c, "rle", "rpe").unwrap();
        let (back, _) = morph_expr(&as_rpe, "rpe", "rle").unwrap();
        prop_assert_eq!(back, c);
    }

    /// Arbitrary data: compressed sort equals std sort, any run shape.
    #[test]
    fn prop_compressed_sort_is_a_sort(values in prop::collection::vec(-100i64..100, 0..500)) {
        let col = ColumnData::I64(values.clone());
        let t = one_column_table(col, &CompressionPolicy::Auto, 128);
        let (sorted, _) = sort_column_compressed(&t, "v").unwrap();
        let mut expect = values;
        expect.sort_unstable();
        prop_assert_eq!(sorted, ColumnData::I64(expect));
    }

    /// Arbitrary data + k: pruned top-k equals naive top-k.
    #[test]
    fn prop_topk_pruning_is_sound(
        values in prop::collection::vec(-1000i64..1000, 1..500),
        k in 0usize..60,
    ) {
        let col = ColumnData::I64(values);
        let t = one_column_table(col, &CompressionPolicy::Auto, 64);
        let naive = top_k_naive(&t, "v", k).unwrap();
        let (pruned, _) = top_k_pruned(&t, "v", k).unwrap();
        prop_assert_eq!(pruned, naive);
    }

    /// Arbitrary split point: structurally concatenating the two halves
    /// of a column equals compressing the whole column, for every scheme
    /// with a structural append route.
    #[test]
    fn prop_structural_concat_is_canonical(
        values in prop::collection::vec(0u64..40, 1..300),
        split in 0usize..300,
    ) {
        use lcdc::core::concat::concat;
        let split = split.min(values.len());
        let (a_half, b_half) = values.split_at(split);
        for expr in ["id", "rle", "rpe", "dict", "ns"] {
            let scheme = parse_scheme(expr).unwrap();
            let a = scheme.compress(&ColumnData::U64(a_half.to_vec())).unwrap();
            let b = scheme.compress(&ColumnData::U64(b_half.to_vec())).unwrap();
            let (joined, _) = concat(scheme.as_ref(), &a, &b).unwrap();
            let whole = scheme.compress(&ColumnData::U64(values.clone())).unwrap();
            prop_assert_eq!(&joined, &whole, "{}", expr);
        }
    }

    /// Arbitrary selection: late == early materialisation.
    #[test]
    fn prop_materialisation_paths_agree(
        payload in prop::collection::vec(0u64..1_000_000, 1..400),
        lo in 0u64..100,
        span in 0u64..100,
    ) {
        let n = payload.len() as u64;
        let filter = ColumnData::U64((0..n).map(|i| i % 100).collect());
        let schema = TableSchema::new(&[("f", DType::U64), ("p", DType::U64)]);
        let t = Table::build(
            schema,
            &[filter, ColumnData::U64(payload)],
            &[CompressionPolicy::Auto, CompressionPolicy::Auto],
            64,
        )
        .unwrap();
        let pred = Predicate::Range { lo: lo as i128, hi: (lo + span) as i128 };
        let (sel, _) = select(&t, "f", &pred).unwrap();
        let early = gather_early(&t, "p", &sel).unwrap();
        let (late, _) = gather_late(&t, "p", &sel).unwrap();
        prop_assert_eq!(late, early);
    }
}
