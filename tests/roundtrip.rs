//! Cross-crate round-trip properties: every scheme expression in the
//! chooser's candidate set must either refuse a column
//! (`NotRepresentable`) or reproduce it bit-exactly — across element
//! types, adversarial values, and every generated workload.

use lcdc::core::scheme::decompress_via_plan;
use lcdc::core::{chooser, parse_scheme, ColumnData, CoreError};
use proptest::prelude::*;

fn all_exprs() -> Vec<&'static str> {
    let mut v = chooser::default_candidates();
    v.extend([
        "ns_zz",
        "varwidth_zz",
        "delta",
        "rle",
        "rpe",
        "dict",
        "step(l=4)",
        "for(l=4)",
        "for(l=1)",
        "pfor(l=64,keep=900)",
        "linear(l=32)",
        "rle[values=delta,lengths=delta[deltas=ns_zz]]",
        "rpe[values=id,positions=delta[deltas=ns_zz]]",
        "dict[codes=rle[values=ns,lengths=ns]]",
        "const",
        "sparse[exc_positions=ns,exc_values=ns]",
        "dfor(l=1)",
        "dfor(l=4)[deltas=ns_zz]",
        "vstep(w=1)[offsets=ns]",
        "vstep(w=64)",
        "vstep(w=6)[offsets=ns,refs=delta[deltas=ns_zz]]",
        "for(l=16)[offsets=varwidth]",
    ]);
    v
}

fn check_round_trip(col: &ColumnData) {
    for expr in all_exprs() {
        let scheme = parse_scheme(expr).unwrap_or_else(|e| panic!("{expr}: {e}"));
        match scheme.compress(col) {
            Ok(c) => {
                let restored = scheme
                    .decompress(&c)
                    .unwrap_or_else(|e| panic!("{expr} failed to decompress: {e}"));
                assert_eq!(&restored, col, "{expr} round-trip");
                // Where a plan exists it must agree with the fused path.
                if let Ok(via_plan) = decompress_via_plan(scheme.as_ref(), &c) {
                    assert_eq!(&via_plan, col, "{expr} plan path");
                }
            }
            Err(CoreError::NotRepresentable(_)) => {} // legitimate refusal
            Err(other) => panic!("{expr} failed unexpectedly: {other}"),
        }
    }
}

#[test]
fn empty_columns_round_trip_everywhere() {
    check_round_trip(&ColumnData::U32(vec![]));
    check_round_trip(&ColumnData::I64(vec![]));
}

#[test]
fn single_element_columns() {
    check_round_trip(&ColumnData::U64(vec![u64::MAX]));
    check_round_trip(&ColumnData::I32(vec![i32::MIN]));
    check_round_trip(&ColumnData::U32(vec![0]));
}

#[test]
fn adversarial_extremes() {
    check_round_trip(&ColumnData::I64(vec![
        i64::MIN,
        i64::MAX,
        0,
        -1,
        1,
        i64::MIN,
    ]));
    check_round_trip(&ColumnData::U64(vec![u64::MAX, 0, u64::MAX / 2, 1]));
    check_round_trip(&ColumnData::I32(vec![i32::MIN; 10]));
}

#[test]
fn generated_workloads_round_trip() {
    let workloads: Vec<ColumnData> = vec![
        ColumnData::U64(lcdc::datagen::shipped_order_dates(200, 20, 20_180_101, 1)),
        ColumnData::U64(lcdc::datagen::runs::runs_over_domain(5000, 30, 50, 2)),
        ColumnData::U64(lcdc::datagen::step_column(5000, 64, 1 << 30, 100, 3)),
        ColumnData::U64(lcdc::datagen::sawtooth_trend(5000, 512, 9, 1 << 16, 32, 4)),
        ColumnData::U64(lcdc::datagen::locally_varying_with_outliers(
            5000,
            64,
            1 << 16,
            8,
            0.02,
            1 << 40,
            5,
        )),
        ColumnData::U64(lcdc::datagen::zipf_codes(5000, 32, 1.1, 6)),
        ColumnData::U64(lcdc::datagen::uniform(5000, 1 << 44, 7)),
        ColumnData::U64(lcdc::datagen::sorted_unique(5000, 99, 17, 8)),
    ];
    for col in &workloads {
        check_round_trip(col);
    }
}

#[test]
fn chooser_output_always_round_trips() {
    for seed in 0..5u64 {
        let col = ColumnData::U64(lcdc::datagen::runs::runs_over_domain(
            3000,
            1 + (seed as usize * 17) % 100,
            1 + (seed * 13) % 1000,
            seed,
        ));
        let choice = chooser::choose_best(&col).expect("chooser runs");
        let scheme = parse_scheme(&choice.expr).expect("winner parses");
        assert_eq!(
            scheme.decompress(&choice.compressed).expect("decompresses"),
            col
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_u32_columns(values in prop::collection::vec(any::<u32>(), 0..400)) {
        check_round_trip(&ColumnData::U32(values));
    }

    #[test]
    fn arbitrary_i64_columns(values in prop::collection::vec(any::<i64>(), 0..400)) {
        check_round_trip(&ColumnData::I64(values));
    }

    #[test]
    fn runny_u64_columns(
        lens in prop::collection::vec(1usize..20, 1..40),
        domain in 1u64..1000,
    ) {
        let mut v = Vec::new();
        for (i, len) in lens.iter().enumerate() {
            v.extend(std::iter::repeat_n((i as u64 * 7919) % domain, *len));
        }
        check_round_trip(&ColumnData::U64(v));
    }

    #[test]
    fn compressed_size_model_is_consistent(values in prop::collection::vec(any::<u16>(), 1..300)) {
        // compressed_bytes is the sum of part bytes + param overhead for
        // every scheme; ratio is positive and finite.
        let col = ColumnData::U32(values.iter().map(|&v| v as u32).collect());
        for expr in ["ns", "rle[values=ns,lengths=ns]", "for(l=16)[offsets=ns]"] {
            let scheme = parse_scheme(expr).unwrap();
            let c = scheme.compress(&col).unwrap();
            let parts_sum: usize = c.parts.iter().map(|p| p.data.bytes()).sum();
            prop_assert_eq!(c.compressed_bytes(), parts_sum + 8 * c.params.len());
            prop_assert!(c.ratio().unwrap() > 0.0);
        }
    }
}
