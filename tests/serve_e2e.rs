//! End-to-end exercise of `lcdc serve`: many concurrent wire clients,
//! an ingester committing versions mid-flight, admission control, and
//! the per-endpoint stats report — all over real TCP sockets against
//! the real server.

use lcdc::core::{ColumnData, DType};
use lcdc::store::{
    open_table_lazy, save_table, Catalog, Client, CompressionPolicy, FaultPlan, Response, Rows,
    Server, ServerConfig, Table, TableSchema,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const BASE_ROWS: u64 = 4000;
const BATCH_ROWS: u64 = 200;
const BATCHES: u64 = 6;
/// Marker day value every ingested batch carries — disjoint from the
/// base rows' days, so each version's answer is exactly computable.
const HOT_DAY: u64 = 1000;
const HOT_QTY: u64 = 7;

fn base_table() -> Table {
    let schema = TableSchema::new(&[("day", DType::U64), ("qty", DType::U64)]);
    let day = ColumnData::U64((0..BASE_ROWS).map(|i| 1 + i / 100).collect());
    let qty = ColumnData::U64((0..BASE_ROWS).map(|i| 1 + i % 50).collect());
    Table::build(
        schema,
        &[day, qty],
        &[CompressionPolicy::Auto, CompressionPolicy::Auto],
        256,
    )
    .unwrap()
}

fn hot_batch() -> Vec<ColumnData> {
    vec![
        ColumnData::U64(vec![HOT_DAY; BATCH_ROWS as usize]),
        ColumnData::U64(vec![HOT_QTY; BATCH_ROWS as usize]),
    ]
}

/// The exact rows every version must answer for the hot-day filter:
/// `batches_committed` is `version - v0`.
fn expected_hot(batches_committed: u64) -> Rows {
    let count = batches_committed * BATCH_ROWS;
    Rows::Aggregates(vec![Some((count * HOT_QTY) as i128), Some(count as i128)])
}

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

/// The acceptance scenario: 8 concurrent clients hammer the server
/// while a 9th commits ingest batches mid-flight. Every answer must be
/// a clean snapshot of exactly one published version, the pool must
/// never execute wider than configured, and the final stats report
/// must account for every request.
#[test]
fn concurrent_clients_race_wire_ingest_with_snapshot_answers() {
    const CLIENTS: u64 = 8;
    const QUERIES_PER_CLIENT: u64 = 25;
    const POOL_THREADS: usize = 3;

    let catalog = Arc::new(Catalog::new());
    catalog.register("orders", base_table());
    let v0 = catalog.version("orders").unwrap();
    let server = Server::start(
        Arc::clone(&catalog),
        "127.0.0.1:0",
        ServerConfig {
            threads: POOL_THREADS,
            // Deep enough that this test never trips admission — BUSY
            // determinism is its own test below.
            max_inflight: 64,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // The hot query: only ingested batches satisfy it, so its answer
    // *is* the version number, restated as rows. Vary the execution
    // knobs across clients; `--threads` caps each client's pool share.
    let queries_sent = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let (queries_sent, catalog) = (&queries_sent, &catalog);
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let hot = args(&[
                    "--filter",
                    "day=1000..1000",
                    "--sum",
                    "qty",
                    "--count",
                    "--threads",
                    &(1 + c % 4).to_string(),
                ]);
                for _ in 0..QUERIES_PER_CLIENT {
                    queries_sent.fetch_add(1, Ordering::Relaxed);
                    match client.query("orders", &hot).unwrap() {
                        Response::Rows { version, rows, .. } => {
                            let committed = version - v0;
                            assert!(committed <= BATCHES, "impossible version {version}");
                            assert_eq!(
                                rows,
                                expected_hot(committed),
                                "answer must be version {version}'s snapshot, \
                                 never a torn mix of versions"
                            );
                            // The version the server claims is one the
                            // catalog actually published.
                            assert!(catalog.version("orders").unwrap() >= version);
                        }
                        other => panic!("expected rows, got {other:?}"),
                    }
                }
            });
        }
        // The ingester commits batches over the wire, mid-flight.
        scope.spawn(|| {
            let mut client = Client::connect(addr).unwrap();
            for b in 0..BATCHES {
                std::thread::sleep(std::time::Duration::from_millis(5));
                match client.ingest("orders", hot_batch()).unwrap() {
                    Response::Ingested { version, rows } => {
                        assert_eq!(rows, BATCH_ROWS);
                        assert_eq!(version, v0 + b + 1, "one bump per batch");
                    }
                    other => panic!("expected ingested, got {other:?}"),
                }
            }
        });
    });

    // After the race: the server's answer equals a direct in-process
    // query of the same catalog (the single-process baseline).
    let mut client = Client::connect(addr).unwrap();
    let spec = lcdc::store::QueryArgs::parse(&args(&[
        "--filter",
        "day=1000..1000",
        "--sum",
        "qty",
        "--count",
    ]))
    .unwrap()
    .spec;
    let direct = catalog.execute("orders", &spec).unwrap();
    let Response::Rows { version, rows, .. } = client
        .query(
            "orders",
            &args(&["--filter", "day=1000..1000", "--sum", "qty", "--count"]),
        )
        .unwrap()
    else {
        panic!("expected rows");
    };
    assert_eq!(version, v0 + BATCHES);
    assert_eq!(rows, direct.rows);
    assert_eq!(rows, expected_hot(BATCHES));

    // The stats request accounts for everything: every query and
    // ingest admitted (none rejected), the pool never wider than
    // configured.
    let report = client.stats().unwrap();
    assert_eq!(report.pool_threads, POOL_THREADS as u64);
    assert!(
        report.peak_leases <= POOL_THREADS as u64,
        "peak {} leases on a {POOL_THREADS}-wide pool",
        report.peak_leases
    );
    assert_eq!(report.rejected, 0);
    let expected_served = queries_sent.load(Ordering::Relaxed) // hot queries
        + BATCHES // ingests
        + 1; // the post-race verification query
    assert_eq!(report.served, expected_served);
    let query_endpoint = report
        .endpoints
        .iter()
        .find(|e| e.endpoint == "query")
        .expect("query endpoint present");
    assert_eq!(
        query_endpoint.requests,
        queries_sent.load(Ordering::Relaxed) + 1
    );
    assert_eq!(query_endpoint.errors, 0);

    let final_report = server.shutdown();
    assert!(final_report.served > expected_served, "+ the stats request");
    assert_eq!(
        final_report.connections_opened,
        final_report.connections_closed
    );
}

/// Concurrent *join* queries over the wire, racing wire ingest into
/// the join's **right** table. The left table never changes, so the
/// version tag on every answer stays constant — correctness rests on
/// the catalog snapshotting both tables under one lock and keying the
/// result cache on the version *pair*. Every answer's pair count must
/// be an exact whole number of committed right-side batches,
/// non-decreasing per client; `Rows::Joined` and the three join
/// counters must survive the wire round trip.
#[test]
fn concurrent_join_queries_race_right_side_ingest() {
    const CLIENTS: u64 = 4;
    const QUERIES_PER_CLIENT: u64 = 20;
    // base_table: 100 rows at day 1, each pairing with every ingested
    // day-1 right row.
    const UNIT: i128 = 100 * BATCH_ROWS as i128;

    let catalog = Arc::new(Catalog::new());
    catalog.register("orders", base_table());
    // The right side starts disjoint from every left day, so batch
    // zero joins to nothing.
    catalog.register(
        "days",
        Table::build(
            TableSchema::new(&[("day", DType::U64)]),
            &[ColumnData::U64(vec![9999; 256])],
            &[CompressionPolicy::Auto],
            256,
        )
        .unwrap(),
    );
    let v0 = catalog.version("orders").unwrap();
    let dv0 = catalog.version("days").unwrap();
    let server = Server::start(
        Arc::clone(&catalog),
        "127.0.0.1:0",
        ServerConfig {
            threads: 3,
            max_inflight: 64,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();
    let committed_of = |rows: &Rows| -> i128 {
        match rows {
            Rows::Joined(pairs) => match pairs.as_slice() {
                [] => 0,
                [(1, n)] => {
                    assert_eq!(n % UNIT, 0, "a torn right batch leaked into the join");
                    n / UNIT
                }
                other => panic!("unexpected join rows {other:?}"),
            },
            other => panic!("expected joined rows, got {other:?}"),
        }
    };

    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let join = args(&[
                    "--join",
                    "days",
                    "--on",
                    "day",
                    "--threads",
                    &(1 + c % 3).to_string(),
                ]);
                let mut last = 0i128;
                for _ in 0..QUERIES_PER_CLIENT {
                    match client.query("orders", &join).unwrap() {
                        Response::Rows { version, rows, .. } => {
                            assert_eq!(version, v0, "the left table never bumps");
                            let committed = committed_of(&rows);
                            assert!((0..=BATCHES as i128).contains(&committed));
                            assert!(committed >= last, "right versions ran backwards");
                            last = committed;
                        }
                        other => panic!("expected rows, got {other:?}"),
                    }
                }
            });
        }
        scope.spawn(|| {
            let mut client = Client::connect(addr).unwrap();
            for b in 0..BATCHES {
                std::thread::sleep(std::time::Duration::from_millis(4));
                match client
                    .ingest("days", vec![ColumnData::U64(vec![1; BATCH_ROWS as usize])])
                    .unwrap()
                {
                    Response::Ingested { version, rows } => {
                        assert_eq!(rows, BATCH_ROWS);
                        assert_eq!(version, dv0 + b + 1, "one right-side bump per batch");
                    }
                    other => panic!("expected ingested, got {other:?}"),
                }
            }
        });
    });

    // Post-race: the wire answer equals the in-process answer, sees
    // every batch, and carries the join ledger — CONST right segments
    // histogram from metadata (undecoded rows) and the disjoint
    // initial right segment zone-prunes against every left segment.
    let mut client = Client::connect(addr).unwrap();
    let Response::Rows { rows, stats, .. } = client
        .query("orders", &args(&["--join", "days", "--on", "day"]))
        .unwrap()
    else {
        panic!("expected rows");
    };
    assert_eq!(committed_of(&rows), BATCHES as i128, "all batches visible");
    let spec = lcdc::store::QuerySpec::new().join("days", "day");
    assert_eq!(rows, catalog.execute("orders", &spec).unwrap().rows);
    if stats.result_cache_hits == 0 {
        assert!(stats.join_rows_undecoded > 0, "{stats:?}");
        assert!(stats.join_pairs_pruned > 0, "{stats:?}");
    }
    let report = server.shutdown();
    assert_eq!(report.rejected, 0);
    assert_eq!(report.served, CLIENTS * QUERIES_PER_CLIENT + BATCHES + 1);
}

/// Joins compose with the serving controls: a full server answers a
/// join with a typed BUSY, an expired deadline mid-join answers a
/// typed DEADLINE (the abandoned work drains at the next lease
/// boundary), and the freed slot then serves the same join to
/// completion.
#[test]
fn join_queries_face_admission_and_deadlines() {
    let join_args = args(&["--join", "days", "--on", "day"]);
    let days_table = || {
        Table::build(
            TableSchema::new(&[("day", DType::U64)]),
            &[ColumnData::U64((0..1024u64).map(|i| 1 + i / 26).collect())],
            &[CompressionPolicy::Auto],
            256,
        )
        .unwrap()
    };

    // Admission: joins take an in-flight slot like any query.
    let full = Arc::new(Catalog::new());
    full.register("orders", base_table());
    full.register("days", days_table());
    let server = Server::start(
        Arc::clone(&full),
        "127.0.0.1:0",
        ServerConfig {
            threads: 2,
            max_inflight: 0,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    match client.query("orders", &join_args).unwrap() {
        Response::Busy { .. } => {}
        other => panic!("a join must face admission, got {other:?}"),
    }
    server.shutdown();

    // Deadlines: lazy tables whose every disk read stalls 30ms make
    // the join deterministically slower than a 100ms deadline.
    let dir = std::env::temp_dir().join(format!("lcdc_join_deadline_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    save_table(&base_table(), &dir.join("orders")).unwrap();
    save_table(&days_table(), &dir.join("days")).unwrap();
    let plan = Arc::new(FaultPlan::parse("io_stall:ms=30,every=1", 0).unwrap());
    let catalog = Arc::new(Catalog::new());
    for name in ["orders", "days"] {
        let table = open_table_lazy(&dir.join(name), 4).unwrap();
        table.inject_faults(&plan);
        catalog.register(name, table);
    }
    let server = Server::start(
        Arc::clone(&catalog),
        "127.0.0.1:0",
        ServerConfig {
            threads: 1,
            max_inflight: 2,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client.set_deadline_ms(Some(100));
    match client.query("orders", &join_args).unwrap() {
        Response::Deadline { deadline_ms } => assert_eq!(deadline_ms, 100),
        other => panic!("expected a typed deadline, got {other:?}"),
    }
    // The expired join freed its slot; without a deadline the same
    // join runs to completion through every stalled read.
    client.set_deadline_ms(None);
    match client.query("orders", &join_args).unwrap() {
        Response::Rows { rows, stats, .. } => {
            let Rows::Joined(pairs) = &rows else {
                panic!("expected joined rows, got {rows:?}");
            };
            assert!(!pairs.is_empty(), "days 1..=40 overlap");
            assert!(stats.join_pairs_pruned > 0, "narrow left zones prune");
        }
        other => panic!("expected rows, got {other:?}"),
    }
    let report = server.shutdown();
    let query_endpoint = report
        .endpoints
        .iter()
        .find(|e| e.endpoint == "query")
        .expect("query endpoint present");
    assert_eq!(query_endpoint.deadline_exceeded, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Admission control, deterministically: a `max_inflight = 0` server
/// refuses every query and ingest with a typed BUSY — and still
/// answers `stats`/`ping`, which is how an operator sees the overload.
#[test]
fn admission_rejections_are_typed_and_counted() {
    let catalog = Arc::new(Catalog::new());
    catalog.register("orders", base_table());
    let server = Server::start(
        catalog,
        "127.0.0.1:0",
        ServerConfig {
            threads: 2,
            max_inflight: 0,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    const REJECTIONS: u64 = 5;
    let mut client = Client::connect(server.addr()).unwrap();
    for _ in 0..REJECTIONS {
        match client.query("orders", &args(&["--count"])).unwrap() {
            Response::Busy { in_flight, max, .. } => assert_eq!((in_flight, max), (0, 0)),
            other => panic!("expected busy, got {other:?}"),
        }
    }
    match client.ingest("orders", hot_batch()).unwrap() {
        Response::Busy { .. } => {}
        other => panic!("ingest must face admission too, got {other:?}"),
    }
    client.ping().unwrap();
    let report = client.stats().unwrap();
    assert_eq!(report.rejected, REJECTIONS + 1);
    assert_eq!(report.served, 1, "only the ping went through");
    server.shutdown();
}

/// A saturating client sees BUSY while a slow query holds the only
/// admission slot, then succeeds once it drains.
#[test]
fn busy_window_closes_after_drain() {
    let catalog = Arc::new(Catalog::new());
    // A deliberately heavy table so the holder's group-by keeps the
    // single admission slot occupied for a real window.
    let rows = 100_000u64;
    let schema = TableSchema::new(&[("day", DType::U64), ("qty", DType::U64)]);
    let day = ColumnData::U64((0..rows).map(|i| 1 + i / 100).collect());
    let qty = ColumnData::U64((0..rows).map(|i| 1 + i % 50).collect());
    let table = Table::build(
        schema,
        &[day, qty],
        &[CompressionPolicy::Auto, CompressionPolicy::Auto],
        256,
    )
    .unwrap();
    catalog.register("orders", table);
    let server = Server::start(
        Arc::clone(&catalog),
        "127.0.0.1:0",
        ServerConfig {
            threads: 1,
            max_inflight: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    // Client A re-runs the heavy group-by until told to stop; client B
    // probes cheap counts until it has been both refused (overlap with
    // A's slot) and served (a gap between A's requests).
    let stop = std::sync::atomic::AtomicBool::new(false);
    let (busy, served) = std::thread::scope(|scope| {
        let holder = scope.spawn(|| {
            let mut a = Client::connect(addr).unwrap();
            // Distinct filters defeat the result cache: every holder
            // query really executes.
            let mut lo = 1u64;
            while !stop.load(Ordering::Relaxed) {
                lo = 1 + (lo % 50);
                let filter = format!("day={lo}..1001");
                let r = a
                    .query(
                        "orders",
                        &args(&["--filter", &filter, "--group-by", "day", "--sum", "qty"]),
                    )
                    .unwrap();
                assert!(
                    matches!(r, Response::Rows { .. } | Response::Busy { .. }),
                    "{r:?}"
                );
            }
        });
        let prober = scope.spawn(|| {
            let mut b = Client::connect(addr).unwrap();
            let mut busy = 0u32;
            let mut served = 0u32;
            for _ in 0..2000 {
                match b
                    .query("orders", &args(&["--filter", "day=1..1", "--count"]))
                    .unwrap()
                {
                    Response::Busy { max, .. } => {
                        assert_eq!(max, 1);
                        busy += 1;
                    }
                    Response::Rows { .. } => served += 1,
                    other => panic!("{other:?}"),
                }
                if busy > 0 && served > 0 {
                    break;
                }
            }
            stop.store(true, Ordering::Relaxed);
            (busy, served)
        });
        holder.join().unwrap();
        prober.join().unwrap()
    });
    assert!(busy > 0, "never saw BUSY while the slot was held");
    assert!(served > 0, "never served in the gaps");
    // After the contention ends, the slot is free again.
    let mut c = Client::connect(addr).unwrap();
    assert!(matches!(
        c.query("orders", &args(&["--filter", "day=2..2", "--count"]))
            .unwrap(),
        Response::Rows { .. }
    ));
    let report = server.shutdown();
    assert!(report.rejected >= busy as u64);
}
